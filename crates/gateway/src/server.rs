//! The listener: a thread-per-core accept pool over
//! `std::net::TcpListener`, routing four paths onto the dispatcher.
//!
//! Each accept thread owns the connection it accepted end-to-end
//! (parse → dispatch → respond, with HTTP/1.1 keep-alive), so there is
//! no cross-thread handoff on the connection path; concurrency comes
//! from running one such thread per core. Audit work itself is decoupled
//! through the dispatcher's bounded queues — a slow audit occupies a
//! worker, not the accept thread's ability to shed.
//!
//! Shutdown is a two-phase drain, in this order:
//!
//! 1. the gateway stops taking *new* connections: the drain flag flips,
//!    one wake-up connection per accept thread unblocks `accept()`, and
//!    each accept thread switches the listener to non-blocking and
//!    serves out whatever the kernel already queued in the accept
//!    backlog — every connection (in-flight or backlogged) finishes its
//!    current request with `Connection: close`;
//! 2. the dispatcher refuses new admissions and its workers drain every
//!    already-queued job before joining.
//!
//! Because every queued job has a client connection blocked on it inside
//! an accept thread, phase 1 completing implies the queues are empty by
//! the time phase 2 joins the workers — no request that reached the
//! listener before shutdown is ever dropped by a clean drain.

use crate::dispatch::{Dispatcher, JobEvent, ToolPool};
use crate::http::{self, ChunkedBody, Limits, Parse};
use crate::wire;
use fakeaudit_detectors::ToolId;
use fakeaudit_server::{flush_writer, writer_health, ServerConfig, ServerReport};
use fakeaudit_store::queries::{self, QueryKind, QueryOptions};
use fakeaudit_store::{open_shared_with, FsyncPolicy, SharedWriter, Store, StoreHealth};
use fakeaudit_telemetry::{Clock, MonitorConfig, SelfTimeProfile, SloMonitor, Telemetry};
use fakeaudit_twittersim::{AccountId, Platform};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Resolves a tool abbreviation (`FC`, `TA`, `SP`, `SB`), case-insensitively.
pub fn tool_from_abbrev(s: &str) -> Option<ToolId> {
    ToolId::ALL
        .iter()
        .copied()
        .find(|t| t.abbrev().eq_ignore_ascii_case(s))
}

/// Listener-level configuration. Admission/worker knobs live in
/// [`ServerConfig`] — the same struct the simulator takes.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 for ephemeral).
    pub addr: String,
    /// Accept/connection threads. Defaults to available parallelism.
    pub accept_threads: usize,
    /// Admission-control and worker-pool knobs (shared with the sim).
    pub server: ServerConfig,
    /// HTTP parse limits.
    pub limits: Limits,
    /// Tool used when a request has no `?tool=` parameter.
    pub default_tool: ToolId,
    /// Per-read socket timeout; an idle keep-alive connection is closed
    /// after this.
    pub read_timeout: Duration,
    /// Directory for the columnar audit-history store. `None` (the
    /// default) disables persistence and the `/query/:kind` routes.
    pub persist: Option<PathBuf>,
    /// Ack-time durability floor for the history store's write-ahead
    /// log (`--fsync never|on-flush|on-append`). Ignored without
    /// `persist`.
    pub fsync: FsyncPolicy,
    /// Streaming SLO monitor configuration. `None` (the default)
    /// disables the monitor, the background tick thread, and the
    /// `/alerts` + `/metrics/history` routes.
    pub slo: Option<MonitorConfig>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            accept_threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            server: ServerConfig::default(),
            limits: Limits::default(),
            default_tool: ToolId::Twitteraudit,
            read_timeout: Duration::from_secs(10),
            persist: None,
            fsync: FsyncPolicy::default(),
            slo: None,
        }
    }
}

struct Shared {
    dispatcher: Arc<Dispatcher>,
    telemetry: Telemetry,
    clock: Arc<dyn Clock>,
    limits: Limits,
    default_tool: ToolId,
    read_timeout: Duration,
    started_at: f64,
    shutdown: AtomicBool,
    active_connections: AtomicI64,
    persist: Option<(SharedWriter, PathBuf)>,
    monitor: Option<SloMonitor>,
}

thread_local! {
    /// The status code the current request's handler reported via
    /// [`Shared::count_request`]. Connections are handled end-to-end on
    /// one accept thread, so the per-thread cell is per-request state:
    /// [`route`] resets it before dispatch and reads it after, to feed
    /// the SLO monitor an ok/error verdict without threading a status
    /// return through every handler.
    static LAST_STATUS: std::cell::Cell<u16> = const { std::cell::Cell::new(200) };
}

impl Shared {
    fn is_draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn store_health(&self) -> Option<StoreHealth> {
        self.persist
            .as_ref()
            .map(|(writer, _)| writer_health(writer))
    }

    fn count_request(&self, route: &'static str, status: u16) {
        LAST_STATUS.with(|cell| cell.set(status));
        let status_s = status.to_string();
        self.telemetry.counter_add(
            "gateway.http_requests",
            &[("route", route), ("status", &status_s)],
            1,
        );
        if status >= 400 {
            self.telemetry
                .counter_add("gateway.http_errors", &[("route", route)], 1);
        }
    }
}

/// A running wall-clock audit gateway.
///
/// Construct with [`Gateway::bind`]; stop with [`Gateway::shutdown`],
/// which drains in-flight requests and returns the final
/// [`ServerReport`] — the same report type the simulator produces.
pub struct Gateway {
    shared: Arc<Shared>,
    dispatcher: Arc<Dispatcher>,
    listener: Arc<TcpListener>,
    acceptors: Vec<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("addr", &self.addr)
            .field("acceptors", &self.acceptors.len())
            .finish()
    }
}

impl Gateway {
    /// Binds the listener, boots the dispatcher's worker pools and the
    /// accept threads, and returns the serving gateway.
    ///
    /// # Errors
    ///
    /// The bind error, untouched — callers (the CLI) turn it into a
    /// clear message plus a nonzero exit.
    pub fn bind(
        config: GatewayConfig,
        platform: Arc<Platform>,
        pools: Vec<ToolPool>,
        clock: Arc<dyn Clock>,
        telemetry: Telemetry,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let persist = match &config.persist {
            Some(dir) => Some((open_shared_with(dir, config.fsync)?, dir.clone())),
            None => None,
        };
        let dispatcher = Arc::new(Dispatcher::start_with_persist(
            platform,
            pools,
            config.server,
            Arc::clone(&clock),
            telemetry.clone(),
            persist.as_ref().map(|(writer, _)| Arc::clone(writer)),
        ));
        let monitor = config
            .slo
            .map(|slo| SloMonitor::new(slo, telemetry.clone()));
        let shared = Arc::new(Shared {
            dispatcher: Arc::clone(&dispatcher),
            telemetry,
            started_at: clock.now_secs(),
            clock,
            limits: config.limits,
            default_tool: config.default_tool,
            read_timeout: config.read_timeout,
            shutdown: AtomicBool::new(false),
            active_connections: AtomicI64::new(0),
            persist,
            monitor,
        });
        // The monitor's tick thread: evaluates the alert rules every
        // bucket on the gateway's clock, polling the drain flag often
        // enough that shutdown never waits a full bucket.
        let ticker = shared.monitor.clone().map(|monitor| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gw-slo-tick".to_owned())
                .spawn(move || {
                    let step = monitor.config().bucket_secs.max(0.01);
                    let mut next = shared.clock.now_secs() + step;
                    while !shared.is_draining() {
                        std::thread::sleep(Duration::from_millis(20));
                        let now = shared.clock.now_secs();
                        if now >= next {
                            monitor.tick(now);
                            next = now + step;
                        }
                    }
                    // One final evaluation so the tail of the run is
                    // reflected in the last /alerts state.
                    monitor.tick(shared.clock.now_secs());
                })
                .expect("spawn slo tick thread")
        });
        let listener = Arc::new(listener);
        let acceptors = (0..config.accept_threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let listener = Arc::clone(&listener);
                std::thread::Builder::new()
                    .name(format!("gw-accept-{i}"))
                    .spawn(move || accept_loop(&shared, &listener))
                    .expect("spawn accept thread")
            })
            .collect();
        Ok(Self {
            shared,
            dispatcher,
            listener,
            acceptors,
            ticker,
            addr,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time report over every request served so far.
    pub fn report(&self) -> ServerReport {
        self.dispatcher.report()
    }

    /// The telemetry handle the gateway records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// The streaming SLO monitor, when the gateway runs one (`slo` set
    /// in [`GatewayConfig`]).
    pub fn monitor(&self) -> Option<&SloMonitor> {
        self.shared.monitor.as_ref()
    }

    /// Stops accepting, drains in-flight requests and queued jobs, joins
    /// every thread, and returns the final report.
    pub fn shutdown(self) -> ServerReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Flip the listener non-blocking first so no accept parked
        // *after* this point can block again, then poke each accept
        // thread until it actually exits — a single wake-up connection
        // per thread is not enough, because a thread already in its
        // drain loop can consume a wake-up meant for one still parked
        // in blocking `accept()`.
        let _ = self.listener.set_nonblocking(true);
        for handle in self.acceptors {
            while !handle.is_finished() {
                let _ = TcpStream::connect(self.addr);
                std::thread::sleep(Duration::from_millis(1));
            }
            let _ = handle.join();
        }
        if let Some(ticker) = self.ticker {
            let _ = ticker.join();
        }
        self.dispatcher.shutdown();
        self.dispatcher.report()
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        if shared.is_draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.active_connections.fetch_add(1, Ordering::Relaxed);
                handle_connection(shared, stream);
                shared.active_connections.fetch_sub(1, Ordering::Relaxed);
            }
            Err(_) => {
                if shared.is_draining() {
                    break;
                }
            }
        }
    }
    // Drain: connections already sitting in the kernel's accept backlog
    // reached the listener before shutdown, so they still get served —
    // with `Connection: close`. The non-blocking flip also bounds the
    // drain: once `accept` reports WouldBlock the backlog is empty and
    // the thread exits. (The flag is per-listener, so the first thread
    // to get here flips it for every accept thread.)
    let _ = listener.set_nonblocking(true);
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.active_connections.fetch_add(1, Ordering::Relaxed);
                handle_connection(shared, stream);
                shared.active_connections.fetch_sub(1, Ordering::Relaxed);
            }
            Err(_) => break,
        }
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    // Not inherited from the listener on Linux, but is on some
    // platforms — the listener goes non-blocking during drain.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut tmp = [0u8; 8192];
    loop {
        match http::parse_request(&buf, &shared.limits) {
            Ok(Parse::Complete(request, consumed)) => {
                buf.drain(..consumed);
                match route(shared, &request, &mut stream) {
                    Ok(true) if !shared.is_draining() => continue,
                    _ => return,
                }
            }
            Ok(Parse::Partial) => match stream.read(&mut tmp) {
                Ok(0) => return,
                Ok(n) => buf.extend_from_slice(&tmp[..n]),
                Err(_) => return,
            },
            Err(e) => {
                shared.count_request("error", e.status());
                let body = format!("{{\"error\":\"{}\"}}", e.message());
                let _ = http::write_response(
                    &mut stream,
                    e.status(),
                    "application/json",
                    &[],
                    body.as_bytes(),
                    false,
                );
                return;
            }
        }
    }
}

/// The RED route label for a parsed request — the `route` dimension on
/// `gateway.http_requests` / `gateway.http_errors` /
/// `gateway.request_secs`.
fn route_label(method: &str, segments: &[&str]) -> &'static str {
    match (method, segments) {
        ("GET", ["healthz"]) => "healthz",
        ("GET", ["metrics"]) => "metrics",
        ("GET", ["metrics", "history"]) => "metrics_history",
        ("GET", ["alerts"]) => "alerts",
        ("GET", ["debug", "profile"]) => "debug_profile",
        ("GET", ["debug", "vars"]) => "debug_vars",
        ("POST", ["audit", _]) => "audit",
        ("GET", ["audit", _, "stream"]) => "audit_stream",
        ("GET", ["query", _]) => "query",
        _ => "other",
    }
}

/// Routes one parsed request with RED accounting around it: every
/// request records a `gateway.request` span plus a per-route duration
/// observation whose exemplar carries the span id, so a hot `/metrics`
/// line links straight to the worst trace. Returns whether the
/// connection may be kept alive.
fn route(shared: &Shared, request: &http::Request, stream: &mut TcpStream) -> io::Result<bool> {
    LAST_STATUS.with(|cell| cell.set(200));
    let t0 = shared.clock.now_secs();
    let result = dispatch_route(shared, request, stream);
    let t1 = shared.clock.now_secs();
    let path = request.path();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let label = route_label(request.method.as_str(), &segments);
    let span = shared.telemetry.root_context().child();
    span.record("gateway.request", t0, t1, &[("route", label)]);
    match span.span_id() {
        Some(id) => shared.telemetry.observe_with_exemplar(
            "gateway.request_secs",
            &[("route", label)],
            t1 - t0,
            &id.to_string(),
        ),
        None => shared
            .telemetry
            .observe("gateway.request_secs", &[("route", label)], t1 - t0),
    }
    if let Some(monitor) = &shared.monitor {
        // The handler reported its status through count_request on this
        // thread; 5xx is the server's failure, 4xx the client's.
        let status = LAST_STATUS.with(std::cell::Cell::get);
        monitor.observe_request(label, t1, Some(t1 - t0), status < 500, span.span_id());
    }
    result
}

/// The route table proper (see [`route`] for the RED wrapper).
fn dispatch_route(
    shared: &Shared,
    request: &http::Request,
    stream: &mut TcpStream,
) -> io::Result<bool> {
    let keep = request.keep_alive() && !shared.is_draining();
    let path = request.path().to_owned();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let slo = shared.monitor.as_ref().map(|m| m.route_status());
            let body = wire::health_json(
                &shared.dispatcher.lane_status(),
                shared.clock.now_secs() - shared.started_at,
                shared.is_draining(),
                shared.store_health().as_ref(),
                slo.as_deref(),
            );
            shared.count_request("healthz", 200);
            http::write_response(stream, 200, "application/json", &[], body.as_bytes(), keep)?;
            Ok(keep)
        }
        ("GET", ["alerts"]) => {
            let (status, body) = match &shared.monitor {
                Some(monitor) => (200, monitor.alerts_json()),
                None => (
                    404,
                    "{\"error\":\"no slo monitor (start the gateway with --slo)\"}".to_owned(),
                ),
            };
            shared.count_request("alerts", status);
            http::write_response(
                stream,
                status,
                "application/json",
                &[],
                body.as_bytes(),
                keep,
            )?;
            Ok(keep)
        }
        ("GET", ["metrics", "history"]) => {
            let (status, body) = match &shared.monitor {
                Some(monitor) => (200, monitor.history_json()),
                None => (
                    404,
                    "{\"error\":\"no slo monitor (start the gateway with --slo)\"}".to_owned(),
                ),
            };
            shared.count_request("metrics_history", status);
            http::write_response(
                stream,
                status,
                "application/json",
                &[],
                body.as_bytes(),
                keep,
            )?;
            Ok(keep)
        }
        ("GET", ["debug", "profile"]) => {
            // Fold the bounded in-memory trace buffer into self-time
            // stacks. The buffer holds whatever the retention bound kept;
            // for a seeded sim run the folded bytes are deterministic.
            let profile = SelfTimeProfile::from_events(&shared.telemetry.events());
            let body = profile.folded();
            shared.count_request("debug_profile", 200);
            http::write_response(
                stream,
                200,
                "text/plain; charset=utf-8",
                &[],
                body.as_bytes(),
                keep,
            )?;
            Ok(keep)
        }
        ("GET", ["debug", "vars"]) => {
            let counts = shared.monitor.as_ref().map(|m| m.counts());
            let monitor = counts
                .as_ref()
                .map(|c| (c, shared.telemetry.retention_stats()));
            let body = wire::debug_vars_json(
                option_env!("CARGO_PKG_VERSION").unwrap_or("dev"),
                shared.clock.now_secs() - shared.started_at,
                shared.is_draining(),
                shared.active_connections.load(Ordering::Relaxed),
                shared.telemetry.dropped_events(),
                &shared.dispatcher.lane_status(),
                shared.store_health().as_ref(),
                monitor,
            );
            shared.count_request("debug_vars", 200);
            http::write_response(stream, 200, "application/json", &[], body.as_bytes(), keep)?;
            Ok(keep)
        }
        ("GET", ["metrics"]) => {
            let body = wire::prometheus_text(&shared.telemetry.snapshot());
            shared.count_request("metrics", 200);
            http::write_response(
                stream,
                200,
                "text/plain; version=0.0.4",
                &[],
                body.as_bytes(),
                keep,
            )?;
            Ok(keep)
        }
        ("POST", ["audit", id]) => handle_audit(shared, request, id, stream, keep),
        ("GET", ["audit", id, "stream"]) => handle_audit_stream(shared, request, id, stream),
        ("GET", ["query", kind]) => handle_query(shared, request, kind, stream, keep),
        (_, ["healthz"])
        | (_, ["metrics"])
        | (_, ["metrics", "history"])
        | (_, ["alerts"])
        | (_, ["debug", ..])
        | (_, ["audit", ..])
        | (_, ["query", ..]) => {
            shared.count_request("other", 405);
            let body = b"{\"error\":\"method not allowed\"}";
            http::write_response(stream, 405, "application/json", &[], body, keep)?;
            Ok(keep)
        }
        _ => {
            shared.count_request("other", 404);
            let body = b"{\"error\":\"no such route\"}";
            http::write_response(stream, 404, "application/json", &[], body, keep)?;
            Ok(keep)
        }
    }
}

/// Parses the `:target` path segment (`123` or the display form `u123`)
/// and the optional `?tool=` parameter.
fn parse_audit_params(
    shared: &Shared,
    request: &http::Request,
    id: &str,
) -> Result<(ToolId, AccountId), (u16, String)> {
    let raw = id.strip_prefix('u').unwrap_or(id);
    let target = raw
        .parse::<u64>()
        .map(AccountId)
        .map_err(|_| (400, format!("{{\"error\":\"bad target id {:?}\"}}", id)))?;
    let tool = match request.query_param("tool") {
        None => shared.default_tool,
        Some(abbrev) => tool_from_abbrev(abbrev)
            .ok_or_else(|| (404, format!("{{\"error\":\"unknown tool {:?}\"}}", abbrev)))?,
    };
    Ok((tool, target))
}

fn handle_audit(
    shared: &Shared,
    request: &http::Request,
    id: &str,
    stream: &mut TcpStream,
    keep: bool,
) -> io::Result<bool> {
    let (tool, target) = match parse_audit_params(shared, request, id) {
        Ok(pair) => pair,
        Err((status, body)) => {
            shared.count_request("audit", status);
            http::write_response(
                stream,
                status,
                "application/json",
                &[],
                body.as_bytes(),
                keep,
            )?;
            return Ok(keep);
        }
    };
    let events = shared.dispatcher.submit(tool, target);
    loop {
        match events.recv() {
            Ok(JobEvent::Queued { .. } | JobEvent::Started) => continue,
            Ok(JobEvent::Done(answer)) => {
                let body = wire::verdict_json(tool, target, &answer);
                shared.count_request("audit", 200);
                http::write_response(stream, 200, "application/json", &[], body.as_bytes(), keep)?;
                return Ok(keep);
            }
            Ok(JobEvent::Rejected(rejection)) => {
                let (status, body) = wire::rejection_status_and_json(&rejection);
                let retry_after;
                let mut extra: Vec<(&str, &str)> = Vec::new();
                if let crate::dispatch::Rejection::BreakerOpen { retry_in_secs } = &rejection {
                    retry_after = format!("{}", retry_in_secs.ceil().max(1.0) as u64);
                    extra.push(("Retry-After", &retry_after));
                }
                shared.count_request("audit", status);
                http::write_response(
                    stream,
                    status,
                    "application/json",
                    &extra,
                    body.as_bytes(),
                    keep,
                )?;
                return Ok(keep);
            }
            Err(mpsc::RecvError) => {
                shared.count_request("audit", 500);
                let body = b"{\"error\":\"dispatcher hung up\"}";
                http::write_response(stream, 500, "application/json", &[], body, false)?;
                return Ok(false);
            }
        }
    }
}

/// The chunked progress stream: one NDJSON line per [`JobEvent`], then
/// the terminator. Streaming responses always close the connection.
fn handle_audit_stream(
    shared: &Shared,
    request: &http::Request,
    id: &str,
    stream: &mut TcpStream,
) -> io::Result<bool> {
    let (tool, target) = match parse_audit_params(shared, request, id) {
        Ok(pair) => pair,
        Err((status, body)) => {
            shared.count_request("audit_stream", status);
            http::write_response(
                stream,
                status,
                "application/json",
                &[],
                body.as_bytes(),
                false,
            )?;
            return Ok(false);
        }
    };
    let events = shared.dispatcher.submit(tool, target);
    let mut body = ChunkedBody::start(&mut *stream, 200, "application/x-ndjson", &[])?;
    let mut status = 200;
    while let Ok(event) = events.recv() {
        match event {
            JobEvent::Queued { depth } => {
                let line = wire::stream_event_json("queued", &[("depth", depth.to_string())]);
                body.chunk(line.as_bytes())?;
            }
            JobEvent::Started => {
                body.chunk(wire::stream_event_json("started", &[]).as_bytes())?;
            }
            JobEvent::Done(answer) => {
                let verdict = wire::verdict_json(tool, target, &answer);
                let line = wire::stream_event_json("done", &[("verdict", verdict)]);
                body.chunk(line.as_bytes())?;
                break;
            }
            JobEvent::Rejected(rejection) => {
                let (code, error) = wire::rejection_status_and_json(&rejection);
                status = code;
                let line = wire::stream_event_json(
                    "rejected",
                    &[("status", code.to_string()), ("error", error)],
                );
                body.chunk(line.as_bytes())?;
                break;
            }
        }
    }
    body.finish()?;
    shared.count_request("audit_stream", status);
    Ok(false)
}

/// Builds [`QueryOptions`] from the request's query string
/// (`?since=&until=&bucket=&k=&by=`). Unset parameters keep defaults.
fn query_options(request: &http::Request) -> Result<QueryOptions, String> {
    let mut opts = QueryOptions::default();
    if let Some(raw) = request.query_param("since") {
        opts.since_secs = Some(
            raw.parse::<i64>()
                .map_err(|_| format!("bad since {raw:?} (want integer seconds)"))?,
        );
    }
    if let Some(raw) = request.query_param("until") {
        opts.until_secs = Some(
            raw.parse::<i64>()
                .map_err(|_| format!("bad until {raw:?} (want integer seconds)"))?,
        );
    }
    if let Some(raw) = request.query_param("bucket") {
        let bucket = raw
            .parse::<i64>()
            .map_err(|_| format!("bad bucket {raw:?} (want positive integer seconds)"))?;
        if bucket <= 0 {
            return Err(format!(
                "bad bucket {raw:?} (want positive integer seconds)"
            ));
        }
        opts.bucket_secs = bucket;
    }
    if let Some(raw) = request.query_param("k") {
        let k = raw
            .parse::<usize>()
            .map_err(|_| format!("bad k {raw:?} (want positive integer)"))?;
        if k == 0 {
            return Err(format!("bad k {raw:?} (want positive integer)"));
        }
        opts.k = k;
    }
    if let Some(raw) = request.query_param("by") {
        opts.by = raw.parse().map_err(|e: String| e)?;
    }
    Ok(opts)
}

/// `GET /query/:kind` — the analytics surface over the history store.
/// Flushes the writer first so every persisted audit (including rows
/// still in the buffer) is visible to the scan, then runs the query and
/// returns its JSON report.
fn handle_query(
    shared: &Shared,
    request: &http::Request,
    kind: &str,
    stream: &mut TcpStream,
    keep: bool,
) -> io::Result<bool> {
    let respond = |shared: &Shared, stream: &mut TcpStream, status: u16, body: &str| {
        shared.count_request("query", status);
        http::write_response(
            stream,
            status,
            "application/json",
            &[],
            body.as_bytes(),
            keep,
        )
        .map(|()| keep)
    };
    let Some((writer, dir)) = shared.persist.as_ref() else {
        let body = "{\"error\":\"no history store (start the gateway with --persist DIR)\"}";
        return respond(shared, stream, 404, body);
    };
    let kind: QueryKind = match kind.parse() {
        Ok(kind) => kind,
        Err(msg) => {
            return respond(shared, stream, 404, &format!("{{\"error\":{:?}}}", msg));
        }
    };
    let opts = match query_options(request) {
        Ok(opts) => opts,
        Err(msg) => {
            return respond(shared, stream, 400, &format!("{{\"error\":{:?}}}", msg));
        }
    };
    if flush_writer(writer, &shared.telemetry).is_err() {
        return respond(shared, stream, 500, "{\"error\":\"store flush failed\"}");
    }
    let report = Store::open(dir).and_then(|store| queries::run(&store, kind, &opts));
    match report {
        Ok(report) => {
            shared
                .telemetry
                .counter_add("store.queries", &[("kind", kind.as_str())], 1);
            shared.telemetry.counter_add(
                "store.query_rows_scanned",
                &[("kind", kind.as_str())],
                report.stats.rows_scanned,
            );
            shared.telemetry.counter_add(
                "store.query_rows_pruned",
                &[("kind", kind.as_str())],
                report.stats.rows_pruned,
            );
            respond(shared, stream, 200, &report.to_json())
        }
        Err(err) => respond(
            shared,
            stream,
            500,
            &format!("{{\"error\":\"query failed: {err}\"}}"),
        ),
    }
}
