//! The wall-clock dispatcher: bounded admission + per-tool worker pools
//! over the same [`AuditBackend`] seam the simulator drives.
//!
//! This is the "reuse, not fork" core of the gateway. Every policy
//! decision is made by `crates/server` types:
//!
//! * admission is an [`AdmissionQueue`] per tool — the same bounded FIFO
//!   with the same [`OverloadPolicy`] semantics (block, shed-503,
//!   degrade-to-stale) the discrete-event simulator exercises;
//! * service goes through [`AuditBackend::serve_traced_at`], so the
//!   analytics `OnlineService` — cache, quota, Table II response times,
//!   circuit breaker — is byte-for-byte the simulator's backend;
//! * bookkeeping produces [`RequestRecord`]s and feeds
//!   [`observe_request`], so `/metrics`, end-of-run reports and the E8/E9
//!   analysis tooling read identically off either world.
//!
//! What differs from the simulator is only the execution substrate:
//! real OS threads pull jobs from the queues (one pool per tool, each
//! worker owning its own cloned backend — share-nothing, so no lock is
//! held during service), and time comes from a shared
//! [`Clock`](fakeaudit_telemetry::Clock) instead of an event heap.
//! Service time is the *actual CPU cost* of the audit: the dispatcher
//! never sleeps out simulated seconds. The simulated Table II cost still
//! travels in the response (`response_secs`) for cross-checking the two
//! worlds.

use fakeaudit_analytics::{BreakerState, ServiceError, ServiceResponse};
use fakeaudit_detectors::ToolId;
use fakeaudit_server::{
    audit_record, flush_writer, observe_request, persist_record, writer_health, Admission,
    AdmissionQueue, AuditBackend, OverloadPolicy, RequestOutcome, RequestRecord, ServerConfig,
    ServerReport,
};
use fakeaudit_store::{SharedWriter, StoreHealth};
use fakeaudit_telemetry::analyze::names;
use fakeaudit_telemetry::{Clock, Telemetry, TraceContext};
use fakeaudit_twittersim::{AccountId, Platform};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// A backend the dispatcher can hand to a worker thread.
pub type BoxedBackend = Box<dyn AuditBackend + Send>;

/// The per-tool serving capacity handed to [`Dispatcher::start`]: one
/// backend instance per worker (share-nothing) plus one admission-time
/// reader for the degrade-to-stale path.
pub struct ToolPool {
    /// The tool every backend in this pool serves.
    pub tool: ToolId,
    /// One owned backend per worker thread.
    pub workers: Vec<BoxedBackend>,
    /// Backend consulted (read-only) at admission time for stale answers.
    pub stale: BoxedBackend,
}

impl std::fmt::Debug for ToolPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ToolPool")
            .field("tool", &self.tool)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Where an answered verdict came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerSource {
    /// A worker ran the audit.
    Fresh,
    /// A worker answered from the service's fresh cache.
    Cache,
    /// The admission path served a stale cached report (degrade policy).
    Stale,
}

impl AnswerSource {
    /// Label used in traces, metrics and response JSON.
    pub fn label(self) -> &'static str {
        match self {
            AnswerSource::Fresh => "fresh",
            AnswerSource::Cache => "cache",
            AnswerSource::Stale => "stale",
        }
    }
}

/// A successfully answered request.
#[derive(Debug, Clone)]
pub struct Answered {
    /// The service's verdict.
    pub response: ServiceResponse,
    /// Where the answer came from.
    pub source: AnswerSource,
    /// Real seconds spent in the admission queue.
    pub queue_wait_secs: f64,
    /// Real seconds of service (0 for stale answers).
    pub service_secs: f64,
}

/// Why a request got no verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejection {
    /// Refused at admission: queue full (or the gateway is draining).
    Shed,
    /// The tool's circuit breaker is open; retry after the cooldown.
    BreakerOpen {
        /// Suggested client back-off in seconds.
        retry_in_secs: f64,
    },
    /// Dropped in queue past the end-to-end deadline.
    Expired,
    /// The backend errored (quota exhausted, audit failure).
    Failed(String),
}

/// Progress of one submitted request, delivered over the channel
/// returned by [`Dispatcher::submit`]. `Done` / `Rejected` are terminal.
#[derive(Debug)]
pub enum JobEvent {
    /// Admitted; `depth` is the queue depth at admission.
    Queued {
        /// Queue depth right after this job was admitted.
        depth: usize,
    },
    /// A worker started the audit.
    Started,
    /// Terminal: the verdict.
    Done(Box<Answered>),
    /// Terminal: no verdict.
    Rejected(Rejection),
}

/// One queued unit of work.
struct Job {
    id: u64,
    target: AccountId,
    arrived: f64,
    events: mpsc::Sender<JobEvent>,
    req_ctx: TraceContext,
}

struct LaneState {
    queue: AdmissionQueue<Job>,
    stale: BoxedBackend,
    shutting_down: bool,
    /// Last-published circuit-breaker state. Worker backends own their
    /// breakers and live inside worker threads, so each worker publishes
    /// its backend's state here after every serve; `None` means the
    /// backends run no breaker.
    breaker: Option<BreakerState>,
}

/// One lane's operational snapshot, surfaced by
/// [`Dispatcher::lane_status`] for `/healthz` and `/debug/vars`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneStatus {
    /// The tool this lane serves.
    pub tool: ToolId,
    /// Jobs currently waiting in the admission queue.
    pub queue_depth: usize,
    /// Circuit-breaker state last published by a worker (`None` when the
    /// backends run no breaker).
    pub breaker: Option<BreakerState>,
}

/// One tool's admission queue + worker-wakeup pair.
struct Lane {
    tool: ToolId,
    state: Mutex<LaneState>,
    ready: Condvar,
}

struct Shared {
    lanes: Vec<Arc<Lane>>,
    platform: Arc<Platform>,
    telemetry: Telemetry,
    root: TraceContext,
    clock: Arc<dyn Clock>,
    config: ServerConfig,
    /// Platform-epoch seconds: backends stamp their sub-spans on the
    /// platform clock, the gateway on the wall clock; contexts handed to
    /// backends are rebased across this offset exactly like the
    /// simulator does.
    epoch_secs: f64,
    next_id: AtomicU64,
    records: Mutex<Vec<RequestRecord>>,
    /// Columnar history writer; every answered request appends one row.
    persist: Option<SharedWriter>,
}

impl Shared {
    /// Appends one answered request to the history store, if persisting.
    /// Timestamps land on the epoch clock (platform epoch + wall seconds
    /// since gateway boot), mirroring the simulator's convention.
    fn persist_completion(
        &self,
        id: u64,
        target: AccountId,
        finished: f64,
        outcome_label: &str,
        response: &ServiceResponse,
    ) {
        if let Some(writer) = &self.persist {
            let record = audit_record(
                target,
                self.epoch_secs + finished,
                outcome_label,
                id,
                response,
            );
            persist_record(writer, &self.telemetry, record);
        }
    }
}

/// Admission control + per-tool worker pools over real threads.
///
/// Create with [`Dispatcher::start`], submit with [`Dispatcher::submit`],
/// and stop with [`Dispatcher::shutdown`] — which refuses new work,
/// drains every queued job through the workers, and joins the threads.
pub struct Dispatcher {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Dispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatcher")
            .field("lanes", &self.shared.lanes.len())
            .field("config", &self.shared.config)
            .finish()
    }
}

impl Dispatcher {
    /// Boots one worker pool per [`ToolPool`] and returns the running
    /// dispatcher. `config.workers_per_tool` is taken from each pool's
    /// actual backend count, so the two cannot disagree.
    pub fn start(
        platform: Arc<Platform>,
        pools: Vec<ToolPool>,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
        telemetry: Telemetry,
    ) -> Self {
        Self::start_with_persist(platform, pools, config, clock, telemetry, None)
    }

    /// [`Dispatcher::start`] plus an optional columnar-history writer:
    /// every answered request (completed or degraded) appends one
    /// [`fakeaudit_store::AuditRecord`]; [`Dispatcher::shutdown`] flushes
    /// the writer's tail buffer after the drain, so no completed audit is
    /// lost on Ctrl-C.
    pub fn start_with_persist(
        platform: Arc<Platform>,
        pools: Vec<ToolPool>,
        mut config: ServerConfig,
        clock: Arc<dyn Clock>,
        telemetry: Telemetry,
        persist: Option<SharedWriter>,
    ) -> Self {
        if let Some(pool) = pools.first() {
            config.workers_per_tool = pool.workers.len().max(1);
        }
        let epoch_secs = platform.now().as_secs() as f64;
        let root = telemetry.root_context();
        let lanes: Vec<Arc<Lane>> = pools
            .iter()
            .map(|pool| {
                Arc::new(Lane {
                    tool: pool.tool,
                    state: Mutex::new(LaneState {
                        queue: AdmissionQueue::new(config.queue_capacity, config.policy),
                        // Placeholder replaced below when the pool is consumed.
                        stale: Box::new(NullBackend(pool.tool)),
                        shutting_down: false,
                        breaker: pool.workers.first().and_then(|b| b.breaker_state()),
                    }),
                    ready: Condvar::new(),
                })
            })
            .collect();
        let shared = Arc::new(Shared {
            lanes: lanes.clone(),
            platform,
            telemetry,
            root,
            clock,
            config,
            epoch_secs,
            next_id: AtomicU64::new(0),
            records: Mutex::new(Vec::new()),
            persist,
        });
        let mut workers = Vec::new();
        for (lane, pool) in lanes.iter().zip(pools) {
            lane.state.lock().stale = pool.stale;
            for (i, backend) in pool.workers.into_iter().enumerate() {
                let lane = Arc::clone(lane);
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name(format!("audit-{}-{i}", lane.tool.abbrev()))
                    .spawn(move || worker_loop(&shared, &lane, backend))
                    .expect("spawn worker thread");
                workers.push(handle);
            }
        }
        Self {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// The tools this dispatcher serves, in registration order.
    pub fn tools(&self) -> Vec<ToolId> {
        self.shared.lanes.iter().map(|l| l.tool).collect()
    }

    /// The admission/worker configuration in force.
    pub fn config(&self) -> ServerConfig {
        self.shared.config
    }

    /// Current time on the dispatcher's clock.
    pub fn now_secs(&self) -> f64 {
        self.shared.clock.now_secs()
    }

    /// A point-in-time operational snapshot of every lane: queue depth
    /// and last-published breaker state, in registration order.
    pub fn lane_status(&self) -> Vec<LaneStatus> {
        self.shared
            .lanes
            .iter()
            .map(|lane| {
                let st = lane.state.lock();
                LaneStatus {
                    tool: lane.tool,
                    queue_depth: st.queue.len(),
                    breaker: st.breaker,
                }
            })
            .collect()
    }

    /// Submits one audit request.
    ///
    /// The returned channel delivers [`JobEvent`]s and always ends with a
    /// terminal `Done` or `Rejected` — including for synchronous
    /// refusals, which are already in the channel when this returns.
    pub fn submit(&self, tool: ToolId, target: AccountId) -> mpsc::Receiver<JobEvent> {
        let shared = &self.shared;
        let (tx, rx) = mpsc::channel();
        let arrived = shared.clock.now_secs();
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let Some(lane) = shared.lanes.iter().find(|l| l.tool == tool) else {
            let _ = tx.send(JobEvent::Rejected(Rejection::Shed));
            return rx;
        };
        let job = Job {
            id,
            target,
            arrived,
            events: tx.clone(),
            req_ctx: shared.root.child(),
        };
        let mut st = lane.state.lock();
        if st.shutting_down {
            drop(st);
            shared.refuse(id, tool, target, arrived, RequestOutcome::Shed);
            let _ = tx.send(JobEvent::Rejected(Rejection::Shed));
            return rx;
        }
        match st.queue.offer(job) {
            Admission::Enqueued | Admission::Blocked => {
                let depth = st.queue.len();
                drop(st);
                lane.ready.notify_one();
                shared.telemetry.gauge_set(
                    "server.queue_depth",
                    &[("tool", tool.abbrev())],
                    depth as f64,
                );
                let _ = tx.send(JobEvent::Queued { depth });
            }
            Admission::Overloaded => {
                let stale = if shared.config.policy == OverloadPolicy::DegradeStale {
                    st.stale.serve_stale(target)
                } else {
                    None
                };
                drop(st);
                match stale {
                    Some(response) => {
                        let finished = shared.clock.now_secs();
                        shared.record_degraded(id, tool, target, arrived, finished, &response);
                        let _ = tx.send(JobEvent::Done(Box::new(Answered {
                            response,
                            source: AnswerSource::Stale,
                            queue_wait_secs: 0.0,
                            service_secs: finished - arrived,
                        })));
                    }
                    None => {
                        shared.refuse(id, tool, target, arrived, RequestOutcome::Shed);
                        let _ = tx.send(JobEvent::Rejected(Rejection::Shed));
                    }
                }
            }
        }
        rx
    }

    /// Stops accepting work, drains every queued job through the worker
    /// pools, joins the worker threads, and flushes any buffered store
    /// rows so the persisted history is complete. Idempotent.
    pub fn shutdown(&self) {
        for lane in &self.shared.lanes {
            lane.state.lock().shutting_down = true;
            lane.ready.notify_all();
        }
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        // Workers are joined: nothing appends concurrently, so this
        // flush captures every completed audit.
        if let Some(writer) = &self.shared.persist {
            let _ = flush_writer(writer, &self.shared.telemetry);
        }
    }

    /// The history writer's health (segment count, buffered rows, last
    /// flush), or `None` when the gateway runs without `--persist`.
    pub fn store_health(&self) -> Option<StoreHealth> {
        self.shared.persist.as_ref().map(writer_health)
    }

    /// A point-in-time report over every request seen so far, aggregated
    /// by the **same** `ServerReport` code the simulator uses; queue
    /// high-water marks are patched in from the live queues.
    pub fn report(&self) -> ServerReport {
        let records = self.shared.records.lock().clone();
        let makespan = self.shared.clock.now_secs();
        let mut report = ServerReport::from_records(records, self.shared.config, makespan);
        for summary in &mut report.per_tool {
            if let Some(lane) = self
                .shared
                .lanes
                .iter()
                .find(|l| Some(l.tool) == summary.tool)
            {
                let st = lane.state.lock();
                summary.max_queue_depth = st.queue.max_depth();
                summary.max_blocked = st.queue.max_overflow();
            }
        }
        report
    }
}

impl Shared {
    fn push_record(&self, record: RequestRecord) {
        let labels = [
            ("tool", record.tool.abbrev()),
            ("outcome", record.outcome.label()),
        ];
        self.telemetry.counter_add("server.requests", &labels, 1);
        if record.answered() {
            observe_request(&self.telemetry, record.tool.abbrev(), &record);
        }
        self.records.lock().push(record);
    }

    /// Records a refusal (shed at admission, expired in queue) with the
    /// same trace points the simulator emits.
    fn refuse(
        &self,
        id: u64,
        tool: ToolId,
        target: AccountId,
        arrived: f64,
        outcome: RequestOutcome,
    ) {
        let now = self.clock.now_secs();
        let (name, finished) = match outcome {
            RequestOutcome::Expired => (names::SERVER_EXPIRED, Some(now)),
            RequestOutcome::Failed => (names::SERVER_FAILED, Some(now)),
            _ => (names::SERVER_SHED, None),
        };
        if self.root.is_enabled() {
            let target_s = target.to_string();
            self.root.point(
                name,
                finished.unwrap_or(arrived),
                &[("tool", tool.abbrev()), ("target", &target_s)],
            );
        }
        self.push_record(RequestRecord {
            id,
            tool,
            target,
            arrived,
            started: None,
            finished,
            outcome,
        });
    }

    fn record_degraded(
        &self,
        id: u64,
        tool: ToolId,
        target: AccountId,
        arrived: f64,
        finished: f64,
        response: &ServiceResponse,
    ) {
        if self.root.is_enabled() {
            let target_s = target.to_string();
            let req_ctx = self.root.child();
            req_ctx.span(
                names::SERVER_SERVICE,
                arrived,
                finished,
                &[("tool", tool.abbrev()), ("source", "stale")],
            );
            req_ctx.record(
                names::SERVER_REQUEST,
                arrived,
                finished,
                &[
                    ("tool", tool.abbrev()),
                    ("target", &target_s),
                    ("outcome", "degraded"),
                ],
            );
        }
        self.push_record(RequestRecord {
            id,
            tool,
            target,
            arrived,
            started: Some(arrived),
            finished: Some(finished),
            outcome: RequestOutcome::Degraded,
        });
        self.persist_completion(id, target, finished, "degraded", response);
    }
}

/// One worker thread: pull, serve, record — until told to stop *and* the
/// queue is dry, so shutdown drains in-flight work by construction.
fn worker_loop(shared: &Shared, lane: &Lane, mut backend: BoxedBackend) {
    loop {
        let job = {
            let mut st = lane.state.lock();
            loop {
                if let Some(job) = st.queue.pop() {
                    break job;
                }
                if st.shutting_down {
                    return;
                }
                lane.ready.wait(&mut st);
            }
        };
        serve_one(shared, lane, &mut backend, job);
        // Publish this backend's breaker state so admission-side readers
        // (`/healthz`, `/debug/vars`) see breaker health without touching
        // worker-owned backends.
        let state = backend.breaker_state();
        lane.state.lock().breaker = state;
    }
}

fn serve_one(shared: &Shared, lane: &Lane, backend: &mut BoxedBackend, job: Job) {
    let tool = lane.tool;
    let now = shared.clock.now_secs();
    if shared
        .config
        .deadline_secs
        .is_some_and(|d| now - job.arrived > d)
    {
        shared.refuse(
            job.id,
            tool,
            job.target,
            job.arrived,
            RequestOutcome::Expired,
        );
        let _ = job.events.send(JobEvent::Rejected(Rejection::Expired));
        return;
    }
    let _ = job.events.send(JobEvent::Started);
    // Mirrors the simulator's `start_service`: `req_ctx` is the
    // `server.request` span, `svc_ctx` the `server.service` span the
    // backend nests its own subtree under, rebased from the wall clock
    // onto the platform's epoch clock.
    let svc_ctx = job.req_ctx.child();
    let backend_ctx = svc_ctx.clone().rebased(now - shared.epoch_secs);
    match backend.serve_traced_at(&shared.platform, job.target, &backend_ctx, now) {
        Ok(response) => {
            let finished = shared.clock.now_secs();
            if job.req_ctx.is_enabled() {
                let tool_s = tool.abbrev();
                let target_s = job.target.to_string();
                job.req_ctx.span(
                    names::SERVER_QUEUE_WAIT,
                    job.arrived,
                    now,
                    &[("tool", tool_s)],
                );
                let source = if response.served_from_cache {
                    "cache"
                } else {
                    "fresh"
                };
                svc_ctx.record(
                    names::SERVER_SERVICE,
                    now,
                    finished,
                    &[("tool", tool_s), ("source", source)],
                );
                job.req_ctx.record(
                    names::SERVER_REQUEST,
                    job.arrived,
                    finished,
                    &[
                        ("tool", tool_s),
                        ("target", &target_s),
                        ("outcome", "completed"),
                    ],
                );
            }
            let source = if response.served_from_cache {
                AnswerSource::Cache
            } else {
                AnswerSource::Fresh
            };
            shared.push_record(RequestRecord {
                id: job.id,
                tool,
                target: job.target,
                arrived: job.arrived,
                started: Some(now),
                finished: Some(finished),
                outcome: RequestOutcome::Completed {
                    cached: response.served_from_cache,
                },
            });
            shared.persist_completion(job.id, job.target, finished, "completed", &response);
            let _ = job.events.send(JobEvent::Done(Box::new(Answered {
                response,
                source,
                queue_wait_secs: now - job.arrived,
                service_secs: finished - now,
            })));
        }
        Err(err) => {
            shared.refuse(
                job.id,
                tool,
                job.target,
                job.arrived,
                RequestOutcome::Failed,
            );
            let rejection = match err {
                ServiceError::Unavailable { retry_in_secs, .. } => {
                    Rejection::BreakerOpen { retry_in_secs }
                }
                other => Rejection::Failed(other.to_string()),
            };
            let _ = job.events.send(JobEvent::Rejected(rejection));
        }
    }
}

/// Placeholder stale backend used only during pool wiring; never serves.
struct NullBackend(ToolId);

impl AuditBackend for NullBackend {
    fn tool(&self) -> ToolId {
        self.0
    }

    fn serve(
        &mut self,
        _platform: &Platform,
        _target: AccountId,
    ) -> Result<ServiceResponse, ServiceError> {
        Err(ServiceError::Unavailable {
            tool: self.0,
            retry_in_secs: 0.0,
        })
    }

    fn serve_stale(&self, _target: AccountId) -> Option<ServiceResponse> {
        None
    }
}
