//! The wall-clock twin of the audit service: a real HTTP/1.1 front-end
//! over the exact machinery the discrete-event simulator exercises.
//!
//! PRs 1–5 built a *simulated* serving stack — `OnlineService` backends
//! with Table II response-time models, bounded admission queues with
//! block/shed/degrade policies, circuit breakers, causal tracing — and
//! validated its behaviour under E8 offered-load sweeps, all on a
//! deterministic sim clock. This crate puts that same stack behind real
//! sockets and real threads, seeding the repo's hardware-performance
//! trajectory (`results/BENCH_gateway.json`).
//!
//! The layering, bottom-up:
//!
//! * [`http`] — a minimal hand-rolled HTTP/1.1 layer (incremental
//!   parser with hard limits, fixed + chunked response writers). No
//!   async runtime: the gateway is thread-per-core over
//!   `std::net::TcpListener`, which keeps the workspace dependency-free
//!   and the perf numbers attributable to *our* code;
//! * [`dispatch`] — bounded admission + per-tool worker pools over the
//!   `crates/server` [`AuditBackend`](fakeaudit_server::AuditBackend)
//!   seam. Policy logic (queues, overload behaviour, breakers, metric
//!   vocabulary) is imported from the sim stack, never duplicated;
//! * [`server`] — the listener: accept threads, the routes
//!   (`POST /audit/:target`, `GET /audit/:target/stream`, `GET /healthz`,
//!   `GET /metrics`, `GET /debug/profile`, `GET /debug/vars`), per-route
//!   RED accounting with exemplar trace ids, and a two-phase graceful
//!   drain;
//! * [`loadgen`] — closed- and open-loop load generation replaying the
//!   E8 workload shapes against a live listener, plus the
//!   `BENCH_gateway.json` renderer;
//! * [`wire`] — response JSON and the Prometheus text exposition.
//!
//! Time comes from a shared [`Clock`](fakeaudit_telemetry::Clock)
//! (`WallClock` in production, `ManualClock` in tests), so spans,
//! breaker cooldowns and SLO windows work identically off either time
//! source — that abstraction lives in `crates/telemetry`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dispatch;
pub mod http;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use dispatch::{
    AnswerSource, Answered, BoxedBackend, Dispatcher, JobEvent, LaneStatus, Rejection, ToolPool,
};
pub use loadgen::{render_bench_json, run_closed_loop, run_open_loop, LoadSummary};
pub use server::{tool_from_abbrev, Gateway, GatewayConfig};
