//! A minimal HTTP/1.1 layer: incremental request parsing and response
//! writing over any `Read`/`Write` pair.
//!
//! Deliberately tiny — the gateway serves four routes to trusted load
//! generators and ops tooling, not the open internet — but strict about
//! the failure modes that matter for a long-running listener:
//!
//! * **incremental**: [`parse_request`] works over a growing byte buffer
//!   and reports [`Parse::Partial`] until a full head (and declared body)
//!   has arrived, so slow or fragmented clients cost retries, not errors;
//! * **bounded**: request heads, header counts and bodies all have hard
//!   limits ([`Limits`]); exceeding one is a typed error that maps to a
//!   definite status code (431/413/400), never an allocation blow-up;
//! * **total**: no input — truncated, binary, adversarial — panics the
//!   parser. The proptests in `tests/http_proptests.rs` hammer this.
//!
//! Only what the gateway needs is implemented: `Content-Length` bodies
//! (no chunked *requests*), HTTP/1.0 and 1.1, latin headers. Responses
//! support fixed bodies ([`write_response`]) and chunked streaming
//! ([`ChunkedBody`]) for the progress endpoint.

use std::io::{self, Write};

/// Hard limits applied while parsing one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum bytes of request line + headers (excluding body).
    pub max_head_bytes: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum declared `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token, uppercased by convention of the sender (`GET`, …).
    pub method: String,
    /// The raw request target: path plus optional `?query`.
    pub target: String,
    /// `1.0` or `1.1`.
    pub minor_version: u8,
    /// Header name/value pairs in arrival order; names as sent.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, matched case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The path component of the target (before any `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The query string (after the first `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Looks up `key` in the query string (`k=v&k2=v2`, no decoding).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query()?
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// Whether the connection should stay open after this exchange.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.minor_version >= 1,
        }
    }
}

/// Outcome of a parse attempt over the bytes received so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// A complete request, plus how many buffer bytes it consumed.
    Complete(Request, usize),
    /// Valid so far, but more bytes are needed.
    Partial,
}

/// A malformed or over-limit request. Each variant maps to one response
/// status via [`Error::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Request line is not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// Head is not valid UTF-8.
    BadEncoding,
    /// A header line has no `:` or an empty name.
    BadHeader,
    /// `Content-Length` is not a number.
    BadContentLength,
    /// Not an `HTTP/1.0` or `HTTP/1.1` request.
    UnsupportedVersion,
    /// `Transfer-Encoding` request bodies are not supported.
    UnsupportedTransferEncoding,
    /// Request line + headers exceed [`Limits::max_head_bytes`].
    HeadTooLarge,
    /// More than [`Limits::max_headers`] header lines.
    TooManyHeaders,
    /// Declared body exceeds [`Limits::max_body_bytes`].
    BodyTooLarge,
}

impl Error {
    /// The response status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            Error::HeadTooLarge | Error::TooManyHeaders => 431,
            Error::BodyTooLarge => 413,
            Error::UnsupportedVersion => 505,
            Error::UnsupportedTransferEncoding => 501,
            _ => 400,
        }
    }

    /// Short human-readable description.
    pub fn message(&self) -> &'static str {
        match self {
            Error::BadRequestLine => "malformed request line",
            Error::BadEncoding => "request head is not UTF-8",
            Error::BadHeader => "malformed header",
            Error::BadContentLength => "invalid content-length",
            Error::UnsupportedVersion => "only HTTP/1.0 and HTTP/1.1 are supported",
            Error::UnsupportedTransferEncoding => "transfer-encoding bodies are not supported",
            Error::HeadTooLarge => "request head too large",
            Error::TooManyHeaders => "too many headers",
            Error::BodyTooLarge => "request body too large",
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for Error {}

/// Finds `\r\n\r\n` in `buf`, returning the index of the first byte of
/// the terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Attempts to parse one request from the front of `buf`.
///
/// Returns [`Parse::Partial`] when `buf` holds a prefix of a (still
/// plausible) request, [`Parse::Complete`] with the consumed byte count
/// otherwise. The caller owns the buffer and drains consumed bytes, so
/// pipelined requests parse on subsequent calls.
///
/// # Errors
///
/// [`Error`] when the bytes can never become a valid request under
/// `limits`.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Parse, Error> {
    let head_end = match find_head_end(buf) {
        Some(i) => i,
        None => {
            // An empty line ("\r\n" only) can never grow into a request;
            // everything else might still be a prefix.
            if buf.len() > limits.max_head_bytes {
                return Err(Error::HeadTooLarge);
            }
            return Ok(Parse::Partial);
        }
    };
    if head_end > limits.max_head_bytes {
        return Err(Error::HeadTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| Error::BadEncoding)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(Error::BadRequestLine)?;

    let mut parts = request_line.split(' ');
    let method = parts.next().filter(|m| !m.is_empty()).map(str::to_owned);
    let target = parts.next().filter(|t| !t.is_empty()).map(str::to_owned);
    let version = parts.next();
    let (method, target, version) = match (method, target, version, parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(Error::BadRequestLine),
    };
    if !method
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
    {
        return Err(Error::BadRequestLine);
    }
    let minor_version = match version {
        "HTTP/1.1" => 1,
        "HTTP/1.0" => 0,
        v if v.starts_with("HTTP/") => return Err(Error::UnsupportedVersion),
        _ => return Err(Error::BadRequestLine),
    };

    let mut headers = Vec::new();
    for line in lines {
        if headers.len() >= limits.max_headers {
            return Err(Error::TooManyHeaders);
        }
        let (name, value) = line.split_once(':').ok_or(Error::BadHeader)?;
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(Error::BadHeader);
        }
        headers.push((name.to_owned(), value.trim().to_owned()));
    }

    let request = Request {
        method,
        target,
        minor_version,
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(Error::UnsupportedTransferEncoding);
    }
    let content_length = match request.header("content-length") {
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map_err(|_| Error::BadContentLength)?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(Error::BodyTooLarge);
    }
    let body_start = head_end + 4;
    let total = body_start
        .checked_add(content_length)
        .ok_or(Error::BadContentLength)?;
    if buf.len() < total {
        return Ok(Parse::Partial);
    }
    let mut request = request;
    request.body = buf[body_start..total].to_vec();
    Ok(Parse::Complete(request, total))
}

/// The canonical reason phrase for the statuses the gateway emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response.
///
/// `extra_headers` come after the defaults; `Content-Length` and
/// `Content-Type` are always emitted.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status_reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One write for head + body keeps small responses in a single
    // segment under TCP_NODELAY.
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    w.write_all(&out)
}

/// A chunked-transfer response in progress — the `/audit/:id/stream`
/// endpoint writes one chunk per progress event.
#[derive(Debug)]
pub struct ChunkedBody<W: Write> {
    w: W,
}

impl<W: Write> ChunkedBody<W> {
    /// Writes the response head and switches the body to chunked
    /// encoding. Chunked responses always close the connection when done.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn start(
        mut w: W,
        status: u16,
        content_type: &str,
        extra_headers: &[(&str, &str)],
    ) -> io::Result<Self> {
        let mut head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
            status_reason(status),
        );
        for (k, v) in extra_headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.flush()?;
        Ok(Self { w })
    }

    /// Writes one chunk. Empty data is skipped (an empty chunk would
    /// terminate the stream).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the stream.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Writes the terminating zero chunk and returns the stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the stream.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()?;
        Ok(self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(bytes: &[u8]) -> (Request, usize) {
        match parse_request(bytes, &Limits::default()).unwrap() {
            Parse::Complete(r, n) => (r, n),
            Parse::Partial => panic!("unexpected partial"),
        }
    }

    #[test]
    fn parses_a_simple_get() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let (r, n) = parse_ok(raw);
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/healthz");
        assert_eq!(r.minor_version, 1);
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
        assert!(r.body.is_empty());
        assert_eq!(n, raw.len());
        assert!(r.keep_alive());
    }

    #[test]
    fn parses_body_by_content_length() {
        let raw = b"POST /audit/7 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdXX";
        let (r, n) = parse_ok(raw);
        assert_eq!(r.body, b"abcd");
        // Trailing XX belongs to the next pipelined request.
        assert_eq!(n, raw.len() - 2);
    }

    #[test]
    fn partial_until_head_complete() {
        let full = b"GET / HTTP/1.1\r\n\r\n";
        for cut in 0..full.len() {
            let out = parse_request(&full[..cut], &Limits::default()).unwrap();
            assert_eq!(out, Parse::Partial, "cut at {cut}");
        }
        assert!(matches!(
            parse_request(full, &Limits::default()).unwrap(),
            Parse::Complete(_, 18)
        ));
    }

    #[test]
    fn partial_until_body_complete() {
        let bytes = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345";
        assert_eq!(
            parse_request(bytes, &Limits::default()).unwrap(),
            Parse::Partial
        );
    }

    #[test]
    fn query_params() {
        let (r, _) = parse_ok(b"POST /audit/9?tool=TA&x=1 HTTP/1.1\r\n\r\n");
        assert_eq!(r.path(), "/audit/9");
        assert_eq!(r.query(), Some("tool=TA&x=1"));
        assert_eq!(r.query_param("tool"), Some("TA"));
        assert_eq!(r.query_param("x"), Some("1"));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for bad in [
            &b"GET\r\n\r\n"[..],
            b" / HTTP/1.1\r\n\r\n",
            b"GET  HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"G@T / HTTP/1.1\r\n\r\n",
            b"GET / FTP/1.1\r\n\r\n",
        ] {
            let err = parse_request(bad, &Limits::default()).unwrap_err();
            assert_eq!(err.status(), 400, "{bad:?} -> {err:?}");
        }
    }

    #[test]
    fn rejects_unsupported_versions() {
        let err = parse_request(b"GET / HTTP/2.0\r\n\r\n", &Limits::default()).unwrap_err();
        assert_eq!(err, Error::UnsupportedVersion);
        assert_eq!(err.status(), 505);
    }

    #[test]
    fn rejects_oversized_heads() {
        let limits = Limits {
            max_head_bytes: 64,
            ..Limits::default()
        };
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        assert_eq!(
            parse_request(long.as_bytes(), &limits).unwrap_err(),
            Error::HeadTooLarge
        );
        // Also when the terminator never arrives.
        let partial = "y".repeat(100);
        assert_eq!(
            parse_request(partial.as_bytes(), &limits).unwrap_err(),
            Error::HeadTooLarge
        );
    }

    #[test]
    fn rejects_too_many_headers() {
        let limits = Limits {
            max_headers: 2,
            ..Limits::default()
        };
        let raw = "GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n";
        assert_eq!(
            parse_request(raw.as_bytes(), &limits).unwrap_err(),
            Error::TooManyHeaders
        );
    }

    #[test]
    fn rejects_oversized_bodies_by_declaration() {
        let limits = Limits {
            max_body_bytes: 8,
            ..Limits::default()
        };
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
        let err = parse_request(raw, &limits).unwrap_err();
        assert_eq!(err, Error::BodyTooLarge);
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn rejects_bad_headers_and_lengths() {
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nno-colon\r\n\r\n", &Limits::default()).unwrap_err(),
            Error::BadHeader
        );
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nbad name: v\r\n\r\n", &Limits::default())
                .unwrap_err(),
            Error::BadHeader
        );
        assert_eq!(
            parse_request(
                b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
                &Limits::default()
            )
            .unwrap_err(),
            Error::BadContentLength
        );
    }

    #[test]
    fn rejects_transfer_encoding() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        let err = parse_request(raw, &Limits::default()).unwrap_err();
        assert_eq!(err, Error::UnsupportedTransferEncoding);
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn rejects_non_utf8_heads() {
        let raw = b"GET /\xff\xfe HTTP/1.1\r\n\r\n";
        assert_eq!(
            parse_request(raw, &Limits::default()).unwrap_err(),
            Error::BadEncoding
        );
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let (r, _) = parse_ok(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!r.keep_alive());
        let (r, _) = parse_ok(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!r.keep_alive());
        let (r, _) = parse_ok(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(r.keep_alive());
    }

    #[test]
    fn write_response_shapes_head_and_body() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "application/json",
            &[("Retry-After", "2")],
            b"{\"error\":\"overloaded\"}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"overloaded\"}"));
    }

    #[test]
    fn chunked_body_round_trip() {
        let mut body = ChunkedBody::start(Vec::new(), 200, "application/json", &[]).unwrap();
        body.chunk(b"hello").unwrap();
        body.chunk(b"").unwrap(); // skipped, not a terminator
        body.chunk(b"world!").unwrap();
        let out = body.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.ends_with("5\r\nhello\r\n6\r\nworld!\r\n0\r\n\r\n"));
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let mut buf = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n".to_vec();
        let (r1, n1) = parse_ok(&buf);
        assert_eq!(r1.target, "/a");
        buf.drain(..n1);
        let (r2, _) = parse_ok(&buf);
        assert_eq!(r2.target, "/b");
    }
}
