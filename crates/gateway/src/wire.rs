//! Wire formats: response JSON and the Prometheus text exposition.
//!
//! Hand-rolled like the telemetry JSONL sink — the gateway emits a small
//! closed set of shapes, so a JSON dependency would buy nothing. All
//! encoders are pure functions over already-computed values; nothing
//! here touches sockets or clocks.

use crate::dispatch::{Answered, LaneStatus, Rejection};
use fakeaudit_detectors::ToolId;
use fakeaudit_store::StoreHealth;
use fakeaudit_telemetry::{AlertPhase, MetricsSnapshot, MonitorCounts, RetentionStats};
use fakeaudit_twittersim::AccountId;
use std::fmt::Write as _;

/// Appends the JSON escape of `s` (no surrounding quotes).
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A quoted, escaped JSON string.
fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

/// Renders an f64 as JSON (non-finite becomes `null`).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// The verdict body for an answered audit.
pub fn verdict_json(tool: ToolId, target: AccountId, answer: &Answered) -> String {
    let outcome = &answer.response.outcome;
    let counts = &outcome.counts;
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"target\":{},\"tool\":{},\"tool_name\":{},\"source\":{},\
         \"fake_pct\":{},\"counts\":{{\"inactive\":{},\"fake\":{},\"genuine\":{},\"total\":{}}},\
         \"sampled\":{},\"api_calls\":{},\"response_secs\":{},\
         \"queue_wait_secs\":{},\"service_secs\":{},\"audited_at_secs\":{}}}",
        target.as_u64(),
        quoted(tool.abbrev()),
        quoted(&outcome.tool_name),
        quoted(answer.source.label()),
        num(outcome.fake_pct()),
        counts.inactive,
        counts.fake,
        counts.genuine,
        counts.total(),
        outcome.assessed.len(),
        outcome.api_calls,
        num(answer.response.response_secs),
        num(answer.queue_wait_secs),
        num(answer.service_secs),
        answer.response.assessed_at.as_secs(),
    );
    out
}

/// The status code and error body for a refused audit.
pub fn rejection_status_and_json(rejection: &Rejection) -> (u16, String) {
    match rejection {
        Rejection::Shed => (503, "{\"error\":\"overloaded\"}".to_owned()),
        Rejection::BreakerOpen { retry_in_secs } => (
            503,
            format!(
                "{{\"error\":\"breaker_open\",\"retry_in_secs\":{}}}",
                num(*retry_in_secs)
            ),
        ),
        Rejection::Expired => (504, "{\"error\":\"deadline_expired\"}".to_owned()),
        Rejection::Failed(msg) => (502, format!("{{\"error\":{}}}", quoted(msg))),
    }
}

/// One lane's `{"tool":…,"queue_depth":…,"breaker":…}` object, shared by
/// `/healthz` and `/debug/vars`. `breaker` is the state key
/// (`closed`/`open`/`half_open`) or `null` when the backends run none.
fn lane_json(lane: &LaneStatus) -> String {
    let breaker = match lane.breaker {
        Some(state) => quoted(state.key()),
        None => "null".to_owned(),
    };
    format!(
        "{{\"tool\":{},\"queue_depth\":{},\"breaker\":{breaker}}}",
        quoted(lane.tool.abbrev()),
        lane.queue_depth
    )
}

/// The audit-history store state as a JSON value: an object when the
/// gateway runs with `--persist`, `null` otherwise.
fn store_json(store: Option<&StoreHealth>) -> String {
    match store {
        Some(health) => format!(
            "{{\"segments\":{},\"buffered_rows\":{},\"flushed_rows\":{},\"last_flush_seq\":{},\
             \"degraded\":{},\"dropped_rows\":{},\"quarantined_segments\":{},\
             \"wal_recovered_rows\":{}}}",
            health.segments,
            health.buffered_rows,
            health.flushed_rows,
            health.last_flush_seq,
            health.degraded,
            health.dropped_rows,
            health.quarantined_segments,
            health.wal_recovered_rows
        ),
        None => "null".to_owned(),
    }
}

/// The per-route SLO block as a JSON value: an array of
/// `{"route":…,"status":…}` when the gateway runs a monitor (`--slo`),
/// `null` otherwise.
fn slo_json(slo: Option<&[(String, AlertPhase)]>) -> String {
    match slo {
        Some(routes) => {
            let mut out = String::from("[");
            for (i, (route, phase)) in routes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"route\":{},\"status\":{}}}",
                    quoted(route),
                    quoted(phase.as_str())
                );
            }
            out.push(']');
            out
        }
        None => "null".to_owned(),
    }
}

/// The `/healthz` body: overall status plus per-tool breaker state and
/// queue depth, the per-route SLO status when a monitor runs, and —
/// when persisting — the history store's state.
pub fn health_json(
    lanes: &[LaneStatus],
    uptime_secs: f64,
    draining: bool,
    store: Option<&StoreHealth>,
    slo: Option<&[(String, AlertPhase)]>,
) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"status\":");
    out.push_str(if draining { "\"draining\"" } else { "\"ok\"" });
    let _ = write!(out, ",\"uptime_secs\":{},\"tools\":[", num(uptime_secs));
    for (i, lane) in lanes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&lane_json(lane));
    }
    let _ = write!(
        out,
        "],\"slo\":{},\"store\":{}}}",
        slo_json(slo),
        store_json(store)
    );
    out
}

/// The monitor block for `/debug/vars` as a JSON value: cumulative
/// alert-transition and trace-sampling counters plus the parked-lane
/// state, or `null` when no monitor runs.
fn monitor_json(monitor: Option<(&MonitorCounts, Option<RetentionStats>)>) -> String {
    match monitor {
        Some((counts, retention)) => {
            let retention = retention.unwrap_or_default();
            format!(
                "{{\"alerts_pending\":{},\"alerts_firing\":{},\"alerts_resolved\":{},\
                 \"active_pending\":{},\"active_firing\":{},\
                 \"traces_kept\":{},\"traces_sampled\":{},\"traces_dropped\":{},\
                 \"protected_trees\":{},\"parked_events\":{},\"parked_dropped\":{}}}",
                counts.pending,
                counts.firing,
                counts.resolved,
                counts.active_pending,
                counts.active_firing,
                counts.traces_kept,
                counts.traces_sampled,
                counts.traces_dropped,
                retention.protected,
                retention.parked,
                retention.parked_dropped
            )
        }
        None => "null".to_owned(),
    }
}

/// The `/debug/vars` body: build info plus the live operational gauges an
/// operator checks first — expvar-style, one flat JSON object.
pub fn debug_vars_json(
    version: &str,
    uptime_secs: f64,
    draining: bool,
    active_connections: i64,
    dropped_trace_events: u64,
    lanes: &[LaneStatus],
    store: Option<&StoreHealth>,
    monitor: Option<(&MonitorCounts, Option<RetentionStats>)>,
) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"version\":{},\"uptime_secs\":{},\"draining\":{draining},\
         \"active_connections\":{active_connections},\
         \"dropped_trace_events\":{dropped_trace_events},\"tools\":[",
        quoted(version),
        num(uptime_secs),
    );
    for (i, lane) in lanes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&lane_json(lane));
    }
    let _ = write!(
        out,
        "],\"monitor\":{},\"store\":{}}}",
        monitor_json(monitor),
        store_json(store)
    );
    out
}

/// One `/audit/:id/stream` progress line (newline-terminated so clients
/// can split on `\n` across chunk boundaries).
pub fn stream_event_json(event: &str, extra: &[(&str, String)]) -> String {
    let mut out = String::with_capacity(64);
    let _ = write!(out, "{{\"event\":{}", quoted(event));
    for (k, v) in extra {
        let _ = write!(out, ",{}:{}", quoted(k), v);
    }
    out.push_str("}\n");
    out
}

/// Sanitises a dotted metric name for the Prometheus exposition format.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Formats one label set as `{k="v",…}` (empty string when no labels).
fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let mut escaped = String::new();
        escape_into(v, &mut escaped);
        let _ = write!(out, "{}=\"{escaped}\"", prom_name(k));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

/// Help text for the metric families the stack emits; unknown names get
/// a generic line so every family still carries `# HELP`.
fn prom_help(name: &str) -> &'static str {
    match name {
        "server_requests" => "Requests by tool and outcome.",
        "server_queue_depth" => "Admission-queue depth by tool.",
        "server_latency_secs" => "End-to-end request latency in seconds.",
        "gateway_http_requests" => "HTTP requests by route and status.",
        "gateway_http_errors" => "HTTP responses with status >= 400, by route.",
        "gateway_request_secs" => "HTTP request duration in seconds, by route.",
        "breaker_transitions" => "Circuit-breaker state transitions by tool.",
        "api_calls" => "Simulated platform API calls by endpoint.",
        "monitor_alerts" => "SLO alert state-machine transitions by resulting state.",
        "monitor_alerts_firing" => "SLO alert machines currently firing.",
        "monitor_alerts_pending" => "SLO alert machines currently pending.",
        "monitor_traces" => "Tail-sampling decisions on finished request trees.",
        _ => "Audit-pipeline metric (see crates/telemetry).",
    }
}

/// Renders a [`MetricsSnapshot`] in the Prometheus text exposition
/// format (0.0.4): counters and gauges verbatim, histograms as
/// cumulative `_bucket{le=…}` series plus `_sum` / `_count`, every
/// family headed by `# HELP` + `# TYPE`. A histogram carrying an
/// exemplar renders it OpenMetrics-style on the first bucket wide enough
/// to hold it: `… # {trace_id="span#7"} 4.2`.
///
/// Snapshot ordering is deterministic (sorted keys), so two scrapes of
/// identical state render identical bytes — the same property the
/// sim-side golden fixtures rely on elsewhere.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let mut last_header = String::new();
    let mut header = |out: &mut String, name: &str, kind: &str| {
        let lines = format!("# HELP {name} {}\n# TYPE {name} {kind}\n", prom_help(name));
        if lines != last_header {
            out.push_str(&lines);
            last_header = lines;
        }
    };
    for (key, value) in &snapshot.counters {
        let name = prom_name(&key.name);
        header(&mut out, &name, "counter");
        let _ = writeln!(out, "{name}{} {value}", prom_labels(&key.labels, None));
    }
    for (key, value) in &snapshot.gauges {
        let name = prom_name(&key.name);
        header(&mut out, &name, "gauge");
        let _ = writeln!(
            out,
            "{name}{} {}",
            prom_labels(&key.labels, None),
            num(*value)
        );
    }
    for (key, hist) in &snapshot.histograms {
        let name = prom_name(&key.name);
        header(&mut out, &name, "histogram");
        let mut cumulative = 0u64;
        let mut exemplar_pending = hist.exemplar.as_ref();
        for (bound, count) in &hist.buckets {
            cumulative += count;
            let le = if bound.is_finite() {
                format!("{bound}")
            } else {
                "+Inf".to_owned()
            };
            let _ = write!(
                out,
                "{name}_bucket{} {cumulative}",
                prom_labels(&key.labels, Some(("le", &le)))
            );
            // Attach the exemplar to the bucket its value falls in (the
            // first bound at or above it; +Inf catches the rest).
            if let Some(ex) = exemplar_pending {
                if ex.value <= *bound || bound.is_infinite() {
                    let _ = write!(out, " # {{trace_id=\"{}\"}} {}", ex.trace_id, num(ex.value));
                    exemplar_pending = None;
                }
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{name}_sum{} {}",
            prom_labels(&key.labels, None),
            num(hist.sum)
        );
        let _ = writeln!(
            out,
            "{name}_count{} {}",
            prom_labels(&key.labels, None),
            hist.count
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_telemetry::Telemetry;

    #[test]
    fn health_json_shapes() {
        use fakeaudit_analytics::BreakerState;
        let lanes = [
            LaneStatus {
                tool: ToolId::FakeClassifier,
                queue_depth: 2,
                breaker: Some(BreakerState::Closed),
            },
            LaneStatus {
                tool: ToolId::Twitteraudit,
                queue_depth: 0,
                breaker: None,
            },
        ];
        let body = health_json(&lanes, 1.5, false, None, None);
        assert_eq!(
            body,
            "{\"status\":\"ok\",\"uptime_secs\":1.5,\"tools\":[\
             {\"tool\":\"FC\",\"queue_depth\":2,\"breaker\":\"closed\"},\
             {\"tool\":\"TA\",\"queue_depth\":0,\"breaker\":null}],\
             \"slo\":null,\"store\":null}"
        );
        assert!(health_json(&[], 0.0, true, None, None).contains("\"draining\""));
        let store = StoreHealth {
            segments: 3,
            buffered_rows: 5,
            flushed_rows: 12,
            last_flush_seq: 3,
            degraded: true,
            dropped_rows: 2,
            quarantined_segments: 1,
            wal_recovered_rows: 7,
        };
        let body = health_json(&[], 0.0, false, Some(&store), None);
        assert!(body.contains(
            "\"store\":{\"segments\":3,\"buffered_rows\":5,\
             \"flushed_rows\":12,\"last_flush_seq\":3,\
             \"degraded\":true,\"dropped_rows\":2,\
             \"quarantined_segments\":1,\"wal_recovered_rows\":7}"
        ));
        let slo = vec![
            ("audit".to_owned(), AlertPhase::Firing),
            ("query".to_owned(), AlertPhase::Idle),
        ];
        let body = health_json(&[], 0.0, false, None, Some(&slo));
        assert!(body.contains(
            "\"slo\":[{\"route\":\"audit\",\"status\":\"firing\"},\
             {\"route\":\"query\",\"status\":\"ok\"}]"
        ));
    }

    #[test]
    fn debug_vars_shape() {
        use fakeaudit_analytics::BreakerState;
        let lanes = [LaneStatus {
            tool: ToolId::Twitteraudit,
            queue_depth: 1,
            breaker: Some(BreakerState::HalfOpen),
        }];
        let body = debug_vars_json("0.1.0", 2.0, false, 3, 17, &lanes, None, None);
        assert_eq!(
            body,
            "{\"version\":\"0.1.0\",\"uptime_secs\":2,\"draining\":false,\
             \"active_connections\":3,\"dropped_trace_events\":17,\"tools\":[\
             {\"tool\":\"TA\",\"queue_depth\":1,\"breaker\":\"half_open\"}],\
             \"monitor\":null,\"store\":null}"
        );
        let counts = MonitorCounts {
            pending: 4,
            firing: 2,
            resolved: 4,
            active_pending: 0,
            active_firing: 1,
            traces_kept: 9,
            traces_sampled: 3,
            traces_dropped: 88,
        };
        let retention = RetentionStats {
            protected: 12,
            parked: 7,
            parked_dropped: 0,
        };
        let body = debug_vars_json(
            "dev",
            0.0,
            false,
            0,
            0,
            &[],
            None,
            Some((&counts, Some(retention))),
        );
        assert!(body.contains(
            "\"monitor\":{\"alerts_pending\":4,\"alerts_firing\":2,\"alerts_resolved\":4,\
             \"active_pending\":0,\"active_firing\":1,\
             \"traces_kept\":9,\"traces_sampled\":3,\"traces_dropped\":88,\
             \"protected_trees\":12,\"parked_events\":7,\"parked_dropped\":0}"
        ));
    }

    #[test]
    fn rejection_bodies_map_statuses() {
        assert_eq!(rejection_status_and_json(&Rejection::Shed).0, 503);
        assert_eq!(rejection_status_and_json(&Rejection::Expired).0, 504);
        let (status, body) =
            rejection_status_and_json(&Rejection::Failed("quota: \"x\"".to_owned()));
        assert_eq!(status, 502);
        assert!(body.contains("\\\"x\\\""));
        let (status, body) =
            rejection_status_and_json(&Rejection::BreakerOpen { retry_in_secs: 2.5 });
        assert_eq!(status, 503);
        assert!(body.contains("\"retry_in_secs\":2.5"));
    }

    #[test]
    fn stream_events_are_newline_terminated_json() {
        let line = stream_event_json("queued", &[("depth", "3".to_owned())]);
        assert_eq!(line, "{\"event\":\"queued\",\"depth\":3}\n");
    }

    #[test]
    fn prometheus_renders_counters_gauges_histograms() {
        let tel = Telemetry::enabled();
        tel.counter_add(
            "server.requests",
            &[("tool", "TA"), ("outcome", "completed")],
            3,
        );
        tel.gauge_set("server.queue_depth", &[("tool", "TA")], 2.0);
        tel.observe("server.latency_secs", &[("tool", "TA")], 0.5);
        tel.observe("server.latency_secs", &[("tool", "TA")], 5.0);
        let text = prometheus_text(&tel.snapshot());
        assert!(text.contains("# TYPE server_requests counter"));
        assert!(text.contains("# HELP server_requests "));
        assert!(text.contains("server_requests{outcome=\"completed\",tool=\"TA\"} 3"));
        assert!(text.contains("server_queue_depth{tool=\"TA\"} 2"));
        assert!(text.contains("# TYPE server_latency_secs histogram"));
        assert!(text.contains("# HELP server_latency_secs "));
        assert!(text.contains("server_latency_secs_count{tool=\"TA\"} 2"));
        assert!(text.contains("server_latency_secs_sum{tool=\"TA\"} 5.5"));
        // Buckets are cumulative and end at +Inf.
        assert!(text.contains("_bucket{tool=\"TA\",le=\"1\"} 1"));
        assert!(text.contains("_bucket{tool=\"TA\",le=\"+Inf\"} 2"));
    }

    #[test]
    fn type_comment_emitted_once_per_metric_name() {
        let tel = Telemetry::enabled();
        tel.counter_add("c", &[("tool", "TA")], 1);
        tel.counter_add("c", &[("tool", "SB")], 1);
        let text = prometheus_text(&tel.snapshot());
        assert_eq!(text.matches("# TYPE c counter").count(), 1);
        assert_eq!(text.matches("# HELP c ").count(), 1);
    }

    #[test]
    fn histogram_exemplar_renders_on_its_bucket() {
        let tel = Telemetry::enabled();
        tel.observe_with_exemplar("gateway.request_secs", &[("route", "audit")], 0.4, "span#7");
        tel.observe("gateway.request_secs", &[("route", "audit")], 0.002);
        let text = prometheus_text(&tel.snapshot());
        // 0.4 falls in the (0.1, 1] bucket; the exemplar rides that line
        // and no other.
        assert!(
            text.contains("gateway_request_secs_bucket{route=\"audit\",le=\"1\"} 2 # {trace_id=\"span#7\"} 0.4"),
            "{text}"
        );
        assert_eq!(text.matches("trace_id").count(), 1);
        // Without exemplars nothing extra renders.
        let plain = Telemetry::enabled();
        plain.observe("lat", &[], 1.0);
        assert!(!prometheus_text(&plain.snapshot()).contains("trace_id"));
    }

    #[test]
    fn overflow_exemplar_lands_on_inf_bucket() {
        let tel = Telemetry::enabled();
        tel.observe_with_exemplar("crawl.secs", &[], 100_000.0, "span#3");
        let text = prometheus_text(&tel.snapshot());
        assert!(
            text.contains("crawl_secs_bucket{le=\"+Inf\"} 1 # {trace_id=\"span#3\"} 100000"),
            "{text}"
        );
    }
}
