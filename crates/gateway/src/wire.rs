//! Wire formats: response JSON and the Prometheus text exposition.
//!
//! Hand-rolled like the telemetry JSONL sink — the gateway emits a small
//! closed set of shapes, so a JSON dependency would buy nothing. All
//! encoders are pure functions over already-computed values; nothing
//! here touches sockets or clocks.

use crate::dispatch::{Answered, Rejection};
use fakeaudit_detectors::ToolId;
use fakeaudit_telemetry::MetricsSnapshot;
use fakeaudit_twittersim::AccountId;
use std::fmt::Write as _;

/// Appends the JSON escape of `s` (no surrounding quotes).
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A quoted, escaped JSON string.
fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

/// Renders an f64 as JSON (non-finite becomes `null`).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// The verdict body for an answered audit.
pub fn verdict_json(tool: ToolId, target: AccountId, answer: &Answered) -> String {
    let outcome = &answer.response.outcome;
    let counts = &outcome.counts;
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"target\":{},\"tool\":{},\"tool_name\":{},\"source\":{},\
         \"fake_pct\":{},\"counts\":{{\"inactive\":{},\"fake\":{},\"genuine\":{},\"total\":{}}},\
         \"sampled\":{},\"api_calls\":{},\"response_secs\":{},\
         \"queue_wait_secs\":{},\"service_secs\":{},\"audited_at_secs\":{}}}",
        target.as_u64(),
        quoted(tool.abbrev()),
        quoted(&outcome.tool_name),
        quoted(answer.source.label()),
        num(outcome.fake_pct()),
        counts.inactive,
        counts.fake,
        counts.genuine,
        counts.total(),
        outcome.assessed.len(),
        outcome.api_calls,
        num(answer.response.response_secs),
        num(answer.queue_wait_secs),
        num(answer.service_secs),
        answer.response.assessed_at.as_secs(),
    );
    out
}

/// The status code and error body for a refused audit.
pub fn rejection_status_and_json(rejection: &Rejection) -> (u16, String) {
    match rejection {
        Rejection::Shed => (503, "{\"error\":\"overloaded\"}".to_owned()),
        Rejection::BreakerOpen { retry_in_secs } => (
            503,
            format!(
                "{{\"error\":\"breaker_open\",\"retry_in_secs\":{}}}",
                num(*retry_in_secs)
            ),
        ),
        Rejection::Expired => (504, "{\"error\":\"deadline_expired\"}".to_owned()),
        Rejection::Failed(msg) => (502, format!("{{\"error\":{}}}", quoted(msg))),
    }
}

/// The `/healthz` body.
pub fn health_json(tools: &[ToolId], uptime_secs: f64, draining: bool) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"status\":");
    out.push_str(if draining { "\"draining\"" } else { "\"ok\"" });
    let _ = write!(out, ",\"uptime_secs\":{},\"tools\":[", num(uptime_secs));
    for (i, tool) in tools.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&quoted(tool.abbrev()));
    }
    out.push_str("]}");
    out
}

/// One `/audit/:id/stream` progress line (newline-terminated so clients
/// can split on `\n` across chunk boundaries).
pub fn stream_event_json(event: &str, extra: &[(&str, String)]) -> String {
    let mut out = String::with_capacity(64);
    let _ = write!(out, "{{\"event\":{}", quoted(event));
    for (k, v) in extra {
        let _ = write!(out, ",{}:{}", quoted(k), v);
    }
    out.push_str("}\n");
    out
}

/// Sanitises a dotted metric name for the Prometheus exposition format.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Formats one label set as `{k="v",…}` (empty string when no labels).
fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let mut escaped = String::new();
        escape_into(v, &mut escaped);
        let _ = write!(out, "{}=\"{escaped}\"", prom_name(k));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

/// Renders a [`MetricsSnapshot`] in the Prometheus text exposition
/// format: counters and gauges verbatim, histograms as cumulative
/// `_bucket{le=…}` series plus `_sum` / `_count`.
///
/// Snapshot ordering is deterministic (sorted keys), so two scrapes of
/// identical state render identical bytes — the same property the
/// sim-side golden fixtures rely on elsewhere.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let mut last_type_line = String::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        let line = format!("# TYPE {name} {kind}\n");
        if line != last_type_line {
            out.push_str(&line);
            last_type_line = line;
        }
    };
    for (key, value) in &snapshot.counters {
        let name = prom_name(&key.name);
        type_line(&mut out, &name, "counter");
        let _ = writeln!(out, "{name}{} {value}", prom_labels(&key.labels, None));
    }
    for (key, value) in &snapshot.gauges {
        let name = prom_name(&key.name);
        type_line(&mut out, &name, "gauge");
        let _ = writeln!(
            out,
            "{name}{} {}",
            prom_labels(&key.labels, None),
            num(*value)
        );
    }
    for (key, hist) in &snapshot.histograms {
        let name = prom_name(&key.name);
        type_line(&mut out, &name, "histogram");
        let mut cumulative = 0u64;
        for (bound, count) in &hist.buckets {
            cumulative += count;
            let le = if bound.is_finite() {
                format!("{bound}")
            } else {
                "+Inf".to_owned()
            };
            let _ = writeln!(
                out,
                "{name}_bucket{} {cumulative}",
                prom_labels(&key.labels, Some(("le", &le)))
            );
        }
        let _ = writeln!(
            out,
            "{name}_sum{} {}",
            prom_labels(&key.labels, None),
            num(hist.sum)
        );
        let _ = writeln!(
            out,
            "{name}_count{} {}",
            prom_labels(&key.labels, None),
            hist.count
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_telemetry::Telemetry;

    #[test]
    fn health_json_shapes() {
        let body = health_json(&[ToolId::FakeClassifier, ToolId::Twitteraudit], 1.5, false);
        assert_eq!(
            body,
            "{\"status\":\"ok\",\"uptime_secs\":1.5,\"tools\":[\"FC\",\"TA\"]}"
        );
        assert!(health_json(&[], 0.0, true).contains("\"draining\""));
    }

    #[test]
    fn rejection_bodies_map_statuses() {
        assert_eq!(rejection_status_and_json(&Rejection::Shed).0, 503);
        assert_eq!(rejection_status_and_json(&Rejection::Expired).0, 504);
        let (status, body) =
            rejection_status_and_json(&Rejection::Failed("quota: \"x\"".to_owned()));
        assert_eq!(status, 502);
        assert!(body.contains("\\\"x\\\""));
        let (status, body) =
            rejection_status_and_json(&Rejection::BreakerOpen { retry_in_secs: 2.5 });
        assert_eq!(status, 503);
        assert!(body.contains("\"retry_in_secs\":2.5"));
    }

    #[test]
    fn stream_events_are_newline_terminated_json() {
        let line = stream_event_json("queued", &[("depth", "3".to_owned())]);
        assert_eq!(line, "{\"event\":\"queued\",\"depth\":3}\n");
    }

    #[test]
    fn prometheus_renders_counters_gauges_histograms() {
        let tel = Telemetry::enabled();
        tel.counter_add(
            "server.requests",
            &[("tool", "TA"), ("outcome", "completed")],
            3,
        );
        tel.gauge_set("server.queue_depth", &[("tool", "TA")], 2.0);
        tel.observe("server.latency_secs", &[("tool", "TA")], 0.5);
        tel.observe("server.latency_secs", &[("tool", "TA")], 5.0);
        let text = prometheus_text(&tel.snapshot());
        assert!(text.contains("# TYPE server_requests counter"));
        assert!(text.contains("server_requests{outcome=\"completed\",tool=\"TA\"} 3"));
        assert!(text.contains("server_queue_depth{tool=\"TA\"} 2"));
        assert!(text.contains("# TYPE server_latency_secs histogram"));
        assert!(text.contains("server_latency_secs_count{tool=\"TA\"} 2"));
        assert!(text.contains("server_latency_secs_sum{tool=\"TA\"} 5.5"));
        // Buckets are cumulative and end at +Inf.
        assert!(text.contains("_bucket{tool=\"TA\",le=\"1\"} 1"));
        assert!(text.contains("_bucket{tool=\"TA\",le=\"+Inf\"} 2"));
    }

    #[test]
    fn type_comment_emitted_once_per_metric_name() {
        let tel = Telemetry::enabled();
        tel.counter_add("c", &[("tool", "TA")], 1);
        tel.counter_add("c", &[("tool", "SB")], 1);
        let text = prometheus_text(&tel.snapshot());
        assert_eq!(text.matches("# TYPE c counter").count(), 1);
    }
}
