//! Closed- and open-loop HTTP load generation against a live gateway.
//!
//! The workload *shapes* come from `crates/server::workload` — the same
//! Poisson/diurnal/flash-crowd arrival processes and Zipf target skew
//! E8 sweeps through the simulator — so the wall-clock numbers in
//! `BENCH_gateway.json` are directly comparable with the simulated
//! sweep at the same offered rates.
//!
//! * **Open loop** ([`run_open_loop`]): requests fire at their scheduled
//!   arrival times regardless of completions (a pool of sender threads
//!   shares the schedule round-robin). Latency is measured from the
//!   *scheduled* arrival, so client-side send backlog counts against the
//!   server — the honest open-loop convention. This is the mode that
//!   exposes queueing collapse.
//! * **Closed loop** ([`run_closed_loop`]): a fixed number of workers
//!   issue requests back-to-back over keep-alive connections; offered
//!   load adapts to service rate. This is the mode that measures peak
//!   sustainable throughput.
//!
//! The client is deliberately the dumbest correct thing: blocking
//! `TcpStream`s, one keep-alive connection per sender thread,
//! `Content-Length`-framed responses only (the load paths never use the
//! chunked stream endpoint).
//!
//! **Sender count vs. accept threads.** A gateway accept thread owns
//! its connection for the connection's whole lifetime, so a sender pool
//! larger than the gateway's accept pool is *serialized* — later
//! connections starve until earlier ones close, which inflates
//! open-loop latencies with listener-side convoy effects instead of
//! the admission-queue behaviour under test. Drivers must size
//! `GatewayConfig::accept_threads` to at least the sender count
//! (`exp_http_load` pins both to the same constant).

use fakeaudit_server::workload::Request;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One sender thread's tally.
#[derive(Debug, Default, Clone)]
struct ThreadTally {
    latencies: Vec<(f64, u16)>,
    errors: u64,
}

/// Aggregated result of one load scenario.
#[derive(Debug, Clone)]
pub struct LoadSummary {
    /// Scenario label (appears in `BENCH_gateway.json`).
    pub name: String,
    /// `"open"` or `"closed"`.
    pub mode: &'static str,
    /// Requests attempted.
    pub offered: u64,
    /// 200 responses.
    pub answered: u64,
    /// 503 responses (admission shed or breaker open).
    pub shed: u64,
    /// 504 responses (deadline expired in queue).
    pub expired: u64,
    /// Other statuses and transport errors.
    pub errors: u64,
    /// Wall seconds from first send to last response.
    pub wall_secs: f64,
    /// Ascending end-to-end latencies (seconds) of answered requests.
    pub latencies_sorted: Vec<f64>,
}

impl LoadSummary {
    fn from_tallies(
        name: &str,
        mode: &'static str,
        wall_secs: f64,
        tallies: Vec<ThreadTally>,
    ) -> Self {
        let mut summary = Self {
            name: name.to_owned(),
            mode,
            offered: 0,
            answered: 0,
            shed: 0,
            expired: 0,
            errors: 0,
            wall_secs,
            latencies_sorted: Vec::new(),
        };
        for tally in tallies {
            summary.offered += tally.latencies.len() as u64 + tally.errors;
            summary.errors += tally.errors;
            for (latency, status) in tally.latencies {
                match status {
                    200 => {
                        summary.answered += 1;
                        summary.latencies_sorted.push(latency);
                    }
                    503 => summary.shed += 1,
                    504 => summary.expired += 1,
                    _ => summary.errors += 1,
                }
            }
        }
        summary.latencies_sorted.sort_by(f64::total_cmp);
        summary
    }

    /// Answered requests per wall-clock second.
    pub fn requests_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.answered as f64 / self.wall_secs
    }

    /// Fraction of offered requests shed (503).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed as f64 / self.offered as f64
    }

    /// Nearest-rank latency percentile in seconds (`q` in `[0, 1]`).
    pub fn latency_percentile(&self, q: f64) -> f64 {
        let sorted = &self.latencies_sorted;
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
    }
}

/// A keep-alive HTTP/1.1 client connection.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Self {
            stream,
            buf: Vec::with_capacity(1024),
        })
    }

    /// Sends one audit POST and reads the full response; returns the
    /// status code.
    fn post_audit(&mut self, req: &Request) -> io::Result<u16> {
        let head = format!(
            "POST /audit/{}?tool={} HTTP/1.1\r\nHost: gateway\r\nContent-Length: 0\r\n\r\n",
            req.target.as_u64(),
            req.tool.abbrev(),
        );
        self.stream.write_all(head.as_bytes())?;
        self.read_response()
    }

    /// Reads one `Content-Length`-framed response off the connection.
    fn read_response(&mut self) -> io::Result<u16> {
        let mut tmp = [0u8; 8192];
        let head_end = loop {
            if let Some(i) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i;
            }
            let n = self.stream.read(&mut tmp)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&tmp[..n]);
        };
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let content_length: usize = head
            .lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.trim().parse().ok())
            .unwrap_or(0);
        let total = head_end + 4 + content_length;
        while self.buf.len() < total {
            let n = self.stream.read(&mut tmp)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            self.buf.extend_from_slice(&tmp[..n]);
        }
        self.buf.drain(..total);
        Ok(status)
    }
}

/// Issues one request through a (re)connecting client slot.
fn send_with_retry(slot: &mut Option<Client>, addr: SocketAddr, req: &Request) -> io::Result<u16> {
    for attempt in 0..2 {
        if slot.is_none() {
            *slot = Some(Client::connect(addr)?);
        }
        match slot.as_mut().expect("just connected").post_audit(req) {
            Ok(status) => return Ok(status),
            Err(e) => {
                // A closed keep-alive connection surfaces here; one
                // reconnect covers it, a second failure is real.
                *slot = None;
                if attempt == 1 {
                    return Err(e);
                }
            }
        }
    }
    unreachable!("loop returns on success or second failure")
}

/// Replays `schedule` (arrival seconds in `Request::at`, scaled by
/// `time_scale`) against `addr` open-loop, using `sender_threads`
/// round-robin senders.
pub fn run_open_loop(
    addr: SocketAddr,
    name: &str,
    schedule: &[Request],
    time_scale: f64,
    sender_threads: usize,
) -> LoadSummary {
    let start = Instant::now();
    let threads = sender_threads.clamp(1, 64);
    let tallies: Vec<ThreadTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|k| {
                scope.spawn(move || {
                    let mut tally = ThreadTally::default();
                    let mut slot: Option<Client> = None;
                    for req in schedule.iter().skip(k).step_by(threads) {
                        let due = Duration::from_secs_f64((req.at * time_scale).max(0.0));
                        if let Some(wait) = due.checked_sub(start.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        match send_with_retry(&mut slot, addr, req) {
                            Ok(status) => {
                                // Latency from the *scheduled* arrival.
                                let latency = start.elapsed().as_secs_f64() - due.as_secs_f64();
                                tally.latencies.push((latency.max(0.0), status));
                            }
                            Err(_) => tally.errors += 1,
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    LoadSummary::from_tallies(name, "open", start.elapsed().as_secs_f64(), tallies)
}

/// Issues every request in `work` as fast as `concurrency` keep-alive
/// connections allow (requests are claimed from a shared cursor, so the
/// arrival order is preserved even though pacing is not).
pub fn run_closed_loop(
    addr: SocketAddr,
    name: &str,
    work: &[Request],
    concurrency: usize,
) -> LoadSummary {
    let start = Instant::now();
    let cursor = Arc::new(AtomicUsize::new(0));
    let threads = concurrency.clamp(1, 64);
    let tallies: Vec<ThreadTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = Arc::clone(&cursor);
                scope.spawn(move || {
                    let mut tally = ThreadTally::default();
                    let mut slot: Option<Client> = None;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(req) = work.get(i) else { break };
                        let sent = Instant::now();
                        match send_with_retry(&mut slot, addr, req) {
                            Ok(status) => {
                                tally.latencies.push((sent.elapsed().as_secs_f64(), status))
                            }
                            Err(_) => tally.errors += 1,
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    LoadSummary::from_tallies(name, "closed", start.elapsed().as_secs_f64(), tallies)
}

/// Renders `BENCH_gateway.json` (schema documented in EXPERIMENTS.md,
/// E11): run configuration, per-scenario throughput/latency/shedding,
/// and the total breaker trip count read from gateway telemetry.
///
/// `config` values must already be valid JSON fragments (numbers, or
/// pre-quoted strings).
pub fn render_bench_json(
    config: &[(&str, String)],
    breaker_trips: u64,
    scenarios: &[LoadSummary],
) -> String {
    use std::fmt::Write as _;
    fn ms(v: f64) -> f64 {
        (v * 1e6).round() / 1e3
    }
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"schema_version\": 1,\n  \"bench\": \"gateway\",\n  \"config\": {");
    for (i, (k, v)) in config.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{k}\": {v}");
    }
    let _ = write!(
        out,
        "\n  }},\n  \"breaker_trips\": {breaker_trips},\n  \"scenarios\": ["
    );
    for (i, s) in scenarios.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"mode\": \"{}\", \"offered\": {}, \"answered\": {}, \
             \"shed\": {}, \"expired\": {}, \"errors\": {}, \"wall_secs\": {:.3}, \
             \"requests_per_sec\": {:.2}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"shed_rate\": {:.4}}}",
            s.name,
            s.mode,
            s.offered,
            s.answered,
            s.shed,
            s.expired,
            s.errors,
            s.wall_secs,
            s.requests_per_sec(),
            ms(s.latency_percentile(0.50)),
            ms(s.latency_percentile(0.95)),
            ms(s.latency_percentile(0.99)),
            s.shed_rate(),
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary_with(latencies: &[(f64, u16)], errors: u64) -> LoadSummary {
        LoadSummary::from_tallies(
            "t",
            "closed",
            2.0,
            vec![ThreadTally {
                latencies: latencies.to_vec(),
                errors,
            }],
        )
    }

    #[test]
    fn tallies_classify_statuses() {
        let s = summary_with(
            &[(0.1, 200), (0.2, 200), (0.0, 503), (0.0, 504), (0.0, 500)],
            1,
        );
        assert_eq!(s.offered, 6);
        assert_eq!(s.answered, 2);
        assert_eq!(s.shed, 1);
        assert_eq!(s.expired, 1);
        assert_eq!(s.errors, 2);
        assert_eq!(s.requests_per_sec(), 1.0);
        assert!((s.shed_rate() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let s = summary_with(&[(0.3, 200), (0.1, 200), (0.2, 200), (0.4, 200)], 0);
        assert_eq!(s.latency_percentile(0.5), 0.2);
        assert_eq!(s.latency_percentile(1.0), 0.4);
        assert_eq!(s.latency_percentile(0.0), 0.1);
        assert_eq!(summary_with(&[], 0).latency_percentile(0.5), 0.0);
    }

    #[test]
    fn bench_json_is_parseable_shape() {
        let s = summary_with(&[(0.05, 200), (0.0, 503)], 0);
        let json = render_bench_json(
            &[
                ("workers_per_tool", "2".to_owned()),
                ("policy", "\"shed\"".to_owned()),
            ],
            3,
            &[s],
        );
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"breaker_trips\": 3"));
        assert!(json.contains("\"policy\": \"shed\""));
        assert!(json.contains("\"p95_ms\": 50"));
        assert!(json.contains("\"shed\": 1"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
