//! Property tests for the hand-rolled HTTP/1.1 parser: arbitrary and
//! adversarial byte streams must never panic, truncation must always
//! read as `Partial`, and the hard limits must hold.

use fakeaudit_gateway::http::{parse_request, Error, Limits, Parse};
use proptest::prelude::*;

fn tiny_limits() -> Limits {
    Limits {
        max_head_bytes: 256,
        max_headers: 8,
        max_body_bytes: 128,
    }
}

proptest! {
    /// Whatever the wire delivers, the parser returns — it never panics
    /// and never claims to have consumed more bytes than it was given.
    #[test]
    fn arbitrary_bytes_never_panic(buf in proptest::collection::vec(any::<u8>(), 0..2048)) {
        match parse_request(&buf, &Limits::default()) {
            Ok(Parse::Complete(_, consumed)) => prop_assert!(consumed <= buf.len()),
            Ok(Parse::Partial) | Err(_) => {}
        }
    }

    /// Byte soup that *looks* vaguely HTTP-shaped exercises the header
    /// paths more than uniform noise does.
    #[test]
    fn http_flavoured_soup_never_panics(
        method in "[A-Z]{0,10}",
        target in "[ -~]{0,40}",
        version in "HTTP/[0-9.]{0,4}|[A-Z]{0,6}",
        headers in proptest::collection::vec(("[ -~]{0,20}", "[ -~]{0,20}"), 0..12),
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut raw = format!("{method} {target} {version}\r\n");
        for (name, value) in &headers {
            raw.push_str(&format!("{name}: {value}\r\n"));
        }
        raw.push_str("\r\n");
        let mut bytes = raw.into_bytes();
        bytes.extend_from_slice(&body);
        let _ = parse_request(&bytes, &tiny_limits());
    }

    /// Every strict prefix of a well-formed request is either `Partial`
    /// or a typed error — never a bogus `Complete`, never a panic.
    #[test]
    fn truncation_is_partial_or_error(
        target in "/[a-z/]{0,20}",
        body in proptest::collection::vec(any::<u8>(), 0..32),
        cut_ppm in 0u32..1_000_000,
    ) {
        let mut full = format!(
            "POST {target} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        full.extend_from_slice(&body);

        let complete = parse_request(&full, &Limits::default());
        prop_assert!(matches!(complete, Ok(Parse::Complete(_, n)) if n == full.len()));

        let cut = (cut_ppm as usize * full.len()) / 1_000_000;
        match parse_request(&full[..cut], &Limits::default()) {
            Ok(Parse::Partial) => {}
            Ok(Parse::Complete(_, n)) => {
                // A prefix can only complete if the body itself was cut
                // after the head — impossible here since Content-Length
                // covers the full body.
                prop_assert!(n <= cut && cut == full.len());
            }
            Err(_) => prop_assert!(false, "prefix of a valid request must not be an error"),
        }
    }

    /// Pipelined keep-alive traffic: two back-to-back requests parse
    /// one at a time with exact consumed offsets.
    #[test]
    fn pipelined_requests_consume_exactly(
        first in "/[a-z]{1,10}",
        second in "/[a-z]{1,10}",
    ) {
        let a = format!("GET {first} HTTP/1.1\r\nHost: x\r\n\r\n");
        let b = format!("GET {second} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
        let wire = format!("{a}{b}").into_bytes();

        let Ok(Parse::Complete(req_a, used_a)) = parse_request(&wire, &Limits::default()) else {
            return Err(TestCaseError::fail("first request must parse"));
        };
        prop_assert_eq!(used_a, a.len());
        prop_assert_eq!(req_a.path(), first.as_str());
        prop_assert!(req_a.keep_alive());

        let Ok(Parse::Complete(req_b, used_b)) = parse_request(&wire[used_a..], &Limits::default())
        else {
            return Err(TestCaseError::fail("second request must parse"));
        };
        prop_assert_eq!(used_b, b.len());
        prop_assert_eq!(req_b.path(), second.as_str());
        prop_assert!(!req_b.keep_alive());
    }

    /// Heads that grow past the limit surface `HeadTooLarge` (431), no
    /// matter how the oversize happens.
    #[test]
    fn oversized_heads_are_rejected(pad in 200usize..4000) {
        let raw = format!(
            "GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(pad)
        );
        let result = parse_request(raw.as_bytes(), &tiny_limits());
        // The head is everything before the \r\n\r\n terminator.
        if raw.len() - 4 > 256 {
            prop_assert!(matches!(result, Err(Error::HeadTooLarge)));
        } else {
            prop_assert!(matches!(result, Ok(Parse::Complete(..))));
        }
    }

    /// Declared bodies above the cap are refused with `BodyTooLarge`
    /// (413) from the head alone — before any body bytes are buffered.
    #[test]
    fn oversized_bodies_are_rejected(len in 129u64..1_000_000) {
        let raw = format!(
            "POST /audit/1 HTTP/1.1\r\nContent-Length: {len}\r\n\r\n"
        );
        prop_assert!(matches!(
            parse_request(raw.as_bytes(), &tiny_limits()),
            Err(Error::BodyTooLarge)
        ));
    }

    /// Absurd Content-Length values (overflow bait) are typed errors.
    #[test]
    fn malformed_content_length_is_rejected(value in "[a-z!-]{1,12}|99999999999999999999999") {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {value}\r\n\r\n");
        prop_assert!(matches!(
            parse_request(raw.as_bytes(), &Limits::default()),
            Err(Error::BadContentLength)
        ));
    }
}

#[test]
fn too_many_headers_is_rejected() {
    let mut raw = String::from("GET / HTTP/1.1\r\n");
    for i in 0..9 {
        raw.push_str(&format!("X-H{i}: v\r\n"));
    }
    raw.push_str("\r\n");
    assert!(matches!(
        parse_request(raw.as_bytes(), &tiny_limits()),
        Err(Error::TooManyHeaders)
    ));
}

#[test]
fn error_statuses_are_stable() {
    assert_eq!(Error::HeadTooLarge.status(), 431);
    assert_eq!(Error::BodyTooLarge.status(), 413);
    assert_eq!(Error::UnsupportedVersion.status(), 505);
    assert_eq!(Error::UnsupportedTransferEncoding.status(), 501);
    assert_eq!(Error::BadRequestLine.status(), 400);
}
