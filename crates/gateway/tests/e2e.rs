//! End-to-end gateway tests over real sockets: boot on an ephemeral
//! port, speak actual HTTP/1.1 at it, assert the audit/health/metrics
//! contract — plus the two load-bearing behaviours a wall-clock server
//! must not get wrong: overload shedding and drain-on-shutdown.

use fakeaudit_analytics::{ServiceError, ServiceResponse};
use fakeaudit_detectors::{AuditOutcome, ToolId, VerdictCounts};
use fakeaudit_gateway::{Gateway, GatewayConfig, ToolPool};
use fakeaudit_server::{OverloadPolicy, ServerConfig};
use fakeaudit_telemetry::{Telemetry, WallClock};
use fakeaudit_twittersim::{AccountId, Platform, SimTime};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A backend with a scripted verdict and an optional real service
/// delay; `serve_stale` answers only for pre-known targets.
struct TestBackend {
    tool: ToolId,
    delay: Duration,
    stale_known: Vec<AccountId>,
}

impl TestBackend {
    fn new(tool: ToolId) -> Self {
        Self {
            tool,
            delay: Duration::ZERO,
            stale_known: Vec::new(),
        }
    }

    fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    fn with_stale(mut self, known: &[u64]) -> Self {
        self.stale_known = known.iter().copied().map(AccountId).collect();
        self
    }

    fn response(&self, target: AccountId, cached: bool) -> ServiceResponse {
        ServiceResponse {
            outcome: AuditOutcome {
                tool_name: self.tool.abbrev().into(),
                target,
                assessed: vec![],
                counts: VerdictCounts {
                    inactive: 1,
                    fake: 2,
                    genuine: 7,
                },
                audited_at: SimTime::EPOCH,
                api_elapsed_secs: 0.5,
                api_calls: 3,
            },
            response_secs: 0.5,
            served_from_cache: cached,
            assessed_at: SimTime::EPOCH,
        }
    }
}

impl fakeaudit_server::AuditBackend for TestBackend {
    fn tool(&self) -> ToolId {
        self.tool
    }

    fn serve(
        &mut self,
        _platform: &Platform,
        target: AccountId,
    ) -> Result<ServiceResponse, ServiceError> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        Ok(self.response(target, false))
    }

    fn serve_stale(&self, target: AccountId) -> Option<ServiceResponse> {
        self.stale_known
            .contains(&target)
            .then(|| self.response(target, true))
    }
}

fn pool(tool: ToolId, workers: usize, delay: Duration, stale: &[u64]) -> ToolPool {
    ToolPool {
        tool,
        workers: (0..workers)
            .map(|_| Box::new(TestBackend::new(tool).with_delay(delay)) as _)
            .collect(),
        stale: Box::new(TestBackend::new(tool).with_stale(stale)),
    }
}

fn boot(server: ServerConfig, pools: Vec<ToolPool>) -> Gateway {
    let config = GatewayConfig {
        accept_threads: 4,
        server,
        default_tool: ToolId::Twitteraudit,
        read_timeout: Duration::from_secs(5),
        ..GatewayConfig::default()
    };
    Gateway::bind(
        config,
        Arc::new(Platform::new()),
        pools,
        Arc::new(WallClock::new()),
        Telemetry::enabled(),
    )
    .expect("bind ephemeral port")
}

/// One-shot HTTP exchange: sends `head`, reads to EOF, returns the raw
/// response text.
fn exchange(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

fn post_audit(addr: SocketAddr, path: &str) -> String {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> String {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line")
}

#[test]
fn health_audit_and_metrics_roundtrip() {
    let gateway = boot(
        ServerConfig::default(),
        vec![pool(ToolId::Twitteraudit, 2, Duration::ZERO, &[])],
    );
    let addr = gateway.local_addr();

    let health = get(addr, "/healthz");
    assert_eq!(status_of(&health), 200);
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    // Per-tool operational detail: queue depth plus breaker state (the
    // scripted test backends run no breaker, hence null).
    assert!(
        health.contains("\"tools\":[{\"tool\":\"TA\",\"queue_depth\":0,\"breaker\":null}]"),
        "{health}"
    );

    let verdict = post_audit(addr, "/audit/42");
    assert_eq!(status_of(&verdict), 200, "{verdict}");
    assert!(verdict.contains("\"target\":42"));
    assert!(verdict.contains("\"tool\":\"TA\""));
    assert!(verdict.contains("\"source\":\"fresh\""));
    assert!(verdict.contains("\"fake_pct\":20"));
    assert!(verdict.contains("\"counts\":{\"inactive\":1,\"fake\":2,\"genuine\":7,\"total\":10}"));

    // The display form of an account id is accepted too.
    assert_eq!(status_of(&post_audit(addr, "/audit/u42")), 200);

    let metrics = get(addr, "/metrics");
    assert_eq!(status_of(&metrics), 200);
    assert!(
        metrics.contains("server_requests{outcome=\"completed\",tool=\"TA\"}"),
        "{metrics}"
    );
    assert!(metrics.contains("# TYPE server_latency_secs histogram"));
    assert!(metrics.contains("gateway_http_requests"));

    // Unknown routes, bad methods, bad ids, unknown tools.
    assert_eq!(status_of(&get(addr, "/nope")), 404);
    assert_eq!(status_of(&get(addr, "/audit/42")), 405);
    assert_eq!(status_of(&post_audit(addr, "/audit/notanumber")), 400);
    assert_eq!(status_of(&post_audit(addr, "/audit/42?tool=XX")), 404);

    let report = gateway.shutdown();
    assert_eq!(report.completed(), 2);
    assert_eq!(report.shed(), 0);
}

#[test]
fn metrics_exposition_carries_help_type_and_exemplars() {
    let gateway = boot(
        ServerConfig::default(),
        vec![pool(ToolId::Twitteraudit, 1, Duration::ZERO, &[])],
    );
    let addr = gateway.local_addr();
    assert_eq!(status_of(&post_audit(addr, "/audit/11")), 200);
    let metrics = get(addr, "/metrics");
    assert_eq!(status_of(&metrics), 200);
    // The Prometheus text content-type, version pinned.
    assert!(
        metrics.contains("Content-Type: text/plain; version=0.0.4"),
        "{metrics}"
    );
    // Every family leads with # HELP + # TYPE, histograms included.
    assert!(
        metrics.contains("# HELP gateway_http_requests "),
        "{metrics}"
    );
    assert!(metrics.contains("# TYPE gateway_http_requests counter"));
    assert!(
        metrics.contains("# HELP gateway_request_secs "),
        "{metrics}"
    );
    assert!(metrics.contains("# TYPE gateway_request_secs histogram"));
    assert!(metrics.contains("# TYPE server_latency_secs histogram"));
    // The audit route's duration histogram carries an exemplar linking
    // to the gateway.request span of its worst request.
    assert!(
        metrics.contains("gateway_request_secs_bucket{route=\"audit\""),
        "{metrics}"
    );
    assert!(metrics.contains("trace_id=\"span#"), "{metrics}");
    gateway.shutdown();
}

#[test]
fn debug_profile_returns_folded_stacks() {
    let gateway = boot(
        ServerConfig::default(),
        vec![pool(ToolId::Twitteraudit, 1, Duration::ZERO, &[])],
    );
    let addr = gateway.local_addr();
    assert_eq!(status_of(&post_audit(addr, "/audit/3")), 200);
    let profile = get(addr, "/debug/profile");
    assert_eq!(status_of(&profile), 200);
    // Folded-stack lines: `root;child value`, aggregated self time.
    assert!(
        profile.contains("server.request;server.service "),
        "{profile}"
    );
    assert!(
        profile.contains("server.request;server.queue_wait "),
        "{profile}"
    );
    // Each folded line is `stack <integer-micros>`.
    let body = profile.split("\r\n\r\n").nth(1).expect("body");
    for line in body.lines().filter(|l| !l.is_empty()) {
        let (stack, value) = line.rsplit_once(' ').expect("stack value");
        assert!(!stack.is_empty());
        value.parse::<u64>().expect("integer self-time micros");
    }
    gateway.shutdown();
}

#[test]
fn debug_vars_reports_build_and_lane_state() {
    let gateway = boot(
        ServerConfig::default(),
        vec![pool(ToolId::Twitteraudit, 1, Duration::ZERO, &[])],
    );
    let addr = gateway.local_addr();
    let vars = get(addr, "/debug/vars");
    assert_eq!(status_of(&vars), 200);
    assert!(vars.contains("\"version\":"), "{vars}");
    assert!(vars.contains("\"draining\":false"), "{vars}");
    assert!(vars.contains("\"dropped_trace_events\":0"), "{vars}");
    assert!(
        vars.contains("{\"tool\":\"TA\",\"queue_depth\":0,\"breaker\":null}"),
        "{vars}"
    );
    // Wrong method on a debug path is a 405, like the other known routes.
    assert_eq!(status_of(&post_audit(addr, "/debug/vars")), 405);
    gateway.shutdown();
}

#[test]
fn keep_alive_serves_sequential_requests() {
    let gateway = boot(
        ServerConfig::default(),
        vec![pool(ToolId::Twitteraudit, 1, Duration::ZERO, &[])],
    );
    let addr = gateway.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    for _ in 0..2 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        // Read until this response's body has arrived (both fit easily
        // in one read each; loop for safety).
        let target_bodies = 1;
        let mut bodies = 0;
        while bodies < target_bodies {
            let n = stream.read(&mut tmp).unwrap();
            assert!(n > 0, "server closed a keep-alive connection");
            buf.extend_from_slice(&tmp[..n]);
            bodies = buf
                .windows(b"\"status\":\"ok\"".len())
                .filter(|w| w == b"\"status\":\"ok\"")
                .count();
        }
        buf.clear();
    }
    drop(stream);
    gateway.shutdown();
}

#[test]
fn stream_endpoint_emits_progress_then_verdict() {
    let gateway = boot(
        ServerConfig::default(),
        vec![pool(
            ToolId::Twitteraudit,
            1,
            Duration::from_millis(20),
            &[],
        )],
    );
    let addr = gateway.local_addr();
    let body = get(addr, "/audit/7/stream");
    assert_eq!(status_of(&body), 200);
    assert!(body.contains("Transfer-Encoding: chunked"), "{body}");
    assert!(body.contains("{\"event\":\"queued\""), "{body}");
    assert!(body.contains("{\"event\":\"started\"}"), "{body}");
    assert!(body.contains("{\"event\":\"done\",\"verdict\":{"), "{body}");
    assert!(body.contains("\"target\":7"));
    // Chunked terminator present.
    assert!(body.ends_with("0\r\n\r\n"), "{body:?}");
    gateway.shutdown();
}

#[test]
fn overload_sheds_with_503_and_counts_it() {
    // One slow worker, queue of 1, shed policy: concurrent burst must
    // produce both 200s and 503s.
    let gateway = boot(
        ServerConfig {
            workers_per_tool: 1,
            queue_capacity: 1,
            policy: OverloadPolicy::Shed,
            ..ServerConfig::default()
        },
        vec![pool(
            ToolId::Twitteraudit,
            1,
            Duration::from_millis(80),
            &[],
        )],
    );
    let addr = gateway.local_addr();
    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                scope.spawn(move || status_of(&post_audit(addr, &format!("/audit/{}", 100 + i))))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok = statuses.iter().filter(|&&s| s == 200).count();
    let shed = statuses.iter().filter(|&&s| s == 503).count();
    assert_eq!(ok + shed, 8, "unexpected statuses: {statuses:?}");
    assert!(ok >= 1, "at least the first request must complete");
    assert!(shed >= 1, "burst of 8 into capacity 2 must shed");
    let report = gateway.shutdown();
    assert_eq!(report.offered(), 8);
    assert_eq!(report.shed() as usize, shed);
    assert_eq!(report.completed() as usize, ok);
}

#[test]
fn degrade_policy_serves_stale_when_overloaded() {
    let gateway = boot(
        ServerConfig {
            workers_per_tool: 1,
            queue_capacity: 1,
            policy: OverloadPolicy::DegradeStale,
            ..ServerConfig::default()
        },
        vec![pool(
            ToolId::Twitteraudit,
            1,
            Duration::from_millis(80),
            &[7, 8, 9, 10, 11, 12, 13, 14],
        )],
    );
    let addr = gateway.local_addr();
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| scope.spawn(move || post_audit(addr, &format!("/audit/{}", 7 + i))))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(
        bodies.iter().all(|b| status_of(b) == 200),
        "every request must be answered under degrade with warm stale cache"
    );
    let stale = bodies
        .iter()
        .filter(|b| b.contains("\"source\":\"stale\""))
        .count();
    assert!(stale >= 1, "burst must degrade at least one answer");
    let report = gateway.shutdown();
    assert_eq!(report.degraded() as usize, stale);
    assert_eq!(report.shed(), 0);
}

#[test]
fn shutdown_drains_queued_requests() {
    // Slow workers + deep queue: pile up in-flight requests, then shut
    // down while they are queued. Every client must still get its 200 —
    // a clean drain loses nothing.
    let gateway = boot(
        ServerConfig {
            workers_per_tool: 2,
            queue_capacity: 16,
            policy: OverloadPolicy::Shed,
            ..ServerConfig::default()
        },
        vec![pool(
            ToolId::Twitteraudit,
            2,
            Duration::from_millis(40),
            &[],
        )],
    );
    let addr = gateway.local_addr();
    let (statuses, report) = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..10)
            .map(|i| scope.spawn(move || status_of(&post_audit(addr, &format!("/audit/{i}")))))
            .collect();
        // Let the burst reach the queues, then drain.
        std::thread::sleep(Duration::from_millis(30));
        let report = gateway.shutdown();
        let statuses: Vec<u16> = clients.into_iter().map(|h| h.join().unwrap()).collect();
        (statuses, report)
    });
    assert!(
        statuses.iter().all(|&s| s == 200),
        "drain must answer every accepted request: {statuses:?}"
    );
    assert_eq!(report.completed(), 10);
    assert_eq!(report.shed(), 0);
    // After shutdown the port refuses (or resets) new connections —
    // nothing is still listening.
    let refused = TcpStream::connect_timeout(
        &addr.to_string().parse().unwrap(),
        Duration::from_millis(200),
    );
    if let Ok(mut s) = refused {
        // Accept race: a dangling backlog connection may connect but
        // must deliver no HTTP response.
        let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        let mut out = String::new();
        s.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let _ = s.read_to_string(&mut out);
        assert!(!out.contains("\"status\":\"ok\""), "listener still serving");
    }
}

#[test]
fn bind_failure_is_a_clean_error() {
    let occupied = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = occupied.local_addr().unwrap();
    let config = GatewayConfig {
        addr: addr.to_string(),
        ..GatewayConfig::default()
    };
    let result = Gateway::bind(
        config,
        Arc::new(Platform::new()),
        vec![pool(ToolId::Twitteraudit, 1, Duration::ZERO, &[])],
        Arc::new(WallClock::new()),
        Telemetry::disabled(),
    );
    assert!(result.is_err(), "binding an occupied port must fail");
}

#[test]
fn query_surface_over_persisted_audits() {
    let dir = std::env::temp_dir().join(format!("fakeaudit-gw-query-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = GatewayConfig {
        accept_threads: 2,
        persist: Some(dir.clone()),
        ..GatewayConfig::default()
    };
    let gateway = Gateway::bind(
        config,
        Arc::new(Platform::new()),
        vec![pool(ToolId::Twitteraudit, 2, Duration::ZERO, &[])],
        Arc::new(WallClock::new()),
        Telemetry::enabled(),
    )
    .expect("bind with persist dir");
    let addr = gateway.local_addr();
    for i in 0..5 {
        assert_eq!(
            status_of(&post_audit(addr, &format!("/audit/{}", 40 + i))),
            200
        );
    }

    // /healthz and /debug/vars report live store state.
    let health = get(addr, "/healthz");
    assert!(health.contains("\"store\":{\"segments\":"), "{health}");
    assert!(health.contains("\"buffered_rows\":"), "{health}");
    let vars = get(addr, "/debug/vars");
    assert!(vars.contains("\"store\":{\"segments\":"), "{vars}");

    // Queries flush the write buffer first, so every completed audit is
    // visible — including rows below the flush threshold.
    let ts = get(addr, "/query/timeseries");
    assert_eq!(status_of(&ts), 200, "{ts}");
    assert!(ts.contains("\"kind\":\"timeseries\""), "{ts}");
    assert!(ts.contains("\"target\":40"), "{ts}");
    let topk = get(addr, "/query/topk?k=3&by=cost");
    assert_eq!(status_of(&topk), 200, "{topk}");
    assert!(topk.contains("\"rank\":1"), "{topk}");

    // Unknown kinds and malformed parameters fail loudly.
    assert_eq!(status_of(&get(addr, "/query/nope")), 404);
    assert_eq!(status_of(&get(addr, "/query/timeseries?bucket=0")), 400);
    assert_eq!(status_of(&get(addr, "/query/timeseries?since=abc")), 400);
    assert_eq!(status_of(&get(addr, "/query/topk?by=magic")), 400);
    assert_eq!(status_of(&post_audit(addr, "/query/timeseries")), 405);

    // One more audit sits in the buffer after the last query's flush;
    // shutdown's drain must make it durable.
    assert_eq!(status_of(&post_audit(addr, "/audit/99")), 200);
    gateway.shutdown();
    let store = fakeaudit_store::Store::open(&dir).expect("open persisted store");
    assert_eq!(store.total_rows(), 6, "shutdown must flush the tail row");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn query_without_persist_is_404() {
    let gateway = boot(
        ServerConfig::default(),
        vec![pool(ToolId::Twitteraudit, 1, Duration::ZERO, &[])],
    );
    let addr = gateway.local_addr();
    let resp = get(addr, "/query/timeseries");
    assert_eq!(status_of(&resp), 404);
    assert!(resp.contains("no history store"), "{resp}");
    let health = get(addr, "/healthz");
    assert!(health.contains("\"store\":null"), "{health}");
    gateway.shutdown();
}

#[test]
fn slo_monitor_fires_on_burst_then_resolves() {
    use fakeaudit_telemetry::{BurnRule, MonitorConfig};
    // Sub-second windows so a shed burst walks the full
    // Pending → Firing → Resolved arc inside the test.
    let slo = MonitorConfig {
        bucket_secs: 0.05,
        availability_objective: 0.99,
        latency_quantile: 0.95,
        latency_objective_secs: 10.0,
        rules: vec![BurnRule::new("fast", 0.5, 2.0, 2.0, 0.1, 0.3)],
        history_capacity: 32,
        history_interval_secs: 0.2,
        sample_keep: 1.0,
        parked_capacity: 1024,
        seed: 7,
    };
    let config = GatewayConfig {
        accept_threads: 4,
        server: ServerConfig {
            workers_per_tool: 1,
            queue_capacity: 1,
            policy: OverloadPolicy::Shed,
            ..ServerConfig::default()
        },
        default_tool: ToolId::Twitteraudit,
        read_timeout: Duration::from_secs(5),
        slo: Some(slo),
        ..GatewayConfig::default()
    };
    let gateway = Gateway::bind(
        config,
        Arc::new(Platform::new()),
        vec![pool(
            ToolId::Twitteraudit,
            1,
            Duration::from_millis(80),
            &[],
        )],
        Arc::new(WallClock::new()),
        Telemetry::enabled(),
    )
    .expect("bind ephemeral port");
    let addr = gateway.local_addr();

    // Before any monitor-visible traffic the surfaces are wired but
    // quiet: /healthz carries an slo array, /debug/vars a monitor block.
    assert!(get(addr, "/healthz").contains("\"slo\":["));
    assert!(get(addr, "/debug/vars").contains("\"monitor\":{\"alerts_pending\":"));

    // A 5xx burst: 8 concurrent audits into capacity 2 must shed.
    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                scope.spawn(move || status_of(&post_audit(addr, &format!("/audit/{}", 300 + i))))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(statuses.iter().any(|&s| s == 503), "{statuses:?}");

    let poll = |needle: &str, deadline: Duration| -> String {
        let start = std::time::Instant::now();
        loop {
            let body = get(addr, "/alerts");
            if body.contains(needle) {
                return body;
            }
            assert!(
                start.elapsed() < deadline,
                "no {needle:?} within {deadline:?}; last body: {body}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    };
    // The alert must fire on the audit route, then — with the burst
    // over and the windows drained — resolve on its own.
    let firing = poll("\"to\":\"firing\"", Duration::from_secs(10));
    assert!(firing.contains("\"route\":\"audit\""), "{firing}");
    assert!(
        firing.contains("\"exemplar\":\"span#"),
        "firing alert must carry an exemplar: {firing}"
    );
    poll("\"to\":\"resolved\"", Duration::from_secs(15));

    // The exemplar tree is pinned: its span id is still in the buffer.
    let resolved = get(addr, "/alerts");
    let vars = get(addr, "/debug/vars");
    assert!(vars.contains("\"traces_kept\":"), "{vars}");
    let history = get(addr, "/metrics/history");
    assert!(history.contains("\"frames\":[{"), "{history}");
    assert!(history.contains("\"counter_deltas\""), "{history}");
    let report = gateway.shutdown();
    assert!(report.shed() >= 1);
    drop(resolved);
}

#[test]
fn slo_routes_404_without_monitor() {
    let gateway = boot(
        ServerConfig::default(),
        vec![pool(ToolId::Twitteraudit, 1, Duration::ZERO, &[])],
    );
    let addr = gateway.local_addr();
    let alerts = get(addr, "/alerts");
    assert_eq!(status_of(&alerts), 404);
    assert!(alerts.contains("no slo monitor"), "{alerts}");
    assert_eq!(status_of(&get(addr, "/metrics/history")), 404);
    assert!(get(addr, "/healthz").contains("\"slo\":null"));
    assert!(get(addr, "/debug/vars").contains("\"monitor\":null"));
    gateway.shutdown();
}

#[test]
fn breaker_telemetry_flows_through_shared_names() {
    // The gateway records through the same metric vocabulary as the
    // simulator; a served request must show up under server.* names.
    let gateway = boot(
        ServerConfig::default(),
        vec![pool(ToolId::Twitteraudit, 1, Duration::ZERO, &[])],
    );
    let addr = gateway.local_addr();
    assert_eq!(status_of(&post_audit(addr, "/audit/5")), 200);
    let snapshot = gateway.telemetry().snapshot();
    assert_eq!(snapshot.counter_total("server.requests"), 1);
    let report = gateway.shutdown();
    assert_eq!(report.offered(), 1);
    assert!(report.latency_percentile(0.5) >= 0.0);
}
