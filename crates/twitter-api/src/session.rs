//! API sessions: pagination, call accounting, simulated elapsed time.
//!
//! A session reads platform state instantaneously (audits do not mutate the
//! platform) while accumulating *simulated* elapsed seconds: every REST call
//! pays a latency draw plus any rate-limit wait from the per-endpoint token
//! buckets. Tool response times (Table II) are exactly `session.elapsed()`
//! after the tool's call schedule.

use crate::endpoint::{Endpoint, WINDOW_SECS};
use crate::fault::{FaultInjector, FaultKind, FaultLog, FaultPlan, FaultRecord, RetryPolicy};
use crate::rate_limit::TokenBucket;
use fakeaudit_stats::rng::{rng_for, DetStream};
use fakeaudit_telemetry::{Telemetry, TraceContext};
use fakeaudit_twittersim::{AccountId, Platform, Profile, Tweet};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Session configuration: how many API tokens the caller owns and how its
/// HTTP stack performs. Tools differ here (DESIGN.md, Table II model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApiConfig {
    /// Number of OAuth tokens pooled; multiplies every window quota.
    pub token_pool: u32,
    /// Concurrent HTTP requests; divides per-call latency.
    pub parallelism: u32,
    /// Base per-call latency in seconds.
    pub base_latency: f64,
    /// Uniform latency jitter in seconds (added to the base).
    pub latency_jitter: f64,
    /// Seed for the latency jitter stream.
    pub seed: u64,
}

impl Default for ApiConfig {
    fn default() -> Self {
        Self {
            token_pool: 1,
            parallelism: 1,
            base_latency: 1.2,
            latency_jitter: 0.6,
            seed: 0,
        }
    }
}

impl ApiConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if pools/parallelism are zero or latencies are negative or
    /// non-finite.
    fn validate(&self) {
        assert!(self.token_pool >= 1, "token_pool must be >= 1");
        assert!(self.parallelism >= 1, "parallelism must be >= 1");
        assert!(
            self.base_latency >= 0.0 && self.base_latency.is_finite(),
            "base_latency must be non-negative"
        );
        assert!(
            self.latency_jitter >= 0.0 && self.latency_jitter.is_finite(),
            "latency_jitter must be non-negative"
        );
    }
}

/// An opaque pagination cursor for the cursored endpoints, as the real
/// API's `next_cursor` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cursor(pub(crate) u64);

impl Cursor {
    /// The cursor for the first (newest) page.
    pub const START: Cursor = Cursor(0);
}

impl fmt::Display for Cursor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cursor#{}", self.0)
    }
}

/// Errors returned by API calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// The referenced account does not exist.
    UnknownAccount(
        /// The missing id.
        AccountId,
    ),
    /// A pagination cursor did not belong to the requested list.
    BadCursor(
        /// The offending cursor.
        Cursor,
    ),
    /// More ids were passed than the endpoint accepts in one request.
    TooManyIds {
        /// Ids supplied.
        given: usize,
        /// Endpoint maximum.
        max: usize,
    },
    /// The API answered `503 Service Unavailable` and every retry the
    /// session's [`RetryPolicy`] allowed failed too.
    ServiceUnavailable {
        /// Endpoint that failed.
        endpoint: Endpoint,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The API answered `429 Too Many Requests` with a `Retry-After`
    /// header, and the attempt budget ran out before a call went through.
    RateLimited {
        /// Endpoint that failed.
        endpoint: Endpoint,
        /// The last `Retry-After` value received, seconds.
        retry_after_secs: u32,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The client's HTTP timeout fired on every attempt the session's
    /// [`RetryPolicy`] allowed.
    TimedOut {
        /// Endpoint that failed.
        endpoint: Endpoint,
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl ApiError {
    /// Structured retryability classification: whether a fresh attempt
    /// against the API could plausibly succeed. Retry loops and circuit
    /// breakers key on this instead of matching variants ad hoc —
    /// transient transport failures are retryable, caller mistakes
    /// (unknown account, bad cursor, oversized batch) are not.
    pub fn is_retryable(&self) -> bool {
        match self {
            ApiError::ServiceUnavailable { .. }
            | ApiError::RateLimited { .. }
            | ApiError::TimedOut { .. } => true,
            ApiError::UnknownAccount(_) | ApiError::BadCursor(_) | ApiError::TooManyIds { .. } => {
                false
            }
        }
    }

    /// The server-suggested wait before retrying, when the failure
    /// carried one (only 429s do).
    pub fn retry_after_secs(&self) -> Option<u32> {
        match self {
            ApiError::RateLimited {
                retry_after_secs, ..
            } => Some(*retry_after_secs),
            _ => None,
        }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::UnknownAccount(id) => write!(f, "unknown account {id}"),
            ApiError::BadCursor(c) => write!(f, "invalid pagination {c}"),
            ApiError::TooManyIds { given, max } => {
                write!(f, "too many ids in one request: {given} > {max}")
            }
            ApiError::ServiceUnavailable { endpoint, attempts } => {
                write!(f, "{endpoint}: 503 service unavailable after {attempts} attempts")
            }
            ApiError::RateLimited {
                endpoint,
                retry_after_secs,
                attempts,
            } => write!(
                f,
                "{endpoint}: 429 rate limited (retry-after {retry_after_secs}s) after {attempts} attempts"
            ),
            ApiError::TimedOut { endpoint, attempts } => {
                write!(f, "{endpoint}: timed out after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for ApiError {}

/// Per-session call accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CallLog {
    /// `GET followers/ids` calls.
    pub followers_ids: u64,
    /// `GET friends/ids` calls.
    pub friends_ids: u64,
    /// `GET users/lookup` calls.
    pub users_lookup: u64,
    /// `GET statuses/user_timeline` calls.
    pub user_timeline: u64,
}

impl CallLog {
    /// Total REST calls issued.
    pub fn total(&self) -> u64 {
        self.followers_ids + self.friends_ids + self.users_lookup + self.user_timeline
    }

    fn bump(&mut self, endpoint: Endpoint, calls: u64) {
        match endpoint {
            Endpoint::FollowersIds => self.followers_ids += calls,
            Endpoint::FriendsIds => self.friends_ids += calls,
            Endpoint::UsersLookup => self.users_lookup += calls,
            Endpoint::UserTimeline => self.user_timeline += calls,
        }
    }
}

/// An API session bound to a platform.
///
/// ```
/// use fakeaudit_twittersim::{Platform, Profile, SimTime};
/// use fakeaudit_twittersim::timeline::TimelineModel;
/// use fakeaudit_twitter_api::{ApiConfig, ApiSession};
///
/// let mut platform = Platform::new();
/// let a = platform.register(Profile::new("a", SimTime::EPOCH), TimelineModel::empty())?;
/// let b = platform.register(Profile::new("b", SimTime::EPOCH), TimelineModel::empty())?;
/// platform.follow(b, a)?;
///
/// let mut session = ApiSession::new(&platform, ApiConfig::default());
/// let followers = session.followers_ids(a)?;
/// assert_eq!(followers, vec![b]);
/// assert!(session.elapsed_secs() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ApiSession<'a> {
    platform: &'a Platform,
    cfg: ApiConfig,
    buckets: [TokenBucket; 4],
    now: f64,
    rate_limit_wait: f64,
    log: CallLog,
    rng: StdRng,
    telemetry: Telemetry,
    /// The causal position `api.call` spans attach under. At the root
    /// (no enclosing span) calls are recorded flat, identity-less, as
    /// before causal tracing existed.
    ctx: TraceContext,
    /// Platform time at session open, in seconds — trace records are
    /// stamped `trace_base + now` so spans from different sessions share
    /// one absolute sim-time axis.
    trace_base: f64,
    /// Fault source, armed by [`ApiSession::with_faults`]; `None` keeps
    /// the session byte-identical to a fault-free build.
    injector: Option<FaultInjector>,
    /// How failed calls are retried. [`RetryPolicy::none`] by default.
    retry: RetryPolicy,
    /// Seeded jitter stream for backoff waits, separate from the fault
    /// and latency streams.
    retry_jitter: DetStream,
    /// Bounded record of injected faults plus aggregate counters.
    faults: FaultLog,
}

/// What [`ApiSession::charge`] reports back to the endpoint method: where
/// pagination was cut short by a truncated-page fault, if anywhere.
struct Charged {
    /// 0-based index of the call within the batch that came back
    /// truncated, ending the batch early.
    truncated_at: Option<u64>,
}

impl<'a> ApiSession<'a> {
    /// Opens a session against `platform`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`ApiConfig`] (zero pools, negative latency).
    pub fn new(platform: &'a Platform, cfg: ApiConfig) -> Self {
        Self::with_telemetry(platform, cfg, Telemetry::disabled())
    }

    /// Opens a session that mirrors every REST call into `telemetry`: a
    /// span per page fetch (`api.call{endpoint}`), per-endpoint call
    /// counters (`api.calls{endpoint}`) and wait/latency histograms
    /// (`api.rate_limit_wait_secs`, `api.latency_secs`).
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`ApiConfig`] (zero pools, negative latency).
    pub fn with_telemetry(platform: &'a Platform, cfg: ApiConfig, telemetry: Telemetry) -> Self {
        let ctx = telemetry.root_context();
        Self::with_context(platform, cfg, ctx)
    }

    /// Opens an instrumented session whose `api.call` spans attach under
    /// `ctx` — the causal variant of [`ApiSession::with_telemetry`]. With
    /// a context inside a live span (a `detector.audit`, say), every page
    /// fetch becomes a child span in that request's trace tree; with a
    /// root context the calls are recorded flat, exactly as
    /// `with_telemetry` always did.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`ApiConfig`] (zero pools, negative latency).
    pub fn with_context(platform: &'a Platform, cfg: ApiConfig, ctx: TraceContext) -> Self {
        cfg.validate();
        let bucket = |e: Endpoint| {
            let quota = f64::from(e.window_quota()) * f64::from(cfg.token_pool);
            TokenBucket::new(quota, quota / WINDOW_SECS)
        };
        Self {
            platform,
            cfg,
            buckets: [
                bucket(Endpoint::FollowersIds),
                bucket(Endpoint::FriendsIds),
                bucket(Endpoint::UsersLookup),
                bucket(Endpoint::UserTimeline),
            ],
            now: 0.0,
            rate_limit_wait: 0.0,
            log: CallLog::default(),
            rng: rng_for(cfg.seed, "api-session"),
            telemetry: ctx.telemetry().clone(),
            ctx,
            trace_base: platform.now().as_secs() as f64,
            injector: None,
            retry: RetryPolicy::none(),
            retry_jitter: RetryPolicy::jitter_stream(cfg.seed),
            faults: FaultLog::default(),
        }
    }

    /// Arms the session with a fault plan and retry policy. With
    /// [`FaultPlan::none`] nothing is drawn and the session stays
    /// byte-identical to an unarmed one; otherwise every REST call
    /// attempt consults the plan's seeded fault stream, failed attempts
    /// back off per `retry` (charging the waits to the sim clock and the
    /// crawl budget), and exhausted calls surface as retryable
    /// [`ApiError`] variants.
    ///
    /// # Panics
    ///
    /// Panics on an invalid plan or policy (oversubscribed rates, zero
    /// attempt budget, negative timings).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan, retry: RetryPolicy) -> Self {
        retry.validate();
        plan.validate();
        self.retry_jitter = RetryPolicy::jitter_stream(plan.seed);
        self.injector = (!plan.is_none()).then(|| FaultInjector::new(plan));
        self.retry = retry;
        self
    }

    /// Simulated seconds elapsed in this session so far.
    pub fn elapsed_secs(&self) -> f64 {
        self.now
    }

    /// The telemetry handle this session records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The causal context this session's `api.call` spans attach under
    /// (a root context unless built with [`ApiSession::with_context`]).
    pub fn trace_context(&self) -> &TraceContext {
        &self.ctx
    }

    /// The session's current position on the absolute sim-time axis
    /// (platform time at open plus elapsed session seconds).
    pub fn trace_time(&self) -> f64 {
        self.trace_base + self.now
    }

    /// Seconds of the elapsed time spent waiting on rate limits.
    pub fn rate_limit_wait_secs(&self) -> f64 {
        self.rate_limit_wait
    }

    /// Seconds of the elapsed time spent in retry backoff waits.
    pub fn backoff_wait_secs(&self) -> f64 {
        self.faults.backoff_secs
    }

    /// Aggregate fault counters plus the bounded record of injected
    /// faults (empty unless armed via [`ApiSession::with_faults`]).
    pub fn fault_log(&self) -> &FaultLog {
        &self.faults
    }

    /// The call log.
    pub fn log(&self) -> &CallLog {
        &self.log
    }

    /// The platform this session reads.
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    fn bucket_mut(&mut self, e: Endpoint) -> &mut TokenBucket {
        let idx = Endpoint::ALL
            .iter()
            .position(|&x| x == e)
            .expect("endpoint in catalogue");
        &mut self.buckets[idx]
    }

    /// Records a span under the session's causal context when it has one,
    /// flat otherwise — the shape every session-emitted record follows.
    fn emit_span(&self, name: &str, t0: f64, t1: f64, attrs: &[(&str, &str)]) {
        if self.ctx.span_id().is_some() {
            self.ctx.span(name, t0, t1, attrs);
        } else {
            self.telemetry.span(name, t0, t1, attrs);
        }
    }

    /// Point-event variant of [`ApiSession::emit_span`].
    fn emit_point(&self, name: &str, t: f64, attrs: &[(&str, &str)]) {
        if self.ctx.span_id().is_some() {
            self.ctx.point(name, t, attrs);
        } else {
            self.telemetry.event(name, t, attrs);
        }
    }

    /// Charges `calls` requests against `endpoint`, advancing session time.
    ///
    /// Each call is a retry loop: attempts that draw a fault from the
    /// session's [`FaultPlan`] burn their sim-time cost (latency for fast
    /// errors, the client timeout for hangs), then back off per the
    /// [`RetryPolicy`] — waits charged to the sim clock like any other
    /// elapsed time — until an attempt succeeds or the budget/deadline
    /// runs out. A truncated-page fault ends the batch early with partial
    /// data instead of failing.
    ///
    /// Without an injector the loop body reduces exactly to the
    /// fault-free cost model: one token-bucket wait plus one latency draw
    /// per call.
    fn charge(&mut self, endpoint: Endpoint, calls: u64) -> Result<Charged, ApiError> {
        let instrumented = self.telemetry.is_enabled();
        let (timeout_secs, retry_after_secs) = match &self.injector {
            Some(i) => (i.plan().timeout_secs, i.plan().retry_after_secs),
            None => (0.0, 0),
        };
        for call in 0..calls {
            let call_start = self.now;
            let mut attempt: u32 = 1;
            loop {
                let now = self.now;
                let wait = self.bucket_mut(endpoint).acquire(now);
                let latency = (self.cfg.base_latency
                    + self.rng.gen::<f64>() * self.cfg.latency_jitter)
                    / f64::from(self.cfg.parallelism);
                let fault = self.injector.as_mut().and_then(|i| i.draw(endpoint));
                // A hung call burns the client timeout instead of a
                // response latency; every other outcome answers in
                // normal time.
                let spent = match fault {
                    Some(FaultKind::Timeout) => wait + timeout_secs,
                    _ => wait + latency,
                };
                self.log.bump(endpoint, 1);
                self.rate_limit_wait += wait;
                self.now += spent;
                let labels = [("endpoint", endpoint.key())];
                if instrumented {
                    self.emit_span(
                        "api.call",
                        self.trace_base + now,
                        self.trace_base + self.now,
                        &labels,
                    );
                    self.telemetry.counter_add("api.calls", &labels, 1);
                    self.telemetry
                        .observe("api.rate_limit_wait_secs", &labels, wait);
                    self.telemetry
                        .observe("api.latency_secs", &labels, spent - wait);
                }
                let Some(kind) = fault else {
                    break; // success
                };
                self.faults.injected += 1;
                self.faults.push(FaultRecord {
                    at_secs: now,
                    endpoint,
                    kind,
                    attempt,
                });
                if instrumented {
                    let fault_labels = [("endpoint", endpoint.key()), ("kind", kind.key())];
                    self.emit_point("api.fault", self.trace_base + self.now, &fault_labels);
                    self.telemetry.counter_add("api.faults", &fault_labels, 1);
                }
                if kind == FaultKind::TruncatedPage {
                    self.faults.truncated_pages += 1;
                    return Ok(Charged {
                        truncated_at: Some(call),
                    });
                }
                let retry_after = (kind == FaultKind::RateLimited).then_some(retry_after_secs);
                let out_of_attempts = attempt >= self.retry.max_attempts;
                let backoff = if out_of_attempts {
                    0.0
                } else {
                    self.retry
                        .backoff_secs(attempt, retry_after, &mut self.retry_jitter)
                };
                let over_deadline = self
                    .retry
                    .deadline_secs
                    .is_some_and(|d| self.now - call_start + backoff > d);
                if out_of_attempts || over_deadline {
                    self.faults.exhausted_calls += 1;
                    if instrumented {
                        self.telemetry.counter_add("api.call_failures", &labels, 1);
                    }
                    return Err(match kind {
                        FaultKind::Unavailable => ApiError::ServiceUnavailable {
                            endpoint,
                            attempts: attempt,
                        },
                        FaultKind::RateLimited => ApiError::RateLimited {
                            endpoint,
                            retry_after_secs,
                            attempts: attempt,
                        },
                        FaultKind::Timeout => ApiError::TimedOut {
                            endpoint,
                            attempts: attempt,
                        },
                        FaultKind::TruncatedPage => unreachable!("truncation handled above"),
                    });
                }
                let backoff_start = self.now;
                self.now += backoff;
                self.faults.retries += 1;
                self.faults.backoff_secs += backoff;
                if instrumented {
                    let attempt_str = attempt.to_string();
                    let retry_labels = [
                        ("endpoint", endpoint.key()),
                        ("attempt", attempt_str.as_str()),
                    ];
                    self.emit_span(
                        "api.retry",
                        self.trace_base + backoff_start,
                        self.trace_base + self.now,
                        &retry_labels,
                    );
                    self.telemetry.counter_add("api.retries", &labels, 1);
                    self.telemetry.observe("api.backoff_secs", &labels, backoff);
                }
                attempt += 1;
            }
        }
        Ok(Charged { truncated_at: None })
    }

    /// How many of `len` materialised items survive a truncated-page
    /// fault at 0-based call `cut` of a `pages`-call crawl: pages past
    /// the faulted one were never fetched and the faulted page itself
    /// came back half-empty, scaled proportionally onto the materialised
    /// list (shorter than the nominal crawl for scale-substituted
    /// targets).
    fn truncated_len(len: usize, cut: u64, pages: u64) -> usize {
        let frac = (cut as f64 + 0.5) / pages.max(1) as f64;
        ((len as f64) * frac).floor() as usize
    }

    fn known(&self, id: AccountId) -> Result<(), ApiError> {
        if self.platform.profile(id).is_some() {
            Ok(())
        } else {
            Err(ApiError::UnknownAccount(id))
        }
    }

    /// `GET followers/ids`, full pagination: all materialised follower ids
    /// of `target`, newest first.
    ///
    /// Charges one call per page **of the nominal count** — for
    /// scale-substituted targets this bills the crawl a real client would
    /// pay (8 200 pages for @BarackObama) even though only the materialised
    /// list is returned.
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownAccount`], or a retryable transport error when
    /// the session's fault plan exhausts its retry budget. A
    /// truncated-page fault instead returns the partial list crawled so
    /// far.
    pub fn followers_ids(&mut self, target: AccountId) -> Result<Vec<AccountId>, ApiError> {
        self.known(target)?;
        let nominal = self
            .platform
            .profile(target)
            .expect("checked")
            .followers_count;
        let per = Endpoint::FollowersIds.items_per_request() as u64;
        let pages = nominal.div_ceil(per).max(1);
        let charged = self.charge(Endpoint::FollowersIds, pages)?;
        let mut ids = self.platform.followers_newest_first(target);
        if let Some(cut) = charged.truncated_at {
            ids.truncate(Self::truncated_len(ids.len(), cut, pages));
        }
        Ok(ids)
    }

    /// `GET followers/ids`, one cursored page — the raw shape of the real
    /// endpoint. Pass [`Cursor::START`] for the first (newest) page; each
    /// response carries the cursor for the next-older page until the list
    /// is exhausted. Charges exactly one call.
    ///
    /// The cursor walks the *materialised* list (cursor values index into
    /// it); bulk crawls of scale-substituted targets should use
    /// [`ApiSession::followers_ids`], which bills the nominal page count.
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownAccount`], or [`ApiError::BadCursor`] when the
    /// cursor does not belong to this target's list.
    pub fn followers_ids_page(
        &mut self,
        target: AccountId,
        cursor: Cursor,
    ) -> Result<(Vec<AccountId>, Option<Cursor>), ApiError> {
        self.known(target)?;
        let all = self.platform.followers_newest_first(target);
        let offset = cursor.0 as usize;
        if offset > all.len() || offset % Endpoint::FollowersIds.items_per_request() != 0 {
            return Err(ApiError::BadCursor(cursor));
        }
        let charged = self.charge(Endpoint::FollowersIds, 1)?;
        let per = Endpoint::FollowersIds.items_per_request();
        let end = (offset + per).min(all.len());
        let mut page = all[offset..end].to_vec();
        let mut next = (end < all.len()).then_some(Cursor(end as u64));
        if charged.truncated_at.is_some() {
            // A truncated page comes back half-empty with its
            // next-cursor lost.
            page.truncate(page.len() / 2);
            next = None;
        }
        Ok((page, next))
    }

    /// `GET followers/ids` limited to the newest `limit` followers — the
    /// prefix window the commercial tools fetch. Charges only the pages
    /// needed for `limit` items.
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownAccount`].
    pub fn followers_ids_prefix(
        &mut self,
        target: AccountId,
        limit: usize,
    ) -> Result<Vec<AccountId>, ApiError> {
        self.known(target)?;
        let mut ids = self.platform.followers_newest_first(target);
        ids.truncate(limit);
        // Billing follows what a real client would fetch: the window
        // clamped to the account's (nominal) follower count.
        let nominal = self
            .platform
            .profile(target)
            .expect("checked")
            .followers_count;
        let fetched = (limit as u64).min(nominal);
        let per = Endpoint::FollowersIds.items_per_request() as u64;
        let pages = fetched.div_ceil(per).max(1);
        let charged = self.charge(Endpoint::FollowersIds, pages)?;
        if let Some(cut) = charged.truncated_at {
            ids.truncate(Self::truncated_len(ids.len(), cut, pages));
        }
        Ok(ids)
    }

    /// `GET friends/ids`: the materialised accounts `id` follows.
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownAccount`].
    pub fn friends_ids(&mut self, id: AccountId) -> Result<Vec<AccountId>, ApiError> {
        self.known(id)?;
        let mut friends = self.platform.graph().friends_of(id).to_vec();
        let per = Endpoint::FriendsIds.items_per_request();
        let pages = (friends.len().div_ceil(per).max(1)) as u64;
        let charged = self.charge(Endpoint::FriendsIds, pages)?;
        if let Some(cut) = charged.truncated_at {
            friends.truncate(Self::truncated_len(friends.len(), cut, pages));
        }
        Ok(friends)
    }

    /// `GET users/lookup`: hydrates up to 100 profiles per request; this
    /// convenience method batches arbitrarily many ids. Unknown ids are
    /// silently dropped, as the real endpoint does.
    ///
    /// # Errors
    ///
    /// A retryable transport error when the session's fault plan
    /// exhausts its retry budget. A truncated-page fault instead
    /// hydrates only the ids fetched before the cut.
    pub fn users_lookup(&mut self, ids: &[AccountId]) -> Result<Vec<Profile>, ApiError> {
        let per = Endpoint::UsersLookup.items_per_request();
        let calls = (ids.len().div_ceil(per).max(1)) as u64;
        let charged = self.charge(Endpoint::UsersLookup, calls)?;
        let hydrated = match charged.truncated_at {
            Some(cut) => (cut as usize * per + per / 2).min(ids.len()),
            None => ids.len(),
        };
        Ok(ids[..hydrated]
            .iter()
            .filter_map(|&id| self.platform.profile(id).cloned())
            .collect())
    }

    /// `GET users/lookup` restricted to a single request.
    ///
    /// # Errors
    ///
    /// [`ApiError::TooManyIds`] when more than 100 ids are passed.
    pub fn users_lookup_page(&mut self, ids: &[AccountId]) -> Result<Vec<Profile>, ApiError> {
        let max = Endpoint::UsersLookup.items_per_request();
        if ids.len() > max {
            return Err(ApiError::TooManyIds {
                given: ids.len(),
                max,
            });
        }
        self.users_lookup(ids)
    }

    /// `GET statuses/user_timeline`: the newest `count` tweets of `id`
    /// (capped at 3 200, 200 per request).
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownAccount`].
    pub fn user_timeline(&mut self, id: AccountId, count: usize) -> Result<Vec<Tweet>, ApiError> {
        self.known(id)?;
        let count = count.min(Endpoint::TIMELINE_DEPTH_CAP);
        let available = self
            .platform
            .profile(id)
            .expect("checked")
            .statuses_count
            .min(count as u64) as usize;
        let per = Endpoint::UserTimeline.items_per_request();
        let calls = (available.div_ceil(per).max(1)) as u64;
        let charged = self.charge(Endpoint::UserTimeline, calls)?;
        let mut tweets = self.platform.recent_tweets(id, count);
        if let Some(cut) = charged.truncated_at {
            tweets.truncate((cut as usize * per + per / 2).min(tweets.len()));
        }
        Ok(tweets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_population::{ClassMix, TargetScenario};

    fn built() -> (Platform, fakeaudit_population::BuiltTarget) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("target", 1_200, ClassMix::new(0.3, 0.2, 0.5).unwrap())
            .build(&mut platform, 17)
            .unwrap();
        (platform, t)
    }

    fn quiet_cfg() -> ApiConfig {
        ApiConfig {
            base_latency: 1.0,
            latency_jitter: 0.0,
            ..ApiConfig::default()
        }
    }

    #[test]
    fn followers_ids_returns_newest_first() {
        let (platform, t) = built();
        let mut s = ApiSession::new(&platform, quiet_cfg());
        let ids = s.followers_ids(t.target).unwrap();
        assert_eq!(ids.len(), 1_200);
        assert_eq!(ids, platform.followers_newest_first(t.target));
        // 1200 followers → 1 page.
        assert_eq!(s.log().followers_ids, 1);
    }

    #[test]
    fn prefix_fetch_charges_fewer_pages() {
        let (platform, t) = built();
        let mut s = ApiSession::new(&platform, quiet_cfg());
        let ids = s.followers_ids_prefix(t.target, 100).unwrap();
        assert_eq!(ids.len(), 100);
        assert_eq!(s.log().followers_ids, 1);
        // Prefix equals the head of the full list.
        let full = platform.followers_newest_first(t.target);
        assert_eq!(ids, full[..100]);
    }

    #[test]
    fn pinned_target_bills_nominal_pages() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("big", 500, ClassMix::all_genuine())
            .nominal_followers(41_000_000)
            .build(&mut platform, 3)
            .unwrap();
        let mut s = ApiSession::new(&platform, quiet_cfg());
        let ids = s.followers_ids(t.target).unwrap();
        assert_eq!(ids.len(), 500, "returns materialised ids only");
        assert_eq!(s.log().followers_ids, 8_200, "bills the nominal crawl");
        // 8200 calls at 1/min sustained minus the free window ≈ 5.7 days.
        assert!(s.elapsed_secs() > 5.5 * 86_400.0);
        assert!(s.rate_limit_wait_secs() > 0.0);
    }

    #[test]
    fn users_lookup_batches_and_drops_unknown() {
        let (platform, t) = built();
        let mut s = ApiSession::new(&platform, quiet_cfg());
        let mut ids: Vec<AccountId> = t
            .followers_oldest_first
            .iter()
            .map(|&(id, _)| id)
            .take(250)
            .collect();
        ids.push(AccountId(9_999_999));
        let profiles = s.users_lookup(&ids).unwrap();
        assert_eq!(profiles.len(), 250);
        assert_eq!(s.log().users_lookup, 3); // ceil(251/100)
    }

    #[test]
    fn users_lookup_page_rejects_oversize() {
        let (platform, _) = built();
        let mut s = ApiSession::new(&platform, quiet_cfg());
        let ids: Vec<AccountId> = (0..101).map(AccountId).collect();
        assert!(matches!(
            s.users_lookup_page(&ids),
            Err(ApiError::TooManyIds {
                given: 101,
                max: 100
            })
        ));
    }

    #[test]
    fn user_timeline_caps_and_charges() {
        let (platform, t) = built();
        // The target itself has thousands of tweets.
        let mut s = ApiSession::new(&platform, quiet_cfg());
        let tweets = s.user_timeline(t.target, 400).unwrap();
        assert_eq!(tweets.len(), 400);
        assert_eq!(s.log().user_timeline, 2);
        // Requesting more than the 3200 cap clamps.
        let mut s2 = ApiSession::new(&platform, quiet_cfg());
        let tweets = s2.user_timeline(t.target, 100_000).unwrap();
        assert!(tweets.len() <= 3_200);
    }

    #[test]
    fn timeline_of_silent_account_is_one_call() {
        let (platform, t) = built();
        // Find a follower that never tweeted.
        let silent = t
            .followers_oldest_first
            .iter()
            .map(|&(id, _)| id)
            .find(|&id| platform.profile(id).unwrap().statuses_count == 0)
            .expect("some follower never tweeted");
        let mut s = ApiSession::new(&platform, quiet_cfg());
        let tweets = s.user_timeline(silent, 200).unwrap();
        assert!(tweets.is_empty());
        assert_eq!(s.log().user_timeline, 1);
    }

    #[test]
    fn cursored_pagination_walks_the_whole_list() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("paged", 12_000, ClassMix::all_genuine())
            .build(&mut platform, 41)
            .unwrap();
        let mut s = ApiSession::new(&platform, quiet_cfg());
        let mut cursor = Some(Cursor::START);
        let mut collected = Vec::new();
        let mut pages = 0;
        while let Some(c) = cursor {
            let (page, next) = s.followers_ids_page(t.target, c).unwrap();
            collected.extend(page);
            cursor = next;
            pages += 1;
        }
        assert_eq!(pages, 3, "12K followers at 5000/page");
        assert_eq!(s.log().followers_ids, 3);
        assert_eq!(collected, platform.followers_newest_first(t.target));
    }

    #[test]
    fn bad_cursor_is_rejected() {
        let (platform, t) = built();
        let mut s = ApiSession::new(&platform, quiet_cfg());
        // Not a page boundary.
        assert!(matches!(
            s.followers_ids_page(t.target, Cursor(7)),
            Err(ApiError::BadCursor(_))
        ));
        // Past the end of the list.
        assert!(matches!(
            s.followers_ids_page(t.target, Cursor(5_000)),
            Err(ApiError::BadCursor(_))
        ));
    }

    #[test]
    fn single_page_list_has_no_next_cursor() {
        let (platform, t) = built(); // 1200 followers
        let mut s = ApiSession::new(&platform, quiet_cfg());
        let (page, next) = s.followers_ids_page(t.target, Cursor::START).unwrap();
        assert_eq!(page.len(), 1_200);
        assert_eq!(next, None);
    }

    #[test]
    fn unknown_account_errors() {
        let (platform, _) = built();
        let mut s = ApiSession::new(&platform, quiet_cfg());
        let ghost = AccountId(123_456_789);
        assert_eq!(
            s.followers_ids(ghost).unwrap_err(),
            ApiError::UnknownAccount(ghost)
        );
        assert_eq!(
            s.user_timeline(ghost, 10).unwrap_err(),
            ApiError::UnknownAccount(ghost)
        );
        assert_eq!(
            s.friends_ids(ghost).unwrap_err(),
            ApiError::UnknownAccount(ghost)
        );
    }

    #[test]
    fn elapsed_time_accumulates_latency() {
        let (platform, t) = built();
        let mut s = ApiSession::new(&platform, quiet_cfg());
        s.followers_ids(t.target).unwrap();
        let ids: Vec<AccountId> = t.followers_oldest_first.iter().map(|&(id, _)| id).collect();
        s.users_lookup(&ids).unwrap();
        // 1 followers call + 12 lookup calls at 1.0 s latency.
        assert_eq!(s.log().total(), 13);
        assert!((s.elapsed_secs() - 13.0).abs() < 1e-9);
        assert_eq!(s.rate_limit_wait_secs(), 0.0);
    }

    #[test]
    fn parallelism_divides_latency() {
        let (platform, t) = built();
        let cfg = ApiConfig {
            parallelism: 4,
            ..quiet_cfg()
        };
        let mut s = ApiSession::new(&platform, cfg);
        let ids: Vec<AccountId> = t.followers_oldest_first.iter().map(|&(id, _)| id).collect();
        s.users_lookup(&ids).unwrap();
        assert!((s.elapsed_secs() - 12.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn token_pool_raises_quota() {
        // 20 followers/ids pages: pool 1 waits, pool 2 does not.
        let mut platform = Platform::new();
        let t = TargetScenario::new("mid", 300, ClassMix::all_genuine())
            .nominal_followers(100_000) // 20 pages
            .build(&mut platform, 5)
            .unwrap();
        let mut s1 = ApiSession::new(&platform, quiet_cfg());
        s1.followers_ids(t.target).unwrap();
        assert!(s1.rate_limit_wait_secs() > 0.0);
        let mut s2 = ApiSession::new(
            &platform,
            ApiConfig {
                token_pool: 2,
                ..quiet_cfg()
            },
        );
        s2.followers_ids(t.target).unwrap();
        assert_eq!(s2.rate_limit_wait_secs(), 0.0);
    }

    #[test]
    fn sessions_are_deterministic() {
        let (platform, t) = built();
        let run = || {
            let mut s = ApiSession::new(&platform, ApiConfig::default());
            s.followers_ids(t.target).unwrap();
            s.elapsed_secs()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn telemetry_mirrors_call_log() {
        let (platform, t) = built();
        let tel = Telemetry::enabled();
        let mut s = ApiSession::with_telemetry(&platform, quiet_cfg(), tel.clone());
        s.followers_ids(t.target).unwrap();
        let ids: Vec<AccountId> = t
            .followers_oldest_first
            .iter()
            .map(|&(id, _)| id)
            .take(250)
            .collect();
        s.users_lookup(&ids).unwrap();
        let snap = tel.snapshot();
        assert_eq!(snap.counter_total("api.calls"), s.log().total());
        assert_eq!(
            snap.counter("api.calls", &[("endpoint", "followers_ids")]),
            Some(s.log().followers_ids)
        );
        assert_eq!(
            snap.counter("api.calls", &[("endpoint", "users_lookup")]),
            Some(s.log().users_lookup)
        );
        // One span per REST call, all on the absolute sim-time axis.
        let events = tel.events();
        assert_eq!(events.len() as u64, s.log().total());
        assert!(events.iter().all(|e| e.name == "api.call"));
        // Wait + latency histograms decompose the elapsed time exactly.
        let wait = snap.histogram_sum("api.rate_limit_wait_secs");
        let latency = snap.histogram_sum("api.latency_secs");
        assert!((wait + latency - s.elapsed_secs()).abs() < 1e-9);
        assert!((wait - s.rate_limit_wait_secs()).abs() < 1e-9);
    }

    #[test]
    fn context_sessions_parent_api_calls() {
        let (platform, t) = built();
        let tel = Telemetry::enabled();
        let audit = tel.root_context().child(); // an open enclosing span
        let mut s = ApiSession::with_context(&platform, quiet_cfg(), audit.clone());
        s.followers_ids(t.target).unwrap();
        audit.record("detector.audit", 0.0, s.trace_time(), &[]);
        let events = tel.events();
        let call = events.iter().find(|e| e.name == "api.call").unwrap();
        assert!(call.id.is_some());
        assert_eq!(call.parent, audit.span_id());
        // A root context keeps the flat, identity-less shape.
        let tel2 = Telemetry::enabled();
        let mut s2 = ApiSession::with_telemetry(&platform, quiet_cfg(), tel2.clone());
        s2.followers_ids(t.target).unwrap();
        assert!(tel2.events().iter().all(|e| e.id.is_none()));
    }

    #[test]
    fn disabled_telemetry_leaves_sessions_identical() {
        let (platform, t) = built();
        let mut plain = ApiSession::new(&platform, quiet_cfg());
        let mut instrumented =
            ApiSession::with_telemetry(&platform, quiet_cfg(), Telemetry::disabled());
        plain.followers_ids(t.target).unwrap();
        instrumented.followers_ids(t.target).unwrap();
        assert_eq!(plain.elapsed_secs(), instrumented.elapsed_secs());
        assert!(instrumented.telemetry().events().is_empty());
        assert_eq!(instrumented.trace_time(), instrumented.elapsed_secs());
    }

    #[test]
    #[should_panic(expected = "token_pool must be >= 1")]
    fn rejects_zero_token_pool() {
        let platform = Platform::new();
        ApiSession::new(
            &platform,
            ApiConfig {
                token_pool: 0,
                ..ApiConfig::default()
            },
        );
    }
}
