//! Closed-form crawl budgets (experiment E3).
//!
//! "For our tests we gathered data from the whole set of followers of
//! President Obama. This required a total time of around 27 days" (§IV-B).
//! The figure is pure arithmetic over Table I's sustained rates; this module
//! reproduces it for any follower count.

use crate::endpoint::Endpoint;
use fakeaudit_twittersim::clock::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The cost breakdown of crawling a follower base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlBudget {
    /// Followers to crawl.
    pub followers: u64,
    /// `GET followers/ids` calls (5000 ids each).
    pub ids_calls: u64,
    /// `GET users/lookup` calls (100 profiles each).
    pub lookup_calls: u64,
    /// `GET statuses/user_timeline` calls (one 200-tweet page per account),
    /// zero when timelines are not crawled.
    pub timeline_calls: u64,
    /// Total crawl duration at sustained rates with a single token, the
    /// endpoints polled serially (as the authors' crawler did).
    pub total: SimDuration,
}

impl CrawlBudget {
    /// Computes the budget for crawling `followers` accounts: the id list,
    /// every profile, and optionally one timeline page per follower.
    ///
    /// ```
    /// use fakeaudit_twitter_api::crawl::CrawlBudget;
    /// // The paper's Obama crawl: "around 27 days".
    /// let budget = CrawlBudget::for_followers(41_000_000, false);
    /// assert!((25.0..32.0).contains(&budget.total_days()));
    /// ```
    pub fn for_followers(followers: u64, include_timelines: bool) -> Self {
        let ids_calls = followers.div_ceil(Endpoint::FollowersIds.items_per_request() as u64);
        let lookup_calls = followers.div_ceil(Endpoint::UsersLookup.items_per_request() as u64);
        let timeline_calls = if include_timelines { followers } else { 0 };
        let minutes = |calls: u64, e: Endpoint| {
            (calls as f64 / f64::from(e.requests_per_minute())).ceil() as u64
        };
        let total_minutes = minutes(ids_calls, Endpoint::FollowersIds)
            + minutes(lookup_calls, Endpoint::UsersLookup)
            + if include_timelines {
                minutes(timeline_calls, Endpoint::UserTimeline)
            } else {
                0
            };
        Self {
            followers,
            ids_calls,
            lookup_calls,
            timeline_calls,
            total: SimDuration::from_mins(total_minutes),
        }
    }

    /// The total duration in fractional days.
    pub fn total_days(&self) -> f64 {
        self.total.as_days_f64()
    }

    /// Records the budget into `telemetry` as gauges
    /// (`crawl.ids_calls`, `crawl.lookup_calls`, `crawl.timeline_calls`,
    /// `crawl.total_secs`) plus one `crawl.budget` point event, all keyed
    /// by the follower count and whether timelines were included.
    pub fn record_metrics(&self, telemetry: &fakeaudit_telemetry::Telemetry) {
        let followers = self.followers.to_string();
        let timelines = if self.timeline_calls > 0 { "yes" } else { "no" };
        let labels = [("followers", followers.as_str()), ("timelines", timelines)];
        telemetry.gauge_set("crawl.ids_calls", &labels, self.ids_calls as f64);
        telemetry.gauge_set("crawl.lookup_calls", &labels, self.lookup_calls as f64);
        telemetry.gauge_set("crawl.timeline_calls", &labels, self.timeline_calls as f64);
        telemetry.gauge_set("crawl.total_secs", &labels, self.total.as_secs() as f64);
        telemetry.event("crawl.budget", self.total.as_secs() as f64, &labels);
    }
}

impl fmt::Display for CrawlBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crawl of {} followers: {} ids calls + {} lookup calls{} = {}",
            self.followers,
            self.ids_calls,
            self.lookup_calls,
            if self.timeline_calls > 0 {
                format!(" + {} timeline calls", self.timeline_calls)
            } else {
                String::new()
            },
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obama_crawl_takes_weeks() {
        // 41M followers: 8200 ids calls (5.7 days) + 410 000 lookup calls
        // (23.7 days) ≈ 29 days — the paper reports "around 27 days".
        let b = CrawlBudget::for_followers(41_000_000, false);
        assert_eq!(b.ids_calls, 8_200);
        assert_eq!(b.lookup_calls, 410_000);
        let days = b.total_days();
        assert!(
            (25.0..32.0).contains(&days),
            "Obama crawl should take ~27 days, got {days:.1}"
        );
    }

    #[test]
    fn small_account_crawls_in_minutes() {
        let b = CrawlBudget::for_followers(929, false);
        assert_eq!(b.ids_calls, 1);
        assert_eq!(b.lookup_calls, 10);
        assert!(b.total.as_secs() <= 3 * 60);
    }

    #[test]
    fn timelines_dominate_when_included() {
        let with = CrawlBudget::for_followers(100_000, true);
        let without = CrawlBudget::for_followers(100_000, false);
        assert_eq!(with.timeline_calls, 100_000);
        assert!(with.total > without.total);
    }

    #[test]
    fn zero_followers_is_free() {
        let b = CrawlBudget::for_followers(0, true);
        assert_eq!(b.ids_calls, 0);
        assert_eq!(b.total, SimDuration::ZERO);
    }

    #[test]
    fn budget_scales_linearly() {
        let a = CrawlBudget::for_followers(1_000_000, false);
        let b = CrawlBudget::for_followers(2_000_000, false);
        let ratio = b.total.as_secs() as f64 / a.total.as_secs() as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn record_metrics_exports_gauges() {
        let tel = fakeaudit_telemetry::Telemetry::enabled();
        let b = CrawlBudget::for_followers(41_000_000, false);
        b.record_metrics(&tel);
        let snap = tel.snapshot();
        assert_eq!(
            snap.gauge(
                "crawl.ids_calls",
                &[("followers", "41000000"), ("timelines", "no")]
            ),
            Some(8_200.0)
        );
        assert_eq!(tel.events().len(), 1);
    }

    #[test]
    fn display_mentions_parts() {
        let b = CrawlBudget::for_followers(10_000, true);
        let s = b.to_string();
        assert!(s.contains("ids calls"));
        assert!(s.contains("timeline calls"));
    }
}
