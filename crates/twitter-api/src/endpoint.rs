//! The endpoint catalogue — Table I as data.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Length of Twitter's rate-limit window in seconds (15 minutes).
pub const WINDOW_SECS: f64 = 900.0;

/// The four REST endpoints a fake-follower check needs (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// `GET followers/ids` — pages of follower ids, newest first.
    FollowersIds,
    /// `GET friends/ids` — pages of followed-account ids.
    FriendsIds,
    /// `GET users/lookup` — bulk profile hydration.
    UsersLookup,
    /// `GET statuses/user_timeline` — recent tweets of one account.
    UserTimeline,
}

impl Endpoint {
    /// All endpoints in Table I row order.
    pub const ALL: [Endpoint; 4] = [
        Endpoint::FollowersIds,
        Endpoint::FriendsIds,
        Endpoint::UsersLookup,
        Endpoint::UserTimeline,
    ];

    /// Elements returned per request (Table I column 2).
    pub fn items_per_request(self) -> usize {
        match self {
            Endpoint::FollowersIds | Endpoint::FriendsIds => 5_000,
            Endpoint::UsersLookup => 100,
            Endpoint::UserTimeline => 200,
        }
    }

    /// Maximum sustained requests per minute (Table I column 3).
    pub fn requests_per_minute(self) -> u32 {
        match self {
            Endpoint::FollowersIds | Endpoint::FriendsIds => 1,
            Endpoint::UsersLookup | Endpoint::UserTimeline => 12,
        }
    }

    /// The 15-minute window quota Twitter actually enforced
    /// (`requests_per_minute × 15`).
    pub fn window_quota(self) -> u32 {
        self.requests_per_minute() * 15
    }

    /// The API path, for report rendering.
    pub fn path(self) -> &'static str {
        match self {
            Endpoint::FollowersIds => "GET followers/ids",
            Endpoint::FriendsIds => "GET friends/ids",
            Endpoint::UsersLookup => "GET users/lookup",
            Endpoint::UserTimeline => "GET statuses/user_timeline",
        }
    }

    /// A short machine-friendly label for metric names and trace
    /// attributes, e.g. `api.calls{endpoint=followers_ids}`.
    pub fn key(self) -> &'static str {
        match self {
            Endpoint::FollowersIds => "followers_ids",
            Endpoint::FriendsIds => "friends_ids",
            Endpoint::UsersLookup => "users_lookup",
            Endpoint::UserTimeline => "user_timeline",
        }
    }

    /// The deepest timeline the API exposes (the paper notes timelines are
    /// "restricted however to the last 3200 tweets of an account").
    pub const TIMELINE_DEPTH_CAP: usize = 3_200;
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.path())
    }
}

/// Renders Table I exactly as the paper prints it.
pub fn render_table1() -> String {
    let mut out = String::from("API type                      elem.xrequest  max requestsxmin.\n");
    for e in Endpoint::ALL {
        out.push_str(&format!(
            "{:<30}{:<15}{}\n",
            e.path(),
            e.items_per_request(),
            e.requests_per_minute()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_page_sizes() {
        assert_eq!(Endpoint::FollowersIds.items_per_request(), 5_000);
        assert_eq!(Endpoint::FriendsIds.items_per_request(), 5_000);
        assert_eq!(Endpoint::UsersLookup.items_per_request(), 100);
        assert_eq!(Endpoint::UserTimeline.items_per_request(), 200);
    }

    #[test]
    fn table1_rates() {
        assert_eq!(Endpoint::FollowersIds.requests_per_minute(), 1);
        assert_eq!(Endpoint::FriendsIds.requests_per_minute(), 1);
        assert_eq!(Endpoint::UsersLookup.requests_per_minute(), 12);
        assert_eq!(Endpoint::UserTimeline.requests_per_minute(), 12);
    }

    #[test]
    fn window_quotas_match_twitter() {
        assert_eq!(Endpoint::FollowersIds.window_quota(), 15);
        assert_eq!(Endpoint::UsersLookup.window_quota(), 180);
    }

    #[test]
    fn render_has_all_rows() {
        let t = render_table1();
        for e in Endpoint::ALL {
            assert!(t.contains(e.path()), "missing {e}");
        }
        assert_eq!(t.lines().count(), 5);
    }

    #[test]
    fn timeline_cap() {
        assert_eq!(Endpoint::TIMELINE_DEPTH_CAP, 3_200);
    }
}
