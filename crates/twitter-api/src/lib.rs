//! Simulated Twitter REST API v1.1 with the rate limits of Table I.
//!
//! The paper's Table I lists the four endpoints a fake-follower check
//! needs, their page sizes, and their per-minute call allowances:
//!
//! | API                        | elem. × request | max requests × min |
//! |----------------------------|-----------------|--------------------|
//! | `GET followers/ids`        | 5000            | 1                  |
//! | `GET friends/ids`          | 5000            | 1                  |
//! | `GET users/lookup`         | 100             | 12                 |
//! | `GET statuses/user_timeline` | 200           | 12                 |
//!
//! Twitter enforced these as **15-minute window quotas** (15, 15, 180, 180
//! calls per window respectively — exactly `per-minute × 15`); short bursts
//! inside a window pay only network latency, while sustained crawls are
//! bound by the per-minute rate. [`rate_limit::TokenBucket`] models both
//! regimes, which is what lets the same machinery reproduce both Table II
//! (seconds) and the 27-day Obama crawl (§IV-B, experiment E3).
//!
//! * [`endpoint`] — the endpoint catalogue (Table I as data);
//! * [`rate_limit`] — deterministic continuous token bucket;
//! * [`session`] — an API session against a [`fakeaudit_twittersim::Platform`]:
//!   cursor pagination, call accounting, simulated elapsed time;
//! * [`crawl`] — closed-form crawl budgets (experiment E3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crawl;
pub mod endpoint;
pub mod fault;
pub mod rate_limit;
pub mod session;

pub use endpoint::Endpoint;
pub use fault::{
    FaultInjector, FaultKind, FaultLog, FaultPlan, FaultRates, FaultRecord, RetryPolicy,
};
pub use session::{ApiConfig, ApiError, ApiSession, CallLog, Cursor};
