//! Deterministic fault injection and retry policy for API sessions.
//!
//! The paper's Table I model assumes an API that only ever fails by rate
//! limiting; real crawls also hit 503s, 429s with `Retry-After`, client
//! timeouts, and truncated follower pages (*Fame for sale* reports crawler
//! flakiness as a first-class cost). A [`FaultPlan`] makes those failure
//! modes a seeded, reproducible dimension of the simulation: the same seed
//! and plan replay byte-identical fault sequences, and a [`RetryPolicy`]
//! decides how a session spends sim-clock seconds recovering from them.
//!
//! Determinism argument: the injector draws from its own
//! [`DetStream`] (seeded `derive_seed(plan.seed, "fault-injector")`) —
//! a self-contained splitmix64 stream, fully separate from the session's
//! latency stream and independent of the `rand` crate's generator choice
//! — and consumes exactly one draw per call attempt on a faultable
//! endpoint. Enabling faults therefore never perturbs latency draws,
//! fault schedules are bit-reproducible across toolchains (safe to pin
//! in committed golden fixtures), and [`FaultPlan::none`] consumes
//! nothing at all, leaving fault-free sessions byte-identical to a build
//! without this module.

use crate::endpoint::Endpoint;
use fakeaudit_stats::rng::{derive_seed, DetStream};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// The failure modes an injected fault can take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// `503 Service Unavailable` — a fast server-side error response.
    Unavailable,
    /// `429 Too Many Requests` carrying a synthetic `Retry-After` header.
    RateLimited,
    /// The client's HTTP timeout fires; the call burns `timeout_secs` of
    /// sim time before failing.
    Timeout,
    /// The call "succeeds" but returns a partial page and loses its
    /// pagination cursor — the crawl continues with truncated data.
    TruncatedPage,
}

impl FaultKind {
    /// All kinds, in severity order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Unavailable,
        FaultKind::RateLimited,
        FaultKind::Timeout,
        FaultKind::TruncatedPage,
    ];

    /// Machine-friendly label for metric names and trace attributes.
    pub fn key(self) -> &'static str {
        match self {
            FaultKind::Unavailable => "unavailable",
            FaultKind::RateLimited => "rate_limited",
            FaultKind::Timeout => "timeout",
            FaultKind::TruncatedPage => "truncated_page",
        }
    }

    /// Whether a call hit by this fault still returns data to the caller.
    pub fn is_partial_success(self) -> bool {
        matches!(self, FaultKind::TruncatedPage)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Per-attempt fault probabilities for one endpoint. Each field is the
/// Bernoulli probability that one REST call attempt draws that fault;
/// their sum must stay ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// P(503) per attempt.
    pub unavailable: f64,
    /// P(429 + Retry-After) per attempt.
    pub rate_limited: f64,
    /// P(client timeout) per attempt.
    pub timeout: f64,
    /// P(truncated page) per attempt.
    pub truncated_page: f64,
}

impl FaultRates {
    /// No faults at all.
    pub const NONE: FaultRates = FaultRates {
        unavailable: 0.0,
        rate_limited: 0.0,
        timeout: 0.0,
        truncated_page: 0.0,
    };

    /// Splits an overall per-attempt fault rate into the mix a flaky REST
    /// API typically shows: mostly 503s, some 429s, occasional timeouts
    /// and truncated pages.
    pub fn split(rate: f64) -> FaultRates {
        FaultRates {
            unavailable: rate * 0.50,
            rate_limited: rate * 0.25,
            timeout: rate * 0.15,
            truncated_page: rate * 0.10,
        }
    }

    /// Total per-attempt fault probability.
    pub fn total(&self) -> f64 {
        self.unavailable + self.rate_limited + self.timeout + self.truncated_page
    }

    /// True when every rate is zero.
    pub fn is_none(&self) -> bool {
        self.total() == 0.0
    }

    fn validate(&self) {
        for (name, p) in [
            ("unavailable", self.unavailable),
            ("rate_limited", self.rate_limited),
            ("timeout", self.timeout),
            ("truncated_page", self.truncated_page),
        ] {
            assert!(
                (0.0..=1.0).contains(&p) && p.is_finite(),
                "fault rate {name} must be in [0, 1]"
            );
        }
        assert!(self.total() <= 1.0, "fault rates must sum to <= 1");
    }
}

/// A seeded, reproducible plan for when and how API calls fail.
///
/// Faults are drawn per call attempt from a dedicated RNG stream; with
/// `burst_factor > 1` a fault raises the probability of the next draw
/// faulting too (clamped so the total stays ≤ 1), which clusters failures
/// the way real outages do.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the fault stream (independent of the latency seed).
    pub seed: u64,
    /// Per-endpoint rates, in [`Endpoint::ALL`] order.
    pub rates: [FaultRates; 4],
    /// Multiplier on fault probability while the previous attempt
    /// faulted. `1.0` means independent draws.
    pub burst_factor: f64,
    /// Synthetic `Retry-After` value carried by injected 429s, seconds.
    pub retry_after_secs: u32,
    /// Sim-clock seconds a timed-out call burns before failing.
    pub timeout_secs: f64,
}

impl FaultPlan {
    /// The identity plan: no faults, nothing drawn, sessions behave
    /// byte-identically to an uninjected build.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            rates: [FaultRates::NONE; 4],
            burst_factor: 1.0,
            retry_after_secs: 30,
            timeout_secs: 10.0,
        }
    }

    /// Uniform plan: every endpoint faults with per-attempt probability
    /// `rate`, split across kinds by [`FaultRates::split`], independent
    /// draws.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [FaultRates::split(rate); 4],
            ..FaultPlan::none()
        }
    }

    /// Burst-correlated plan: like [`FaultPlan::uniform`] but a fault
    /// multiplies the next attempt's fault probability by `burst_factor`,
    /// so failures arrive in streaks.
    pub fn bursty(seed: u64, rate: f64, burst_factor: f64) -> FaultPlan {
        FaultPlan {
            burst_factor,
            ..FaultPlan::uniform(seed, rate)
        }
    }

    /// True when no endpoint can fault — the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.rates.iter().all(FaultRates::is_none)
    }

    /// Panics on rates outside [0, 1], a non-finite or sub-1 burst
    /// factor, or a negative timeout.
    pub fn validate(&self) {
        for r in &self.rates {
            r.validate();
        }
        assert!(
            self.burst_factor >= 1.0 && self.burst_factor.is_finite(),
            "burst_factor must be >= 1"
        );
        assert!(
            self.timeout_secs >= 0.0 && self.timeout_secs.is_finite(),
            "timeout_secs must be non-negative"
        );
    }

    fn rates_for(&self, endpoint: Endpoint) -> &FaultRates {
        let idx = Endpoint::ALL
            .iter()
            .position(|&e| e == endpoint)
            .expect("endpoint in catalogue");
        &self.rates[idx]
    }
}

/// Draws faults according to a [`FaultPlan`]. One injector per session;
/// exactly one RNG draw per attempt on an endpoint with nonzero rates.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    stream: DetStream,
    /// Whether the previous draw faulted (burst correlation state).
    hot: bool,
}

impl FaultInjector {
    /// Builds an injector with its own seeded stream.
    ///
    /// # Panics
    ///
    /// Panics on an invalid plan (see [`FaultPlan::validate`]).
    pub fn new(plan: FaultPlan) -> FaultInjector {
        plan.validate();
        FaultInjector {
            plan,
            stream: DetStream::new(plan.seed, "fault-injector"),
            hot: false,
        }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draws the fate of one call attempt against `endpoint`.
    pub fn draw(&mut self, endpoint: Endpoint) -> Option<FaultKind> {
        let rates = self.plan.rates_for(endpoint);
        if rates.is_none() {
            return None;
        }
        let boost = if self.hot {
            self.plan.burst_factor
        } else {
            1.0
        };
        let u = self.stream.next_f64();
        let mut edge = 0.0;
        let mut hit = None;
        for (kind, p) in [
            (FaultKind::Unavailable, rates.unavailable),
            (FaultKind::RateLimited, rates.rate_limited),
            (FaultKind::Timeout, rates.timeout),
            (FaultKind::TruncatedPage, rates.truncated_page),
        ] {
            edge += (p * boost).min(1.0);
            if u < edge {
                hit = Some(kind);
                break;
            }
        }
        self.hot = hit.is_some();
        hit
    }
}

/// How a session retries failed calls: capped exponential backoff with
/// deterministic seeded jitter, `Retry-After` honoring, and a per-call
/// attempt budget. Backoff waits are charged to the sim clock (and thus
/// the crawl budget) like any other elapsed time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per logical call, including the first (≥ 1;
    /// 1 means fail fast).
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds.
    pub base_backoff_secs: f64,
    /// Multiplier applied per further retry.
    pub backoff_multiplier: f64,
    /// Cap on a single backoff wait, seconds (before `Retry-After`).
    pub max_backoff_secs: f64,
    /// Uniform jitter fraction: each backoff is scaled by a seeded draw
    /// from `[1, 1 + jitter_frac)`.
    pub jitter_frac: f64,
    /// Whether an injected 429's `Retry-After` floors the backoff.
    pub honor_retry_after: bool,
    /// Optional per-call deadline: once a logical call (attempts plus
    /// backoffs) has burned this many seconds, it stops retrying.
    pub deadline_secs: Option<f64>,
}

impl RetryPolicy {
    /// Fail fast: one attempt, no backoff. The identity policy.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_secs: 0.0,
            backoff_multiplier: 1.0,
            max_backoff_secs: 0.0,
            jitter_frac: 0.0,
            honor_retry_after: false,
            deadline_secs: None,
        }
    }

    /// A production-shaped default: 4 attempts, 1 s base backoff doubling
    /// to a 60 s cap, 10 % jitter, `Retry-After` honored, no deadline.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_secs: 1.0,
            backoff_multiplier: 2.0,
            max_backoff_secs: 60.0,
            jitter_frac: 0.1,
            honor_retry_after: true,
            deadline_secs: None,
        }
    }

    /// Panics on a zero attempt budget or negative/non-finite timings.
    pub fn validate(&self) {
        assert!(self.max_attempts >= 1, "max_attempts must be >= 1");
        assert!(
            self.base_backoff_secs >= 0.0 && self.base_backoff_secs.is_finite(),
            "base_backoff_secs must be non-negative"
        );
        assert!(
            self.backoff_multiplier >= 1.0 && self.backoff_multiplier.is_finite(),
            "backoff_multiplier must be >= 1"
        );
        assert!(
            self.max_backoff_secs >= 0.0 && self.max_backoff_secs.is_finite(),
            "max_backoff_secs must be non-negative"
        );
        assert!(
            self.jitter_frac >= 0.0 && self.jitter_frac.is_finite(),
            "jitter_frac must be non-negative"
        );
        if let Some(d) = self.deadline_secs {
            assert!(
                d >= 0.0 && d.is_finite(),
                "deadline_secs must be non-negative"
            );
        }
    }

    /// The seed-derived jitter stream for a session's backoffs, separate
    /// from both the latency and the fault streams.
    pub fn jitter_stream(plan_seed: u64) -> DetStream {
        DetStream::new(derive_seed(plan_seed, "retry-jitter"), "retry-jitter")
    }

    /// Backoff before retry number `retry` (1-based), honoring
    /// `retry_after` when configured. Consumes one jitter draw iff
    /// `jitter_frac > 0`.
    pub fn backoff_secs(
        &self,
        retry: u32,
        retry_after: Option<u32>,
        jitter: &mut DetStream,
    ) -> f64 {
        let exp = self.base_backoff_secs * self.backoff_multiplier.powi(retry as i32 - 1);
        let mut backoff = exp.min(self.max_backoff_secs);
        if self.jitter_frac > 0.0 {
            backoff *= 1.0 + jitter.next_f64() * self.jitter_frac;
        }
        if self.honor_retry_after {
            if let Some(ra) = retry_after {
                backoff = backoff.max(f64::from(ra));
            }
        }
        backoff
    }
}

/// One injected fault, as kept in the bounded per-session [`FaultLog`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Session-relative sim seconds when the fault fired.
    pub at_secs: f64,
    /// Endpoint hit.
    pub endpoint: Endpoint,
    /// What happened.
    pub kind: FaultKind,
    /// Which attempt of the logical call faulted (1-based).
    pub attempt: u32,
}

/// Bounded drop-oldest record of injected faults, so retry-heavy sessions
/// cannot grow memory without bound. Aggregate counters never drop.
#[derive(Debug, Clone)]
pub struct FaultLog {
    records: VecDeque<FaultRecord>,
    capacity: usize,
    dropped: u64,
    /// Total faults injected (all kinds, including truncations).
    pub injected: u64,
    /// Retries performed (backoffs slept).
    pub retries: u64,
    /// Calls that returned a truncated page.
    pub truncated_pages: u64,
    /// Logical calls that exhausted their attempt budget or deadline.
    pub exhausted_calls: u64,
    /// Sim seconds spent in backoff waits.
    pub backoff_secs: f64,
}

impl FaultLog {
    /// Default bound on retained fault records.
    pub const DEFAULT_CAPACITY: usize = 512;

    /// An empty log retaining at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> FaultLog {
        FaultLog {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            injected: 0,
            retries: 0,
            truncated_pages: 0,
            exhausted_calls: 0,
            backoff_secs: 0.0,
        }
    }

    /// Appends a record, dropping the oldest once full.
    pub fn push(&mut self, record: FaultRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// The retained (newest) records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &FaultRecord> {
        self.records.iter()
    }

    /// Records evicted by the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for FaultLog {
    fn default() -> FaultLog {
        FaultLog::with_capacity(FaultLog::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_identity() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        let mut inj = FaultInjector::new(plan);
        for e in Endpoint::ALL {
            assert_eq!(inj.draw(e), None);
        }
    }

    #[test]
    fn uniform_plan_hits_roughly_the_rate() {
        let mut inj = FaultInjector::new(FaultPlan::uniform(7, 0.2));
        let hits = (0..10_000)
            .filter(|_| inj.draw(Endpoint::UsersLookup).is_some())
            .count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let seq = |seed| {
            let mut inj = FaultInjector::new(FaultPlan::bursty(seed, 0.3, 4.0));
            (0..500)
                .map(|i| inj.draw(Endpoint::ALL[i % 4]))
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(11), seq(11));
        assert_ne!(seq(11), seq(12));
    }

    #[test]
    fn bursts_cluster_faults() {
        let streaks = |plan: FaultPlan| {
            let mut inj = FaultInjector::new(plan);
            let mut after_fault = 0u32;
            let mut faults = 0u32;
            let mut prev = false;
            for _ in 0..50_000 {
                let hit = inj.draw(Endpoint::UsersLookup).is_some();
                if prev {
                    after_fault += u32::from(hit);
                    faults += 1;
                }
                prev = hit;
            }
            f64::from(after_fault) / f64::from(faults)
        };
        let independent = streaks(FaultPlan::uniform(3, 0.1));
        let bursty = streaks(FaultPlan::bursty(3, 0.1, 6.0));
        assert!(
            bursty > independent * 2.0,
            "bursty {bursty} vs {independent}"
        );
    }

    #[test]
    fn backoff_grows_caps_and_honors_retry_after() {
        let policy = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::standard()
        };
        let mut rng = RetryPolicy::jitter_stream(0);
        assert_eq!(policy.backoff_secs(1, None, &mut rng), 1.0);
        assert_eq!(policy.backoff_secs(2, None, &mut rng), 2.0);
        assert_eq!(policy.backoff_secs(3, None, &mut rng), 4.0);
        assert_eq!(policy.backoff_secs(20, None, &mut rng), 60.0);
        assert_eq!(policy.backoff_secs(1, Some(45), &mut rng), 45.0);
        let deaf = RetryPolicy {
            honor_retry_after: false,
            ..policy
        };
        assert_eq!(deaf.backoff_secs(1, Some(45), &mut rng), 1.0);
    }

    #[test]
    fn jitter_is_bounded_and_seeded() {
        let policy = RetryPolicy::standard();
        let draws = |seed| {
            let mut rng = RetryPolicy::jitter_stream(seed);
            (1..=8)
                .map(|r| policy.backoff_secs(r, None, &mut rng))
                .collect::<Vec<_>>()
        };
        let a = draws(5);
        assert_eq!(a, draws(5));
        assert_ne!(a, draws(6));
        for (i, b) in a.iter().enumerate() {
            let exp = (2.0f64.powi(i as i32)).min(60.0);
            assert!(*b >= exp && *b <= exp * 1.1 + 1e-12, "retry {i}: {b}");
        }
    }

    #[test]
    fn fault_log_drops_oldest() {
        let mut log = FaultLog::with_capacity(2);
        for i in 0..5 {
            log.push(FaultRecord {
                at_secs: f64::from(i),
                endpoint: Endpoint::UsersLookup,
                kind: FaultKind::Unavailable,
                attempt: 1,
            });
        }
        assert_eq!(log.dropped(), 3);
        let kept: Vec<f64> = log.records().map(|r| r.at_secs).collect();
        assert_eq!(kept, vec![3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "fault rates must sum to <= 1")]
    fn rejects_oversubscribed_rates() {
        FaultInjector::new(FaultPlan::uniform(0, 1.5));
    }

    #[test]
    #[should_panic(expected = "max_attempts must be >= 1")]
    fn rejects_zero_attempt_budget() {
        RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::none()
        }
        .validate();
    }
}
