//! Deterministic continuous token bucket.
//!
//! Capacity equals the endpoint's 15-minute window quota; refill rate is the
//! sustained per-minute allowance. A burst that fits inside the window pays
//! no rate-limit wait (only network latency) — the regime of Table II —
//! while a multi-day crawl converges to the sustained rate — the regime of
//! the 27-day Obama crawl.

use std::fmt;

/// A continuous token bucket over simulated (f64 seconds) time.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    tokens: f64,
    /// Simulated time of the last update, in seconds.
    updated_at: f64,
}

impl TokenBucket {
    /// Creates a full bucket.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity >= 1` and `refill_per_sec > 0` and both are
    /// finite.
    pub fn new(capacity: f64, refill_per_sec: f64) -> Self {
        assert!(
            capacity >= 1.0 && capacity.is_finite(),
            "capacity must be >= 1"
        );
        assert!(
            refill_per_sec > 0.0 && refill_per_sec.is_finite(),
            "refill rate must be positive"
        );
        Self {
            capacity,
            refill_per_sec,
            tokens: capacity,
            updated_at: 0.0,
        }
    }

    /// Bucket capacity (the window quota).
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Tokens available at simulated time `now`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `now` precedes the last observed time.
    pub fn available_at(&self, now: f64) -> f64 {
        debug_assert!(now + 1e-9 >= self.updated_at, "time went backwards");
        (self.tokens + (now - self.updated_at).max(0.0) * self.refill_per_sec).min(self.capacity)
    }

    /// Acquires one token at simulated time `now`, returning the wait in
    /// seconds before the request may be issued (0 when a token is ready).
    /// The token is consumed at `now + wait`.
    pub fn acquire(&mut self, now: f64) -> f64 {
        let available = self.available_at(now);
        if available >= 1.0 {
            self.tokens = available - 1.0;
            self.updated_at = now;
            0.0
        } else {
            let wait = (1.0 - available) / self.refill_per_sec;
            self.tokens = 0.0;
            self.updated_at = now + wait;
            wait
        }
    }
}

impl fmt::Display for TokenBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bucket({:.0} cap, {:.3}/s, {:.2} left)",
            self.capacity, self.refill_per_sec, self.tokens
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn followers_bucket() -> TokenBucket {
        // GET followers/ids: quota 15 per 900 s.
        TokenBucket::new(15.0, 15.0 / 900.0)
    }

    #[test]
    fn burst_within_window_is_free() {
        let mut b = followers_bucket();
        let mut t = 0.0;
        for _ in 0..15 {
            assert_eq!(b.acquire(t), 0.0);
            t += 1.0;
        }
    }

    #[test]
    fn sixteenth_call_waits_for_refill() {
        let mut b = followers_bucket();
        let mut t = 0.0;
        for _ in 0..15 {
            t += b.acquire(t);
        }
        let wait = b.acquire(t);
        // 14 s of refill already happened during the burst (15 calls at 1 s
        // spacing would have been instantaneous here — t is still 0 after
        // zero waits), so a full token costs 60 s.
        assert!((wait - 60.0).abs() < 1.0, "wait {wait}");
    }

    #[test]
    fn sustained_rate_converges_to_per_minute() {
        let mut b = followers_bucket();
        let mut t = 0.0;
        let calls = 1_000;
        for _ in 0..calls {
            t += b.acquire(t);
        }
        // 1000 calls at 1/min sustained ≈ 985 minutes (15 free from burst).
        let minutes = t / 60.0;
        assert!((minutes - 985.0).abs() < 2.0, "took {minutes} min");
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut b = followers_bucket();
        for _ in 0..15 {
            b.acquire(0.0);
        }
        // After a very long idle period the bucket is full again, not more.
        assert!((b.available_at(1e7) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn spaced_calls_never_wait() {
        let mut b = followers_bucket();
        let mut t = 0.0;
        for _ in 0..100 {
            assert_eq!(b.acquire(t), 0.0);
            t += 61.0; // one per minute, just above the sustained rate
        }
    }

    #[test]
    fn lookup_bucket_allows_97_calls_in_burst() {
        // The FC needs 97 users/lookup calls for its 9604-account sample;
        // quota is 180 per window, so the burst is free.
        let mut b = TokenBucket::new(180.0, 12.0 / 60.0);
        let mut total_wait = 0.0;
        let mut t = 0.0;
        for _ in 0..97 {
            let w = b.acquire(t);
            total_wait += w;
            t += w + 1.5;
        }
        assert_eq!(total_wait, 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be >= 1")]
    fn rejects_zero_capacity() {
        TokenBucket::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "refill rate must be positive")]
    fn rejects_zero_refill() {
        TokenBucket::new(10.0, 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!followers_bucket().to_string().is_empty());
    }
}
