//! Property-based tests for the simulated API's invariants.

use fakeaudit_population::{ClassMix, TargetScenario};
use fakeaudit_twitter_api::crawl::CrawlBudget;
use fakeaudit_twitter_api::rate_limit::TokenBucket;
use fakeaudit_twitter_api::{
    ApiConfig, ApiSession, Endpoint, FaultPlan, FaultRates, FaultRecord, RetryPolicy,
};
use fakeaudit_twittersim::Platform;
use proptest::prelude::*;

/// A plan under which every attempt on every endpoint draws a 503.
fn always_unavailable(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        rates: [FaultRates {
            unavailable: 1.0,
            rate_limited: 0.0,
            timeout: 0.0,
            truncated_page: 0.0,
        }; 4],
        ..FaultPlan::none()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn token_bucket_time_never_regresses(
        capacity in 1.0f64..200.0,
        refill in 0.001f64..10.0,
        gaps in prop::collection::vec(0.0f64..100.0, 1..100),
    ) {
        let mut bucket = TokenBucket::new(capacity, refill);
        let mut t = 0.0;
        for gap in gaps {
            t += gap;
            let wait = bucket.acquire(t);
            prop_assert!(wait >= 0.0);
            // Sustained rate bound: the wait never exceeds a full token.
            prop_assert!(wait <= 1.0 / refill + 1e-9);
            t += wait;
        }
    }

    #[test]
    fn burst_within_quota_is_always_free(capacity in 1usize..180) {
        let mut bucket = TokenBucket::new(capacity as f64, 0.2);
        for i in 0..capacity {
            prop_assert_eq!(bucket.acquire(i as f64 * 0.001), 0.0);
        }
    }

    #[test]
    fn crawl_budget_is_monotone(a in 0u64..10_000_000, b in 0u64..10_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            CrawlBudget::for_followers(lo, false).total
                <= CrawlBudget::for_followers(hi, false).total
        );
        prop_assert!(
            CrawlBudget::for_followers(lo, true).total
                >= CrawlBudget::for_followers(lo, false).total
        );
    }

    #[test]
    fn crawl_budget_call_counts_match_page_sizes(n in 1u64..5_000_000) {
        let b = CrawlBudget::for_followers(n, false);
        prop_assert_eq!(b.ids_calls, n.div_ceil(5_000));
        prop_assert_eq!(b.lookup_calls, n.div_ceil(100));
    }

    #[test]
    fn prefix_fetch_is_a_prefix_of_the_full_fetch(
        followers in 1usize..800,
        limit in 1usize..1_000,
    ) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("prop_api", followers, ClassMix::all_genuine())
            .build(&mut platform, 1)
            .unwrap();
        let mut s1 = ApiSession::new(&platform, ApiConfig::default());
        let full = s1.followers_ids(t.target).unwrap();
        let mut s2 = ApiSession::new(&platform, ApiConfig::default());
        let prefix = s2.followers_ids_prefix(t.target, limit).unwrap();
        prop_assert_eq!(prefix.len(), limit.min(followers));
        prop_assert_eq!(&full[..prefix.len()], &prefix[..]);
        prop_assert!(s2.log().followers_ids <= s1.log().followers_ids);
    }

    #[test]
    fn users_lookup_charges_ceil_pages(followers in 1usize..600, take in 1usize..700) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("prop_lookup", followers, ClassMix::all_genuine())
            .build(&mut platform, 2)
            .unwrap();
        let ids: Vec<_> = t
            .followers_oldest_first
            .iter()
            .map(|&(id, _)| id)
            .take(take)
            .collect();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let profiles = s.users_lookup(&ids).unwrap();
        prop_assert_eq!(profiles.len(), ids.len());
        prop_assert_eq!(
            s.log().users_lookup,
            (ids.len().div_ceil(Endpoint::UsersLookup.items_per_request()).max(1)) as u64
        );
    }

    #[test]
    fn token_bucket_never_exceeds_capacity(
        capacity in 1.0f64..200.0,
        refill in 0.001f64..10.0,
        gaps in prop::collection::vec(0.0f64..10_000.0, 1..100),
    ) {
        let mut bucket = TokenBucket::new(capacity, refill);
        let mut t = 0.0;
        prop_assert!(bucket.available_at(t) <= capacity + 1e-9);
        for gap in gaps {
            t += gap;
            // However long the idle period, refill caps at capacity.
            prop_assert!(bucket.available_at(t) <= capacity + 1e-9);
            t += bucket.acquire(t);
            prop_assert!(bucket.available_at(t) <= capacity + 1e-9);
        }
    }

    #[test]
    fn token_bucket_wait_is_monotone_in_request_count(
        capacity in 1.0f64..50.0,
        refill in 0.001f64..1.0,
        calls in prop::collection::vec(1usize..120, 2),
    ) {
        // Draining more requests back-to-back never costs less total wait.
        let (lo, hi) = (calls[0].min(calls[1]), calls[0].max(calls[1]));
        let total_wait = |n: usize| {
            let mut bucket = TokenBucket::new(capacity, refill);
            let mut t = 0.0;
            let mut waited = 0.0;
            for _ in 0..n {
                let w = bucket.acquire(t);
                prop_assert!(w >= 0.0, "negative wait {w}");
                waited += w;
                t += w;
            }
            Ok(waited)
        };
        prop_assert!(total_wait(lo)? <= total_wait(hi)? + 1e-9);
    }

    #[test]
    fn session_telemetry_counters_match_call_log(followers in 1usize..400) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("prop_tel", followers, ClassMix::all_genuine())
            .build(&mut platform, 4)
            .unwrap();
        let tel = fakeaudit_telemetry::Telemetry::enabled();
        let mut s = ApiSession::with_telemetry(&platform, ApiConfig::default(), tel.clone());
        s.followers_ids(t.target).unwrap();
        let ids: Vec<_> = t.followers_oldest_first.iter().map(|&(id, _)| id).collect();
        s.users_lookup(&ids).unwrap();
        let snap = tel.snapshot();
        prop_assert_eq!(
            snap.counter("api.calls", &[("endpoint", "followers_ids")]),
            Some(s.log().followers_ids)
        );
        prop_assert_eq!(
            snap.counter("api.calls", &[("endpoint", "users_lookup")]),
            Some(s.log().users_lookup)
        );
        prop_assert_eq!(snap.counter_total("api.calls"), s.log().total());
    }

    #[test]
    fn session_elapsed_grows_with_calls(calls in 1usize..10) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("prop_elapsed", 50, ClassMix::all_genuine())
            .build(&mut platform, 3)
            .unwrap();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let mut last = 0.0;
        for _ in 0..calls {
            s.followers_ids(t.target).unwrap();
            prop_assert!(s.elapsed_secs() > last);
            last = s.elapsed_secs();
        }
    }

    #[test]
    fn same_seed_and_plan_replay_identical_fault_traces(
        seed in 0u64..1_000,
        rate in 0.05f64..0.5,
        followers in 1usize..300,
    ) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("prop_faults", followers, ClassMix::all_genuine())
            .build(&mut platform, 5)
            .unwrap();
        let ids: Vec<_> = t.followers_oldest_first.iter().map(|&(id, _)| id).collect();
        let run = || {
            let mut s = ApiSession::new(&platform, ApiConfig::default())
                .with_faults(FaultPlan::bursty(seed, rate, 4.0), RetryPolicy::standard());
            // Exhausted calls surface as errors; the trace either way is
            // what must replay.
            let _ = s.followers_ids(t.target);
            let _ = s.users_lookup(&ids);
            let records: Vec<FaultRecord> = s.fault_log().records().copied().collect();
            let log = s.fault_log();
            (
                records,
                log.injected,
                log.retries,
                log.truncated_pages,
                log.exhausted_calls,
                log.backoff_secs,
                s.elapsed_secs(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn retries_never_exceed_the_attempt_budget(
        attempts in 1u32..6,
        seed in 0u64..500,
    ) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("prop_budget", 40, ClassMix::all_genuine())
            .build(&mut platform, 6)
            .unwrap();
        let policy = RetryPolicy {
            max_attempts: attempts,
            ..RetryPolicy::standard()
        };
        let mut s = ApiSession::new(&platform, ApiConfig::default())
            .with_faults(always_unavailable(seed), policy);
        let err = s.followers_ids(t.target).unwrap_err();
        prop_assert!(err.is_retryable());
        let log = s.fault_log();
        // A guaranteed-failing call burns exactly its budget: one fault
        // per attempt, one backoff per retry, then gives up.
        prop_assert_eq!(log.injected, u64::from(attempts));
        prop_assert_eq!(log.retries, u64::from(attempts - 1));
        prop_assert_eq!(log.exhausted_calls, 1);
        for r in log.records() {
            prop_assert!(r.attempt >= 1 && r.attempt <= attempts);
        }
    }

    #[test]
    fn deadline_caps_backoff_spend(
        deadline in 0.5f64..30.0,
        seed in 0u64..500,
    ) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("prop_deadline", 40, ClassMix::all_genuine())
            .build(&mut platform, 8)
            .unwrap();
        let policy = RetryPolicy {
            max_attempts: 100,
            deadline_secs: Some(deadline),
            ..RetryPolicy::standard()
        };
        let mut s = ApiSession::new(&platform, ApiConfig::default())
            .with_faults(always_unavailable(seed), policy);
        prop_assert!(s.followers_ids(t.target).is_err());
        let log = s.fault_log();
        // The session never sleeps a backoff that would push the call
        // past its deadline, so total backoff spend is bounded by it —
        // well under the 100-attempt budget's worth.
        prop_assert!(log.backoff_secs <= deadline + 1e-9);
        prop_assert_eq!(log.exhausted_calls, 1);
        prop_assert!(log.retries < 100);
    }
}
