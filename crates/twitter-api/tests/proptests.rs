//! Property-based tests for the simulated API's invariants.

use fakeaudit_population::{ClassMix, TargetScenario};
use fakeaudit_twitter_api::crawl::CrawlBudget;
use fakeaudit_twitter_api::rate_limit::TokenBucket;
use fakeaudit_twitter_api::{ApiConfig, ApiSession, Endpoint};
use fakeaudit_twittersim::Platform;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn token_bucket_time_never_regresses(
        capacity in 1.0f64..200.0,
        refill in 0.001f64..10.0,
        gaps in prop::collection::vec(0.0f64..100.0, 1..100),
    ) {
        let mut bucket = TokenBucket::new(capacity, refill);
        let mut t = 0.0;
        for gap in gaps {
            t += gap;
            let wait = bucket.acquire(t);
            prop_assert!(wait >= 0.0);
            // Sustained rate bound: the wait never exceeds a full token.
            prop_assert!(wait <= 1.0 / refill + 1e-9);
            t += wait;
        }
    }

    #[test]
    fn burst_within_quota_is_always_free(capacity in 1usize..180) {
        let mut bucket = TokenBucket::new(capacity as f64, 0.2);
        for i in 0..capacity {
            prop_assert_eq!(bucket.acquire(i as f64 * 0.001), 0.0);
        }
    }

    #[test]
    fn crawl_budget_is_monotone(a in 0u64..10_000_000, b in 0u64..10_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            CrawlBudget::for_followers(lo, false).total
                <= CrawlBudget::for_followers(hi, false).total
        );
        prop_assert!(
            CrawlBudget::for_followers(lo, true).total
                >= CrawlBudget::for_followers(lo, false).total
        );
    }

    #[test]
    fn crawl_budget_call_counts_match_page_sizes(n in 1u64..5_000_000) {
        let b = CrawlBudget::for_followers(n, false);
        prop_assert_eq!(b.ids_calls, n.div_ceil(5_000));
        prop_assert_eq!(b.lookup_calls, n.div_ceil(100));
    }

    #[test]
    fn prefix_fetch_is_a_prefix_of_the_full_fetch(
        followers in 1usize..800,
        limit in 1usize..1_000,
    ) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("prop_api", followers, ClassMix::all_genuine())
            .build(&mut platform, 1)
            .unwrap();
        let mut s1 = ApiSession::new(&platform, ApiConfig::default());
        let full = s1.followers_ids(t.target).unwrap();
        let mut s2 = ApiSession::new(&platform, ApiConfig::default());
        let prefix = s2.followers_ids_prefix(t.target, limit).unwrap();
        prop_assert_eq!(prefix.len(), limit.min(followers));
        prop_assert_eq!(&full[..prefix.len()], &prefix[..]);
        prop_assert!(s2.log().followers_ids <= s1.log().followers_ids);
    }

    #[test]
    fn users_lookup_charges_ceil_pages(followers in 1usize..600, take in 1usize..700) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("prop_lookup", followers, ClassMix::all_genuine())
            .build(&mut platform, 2)
            .unwrap();
        let ids: Vec<_> = t
            .followers_oldest_first
            .iter()
            .map(|&(id, _)| id)
            .take(take)
            .collect();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let profiles = s.users_lookup(&ids);
        prop_assert_eq!(profiles.len(), ids.len());
        prop_assert_eq!(
            s.log().users_lookup,
            (ids.len().div_ceil(Endpoint::UsersLookup.items_per_request()).max(1)) as u64
        );
    }

    #[test]
    fn token_bucket_never_exceeds_capacity(
        capacity in 1.0f64..200.0,
        refill in 0.001f64..10.0,
        gaps in prop::collection::vec(0.0f64..10_000.0, 1..100),
    ) {
        let mut bucket = TokenBucket::new(capacity, refill);
        let mut t = 0.0;
        prop_assert!(bucket.available_at(t) <= capacity + 1e-9);
        for gap in gaps {
            t += gap;
            // However long the idle period, refill caps at capacity.
            prop_assert!(bucket.available_at(t) <= capacity + 1e-9);
            t += bucket.acquire(t);
            prop_assert!(bucket.available_at(t) <= capacity + 1e-9);
        }
    }

    #[test]
    fn token_bucket_wait_is_monotone_in_request_count(
        capacity in 1.0f64..50.0,
        refill in 0.001f64..1.0,
        calls in prop::collection::vec(1usize..120, 2),
    ) {
        // Draining more requests back-to-back never costs less total wait.
        let (lo, hi) = (calls[0].min(calls[1]), calls[0].max(calls[1]));
        let total_wait = |n: usize| {
            let mut bucket = TokenBucket::new(capacity, refill);
            let mut t = 0.0;
            let mut waited = 0.0;
            for _ in 0..n {
                let w = bucket.acquire(t);
                prop_assert!(w >= 0.0, "negative wait {w}");
                waited += w;
                t += w;
            }
            Ok(waited)
        };
        prop_assert!(total_wait(lo)? <= total_wait(hi)? + 1e-9);
    }

    #[test]
    fn session_telemetry_counters_match_call_log(followers in 1usize..400) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("prop_tel", followers, ClassMix::all_genuine())
            .build(&mut platform, 4)
            .unwrap();
        let tel = fakeaudit_telemetry::Telemetry::enabled();
        let mut s = ApiSession::with_telemetry(&platform, ApiConfig::default(), tel.clone());
        s.followers_ids(t.target).unwrap();
        let ids: Vec<_> = t.followers_oldest_first.iter().map(|&(id, _)| id).collect();
        s.users_lookup(&ids);
        let snap = tel.snapshot();
        prop_assert_eq!(
            snap.counter("api.calls", &[("endpoint", "followers_ids")]),
            Some(s.log().followers_ids)
        );
        prop_assert_eq!(
            snap.counter("api.calls", &[("endpoint", "users_lookup")]),
            Some(s.log().users_lookup)
        );
        prop_assert_eq!(snap.counter_total("api.calls"), s.log().total());
    }

    #[test]
    fn session_elapsed_grows_with_calls(calls in 1usize..10) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("prop_elapsed", 50, ClassMix::all_genuine())
            .build(&mut platform, 3)
            .unwrap();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let mut last = 0.0;
        for _ in 0..calls {
            s.followers_ids(t.target).unwrap();
            prop_assert!(s.elapsed_secs() > last);
            last = s.elapsed_secs();
        }
    }
}
