//! The golden fault trace: a fixed, RNG-free faulted crawl whose JSONL
//! trace is compared byte-for-byte against a committed fixture — the
//! chaos-path counterpart of the server's `tests/golden/trace.jsonl`.
//!
//! Everything in the scenario is deliberately independent of the `rand`
//! crate's generator: accounts are registered by hand (no scenario
//! builder), `latency_jitter` is zero so call latencies are the exact
//! configured base, and fault draws plus retry-backoff jitter come from
//! the plan's self-contained `DetStream`. The fixture therefore pins the
//! fault schedule, the retry spans, and the JSONL encoding across
//! toolchains, and any drift in span identity or fault-draw consumption
//! shows up as a byte diff.

use fakeaudit_telemetry::sink::parse_jsonl;
use fakeaudit_telemetry::Telemetry;
use fakeaudit_twitter_api::{ApiConfig, ApiSession, FaultPlan, RetryPolicy};
use fakeaudit_twittersim::timeline::{TimelineModel, TimelineParams};
use fakeaudit_twittersim::{AccountId, Platform, Profile, SimTime};

const FIXTURE: &str = include_str!("golden/faults.jsonl");
const FOLLOWERS: usize = 30;

/// A deterministic latency model: zero jitter, so every call costs
/// exactly the base latency and the trace times are pure arithmetic.
fn flat_config() -> ApiConfig {
    ApiConfig {
        token_pool: 1,
        parallelism: 1,
        base_latency: 1.5,
        latency_jitter: 0.0,
        seed: 0,
    }
}

/// Registers a target with [`FOLLOWERS`] hand-built followers — no
/// randomised scenario builder, so the platform (and the session's
/// trace-time base) is identical on every toolchain.
fn flat_platform() -> (Platform, AccountId, Vec<AccountId>) {
    let mut platform = Platform::new();
    let empty = || TimelineModel::new(TimelineParams::default(), 0);
    let target = platform
        .register(Profile::new("golden_target", SimTime::EPOCH), empty())
        .unwrap();
    let followers: Vec<AccountId> = (0..FOLLOWERS)
        .map(|i| {
            let id = platform
                .register(
                    Profile::new(format!("golden_f{i}"), SimTime::EPOCH),
                    empty(),
                )
                .unwrap();
            platform.follow(id, target).unwrap();
            id
        })
        .collect();
    (platform, target, followers)
}

/// Fault/retry counters harvested before the session drops.
struct RunStats {
    injected: u64,
    retries: u64,
    backoff_secs: f64,
}

/// Runs the fixed faulted crawl and returns its counters and JSONL trace.
fn golden_run(plan: FaultPlan, retry: RetryPolicy) -> (RunStats, String) {
    let (platform, target, followers) = flat_platform();
    let telemetry = Telemetry::enabled();
    let mut s = ApiSession::with_telemetry(&platform, flat_config(), telemetry.clone())
        .with_faults(plan, retry);
    for _ in 0..4 {
        // Exhausted calls are part of the schedule being pinned.
        let _ = s.followers_ids(target);
        let _ = s.users_lookup(&followers);
    }
    let stats = RunStats {
        injected: s.fault_log().injected,
        retries: s.fault_log().retries,
        backoff_secs: s.fault_log().backoff_secs,
    };
    let mut jsonl = Vec::new();
    telemetry.write_jsonl(&mut jsonl).expect("in-memory write");
    (stats, String::from_utf8(jsonl).expect("utf-8 trace"))
}

fn chaos_plan() -> FaultPlan {
    FaultPlan::bursty(42, 0.25, 4.0)
}

#[test]
fn scenario_exercises_faults_and_retries() {
    let (stats, jsonl) = golden_run(chaos_plan(), RetryPolicy::standard());
    assert!(stats.injected > 0, "the plan must inject faults");
    assert!(stats.retries > 0, "the policy must retry some of them");
    assert!(stats.backoff_secs > 0.0);
    assert!(jsonl.contains("\"name\":\"api.fault\""));
    assert!(jsonl.contains("\"name\":\"api.retry\""));
    assert!(jsonl.contains("\"name\":\"api.call\""));
}

#[test]
fn trace_matches_committed_fixture() {
    let (_, jsonl) = golden_run(chaos_plan(), RetryPolicy::standard());
    assert_eq!(
        jsonl, FIXTURE,
        "golden fault trace drifted from crates/twitter-api/tests/golden/faults.jsonl; \
         if the change is intentional, regenerate the fixture from this \
         test's `golden_run` output"
    );
}

#[test]
fn fixture_round_trips_through_the_parser() {
    let (_, jsonl) = golden_run(chaos_plan(), RetryPolicy::standard());
    let reparsed = parse_jsonl(FIXTURE).expect("fixture parses");
    let mut rewritten = Vec::new();
    fakeaudit_telemetry::sink::write_jsonl(&reparsed, &mut rewritten).expect("in-memory write");
    assert_eq!(String::from_utf8(rewritten).unwrap(), jsonl);
}

#[test]
fn none_plan_is_trace_identical_to_an_unarmed_session() {
    // The identity invariant: arming with FaultPlan::none() draws
    // nothing and leaves the trace byte-identical to a session that
    // never heard of faults.
    let (stats, armed) = golden_run(FaultPlan::none(), RetryPolicy::none());
    assert_eq!(stats.injected, 0);
    assert_eq!(stats.retries, 0);
    let (platform, target, followers) = flat_platform();
    let telemetry = Telemetry::enabled();
    let mut s = ApiSession::with_telemetry(&platform, flat_config(), telemetry.clone());
    for _ in 0..4 {
        s.followers_ids(target).expect("fault-free crawl");
        s.users_lookup(&followers).expect("fault-free lookup");
    }
    let mut jsonl = Vec::new();
    telemetry.write_jsonl(&mut jsonl).expect("in-memory write");
    assert_eq!(String::from_utf8(jsonl).unwrap(), armed);
    assert!(!armed.contains("api.fault"));
    assert!(!armed.contains("api.retry"));
}
