//! The Fake Project classifier engine — FC (§III).
//!
//! By contrast to the commercial tools, FC (i) fetches the **whole**
//! follower list, (ii) samples **uniformly at random** with the
//! statistically sound size of 9 604 (95 % confidence, ±1 % interval),
//! (iii) applies a *published* methodology: the 90-day inactivity rule
//! first, then a classifier trained on a gold standard using the feature
//! families the spam-detection literature validated.

use crate::data::{fetch_profiles, fetch_profiles_with_indexed_timelines, AccountData};
use crate::engine::{AuditError, FollowerAuditor, ToolId};
use crate::features::{dataset_from_gold, FeatureSet};
use crate::verdict::{AuditOutcome, Verdict, VerdictCounts};
use fakeaudit_ml::forest::ForestParams;
use fakeaudit_ml::{Classifier, RandomForest};
use fakeaudit_population::archetype::{presents_inactive, recommended_audit_time};
use fakeaudit_population::goldstandard::GoldStandard;
use fakeaudit_stats::rng::rng_for;
use fakeaudit_stats::sampling::{Sampler, UniformSampler};
use fakeaudit_stats::{required_sample_size, ConfidenceLevel};
use fakeaudit_twitter_api::ApiSession;
use fakeaudit_twittersim::AccountId;
use serde::{Deserialize, Serialize};

/// The FC sample size: 9 604 accounts — 95 % confidence, ±1 % interval
/// under the worst case `p = 0.5` (§IV-C).
pub fn fc_sample_size() -> u64 {
    required_sample_size(ConfidenceLevel::P95, 0.01, 0.5)
}

/// The Fake Project engine: uniform sampling + inactivity rule + trained
/// classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FakeProjectEngine {
    model: RandomForest,
    feature_set: FeatureSet,
    sample_size: u64,
}

impl FakeProjectEngine {
    /// Creates an engine from a trained model. The model must have been
    /// fitted on the same [`FeatureSet`].
    pub fn new(model: RandomForest, feature_set: FeatureSet) -> Self {
        Self {
            model,
            feature_set,
            sample_size: fc_sample_size(),
        }
    }

    /// Creates an engine with the default model: a random forest trained on
    /// a synthetic gold standard with profile-only ("class A" crawling
    /// cost) features — the optimised configuration [12] converged on.
    pub fn with_default_model(seed: u64) -> Self {
        let gold = GoldStandard::generate(seed, 200, recommended_audit_time());
        let model = train_forest(
            &gold,
            FeatureSet::ProfileOnly,
            ForestParams::default(),
            seed,
        );
        Self::new(model, FeatureSet::ProfileOnly)
    }

    /// Overrides the sample size (tests and ablations).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_sample_size(mut self, n: u64) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// The configured sample size.
    pub fn sample_size(&self) -> u64 {
        self.sample_size
    }

    /// The feature set the model consumes.
    pub fn feature_set(&self) -> FeatureSet {
        self.feature_set
    }

    /// Classifies one account: the published inactivity rule first (never
    /// tweeted, or last tweet older than 90 days), then the classifier.
    pub fn classify(&self, data: &AccountData, now: fakeaudit_twittersim::SimTime) -> Verdict {
        if presents_inactive(&data.profile, now) {
            Verdict::Inactive
        } else if self.model.predict(&self.feature_set.extract(data, now)) == 1 {
            Verdict::Fake
        } else {
            Verdict::Genuine
        }
    }
}

impl FollowerAuditor for FakeProjectEngine {
    fn tool(&self) -> ToolId {
        ToolId::FakeClassifier
    }

    fn audit(
        &self,
        session: &mut ApiSession<'_>,
        target: AccountId,
        seed: u64,
    ) -> Result<AuditOutcome, AuditError> {
        let now = session.platform().now();
        // (i) the WHOLE follower list…
        let all = session.followers_ids(target)?;
        if all.is_empty() {
            return Err(AuditError::NoFollowers(target));
        }
        // (ii) …sampled uniformly at random…
        let mut rng = rng_for(seed, "fc-sample");
        let sample = UniformSampler::new().draw(&mut rng, &all, self.sample_size as usize);
        // (iii) …hydrated and classified with the published rules + model.
        let data: Vec<AccountData> = match self.feature_set {
            FeatureSet::ProfileOnly => fetch_profiles(session, &sample)?,
            FeatureSet::WithTimeline => {
                fetch_profiles_with_indexed_timelines(session, &sample, 200)?
            }
        };
        let assessed: Vec<(AccountId, Verdict)> =
            data.iter().map(|d| (d.id, self.classify(d, now))).collect();
        let counts: VerdictCounts = assessed.iter().map(|&(_, v)| v).collect();
        Ok(AuditOutcome {
            tool_name: self.tool().name().to_string(),
            target,
            assessed,
            counts,
            audited_at: now,
            api_elapsed_secs: session.elapsed_secs(),
            api_calls: session.log().total(),
        })
    }
}

/// Trains a random forest on a gold standard with the given feature set.
pub fn train_forest(
    gold: &GoldStandard,
    feature_set: FeatureSet,
    params: ForestParams,
    seed: u64,
) -> RandomForest {
    let data = dataset_from_gold(gold, feature_set);
    RandomForest::fit(&data, params, seed).expect("gold standard is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_ml::ConfusionMatrix;
    use fakeaudit_population::{ClassMix, TargetScenario, TrueClass};
    use fakeaudit_twitter_api::ApiConfig;
    use fakeaudit_twittersim::Platform;

    #[test]
    fn sample_size_is_9604() {
        assert_eq!(fc_sample_size(), 9_604);
        assert_eq!(
            FakeProjectEngine::with_default_model(1).sample_size(),
            9_604
        );
    }

    #[test]
    fn model_separates_gold_standard() {
        let gold = GoldStandard::generate(11, 300, recommended_audit_time());
        let train_gold = GoldStandard::generate(12, 300, recommended_audit_time());
        let model = train_forest(
            &train_gold,
            FeatureSet::ProfileOnly,
            ForestParams::default(),
            5,
        );
        let test = dataset_from_gold(&gold, FeatureSet::ProfileOnly);
        let cm = ConfusionMatrix::evaluate(&model, &test);
        assert!(
            cm.accuracy() > 0.9,
            "held-out accuracy {:.3} too low",
            cm.accuracy()
        );
    }

    #[test]
    fn fc_audit_census_on_small_account() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("small", 900, ClassMix::new(0.25, 0.05, 0.70).unwrap())
            .build(&mut platform, 81)
            .unwrap();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let fc = FakeProjectEngine::with_default_model(1);
        let out = fc.audit(&mut s, t.target, 2).unwrap();
        // Fewer followers than 9604: census.
        assert_eq!(out.sample_size(), 900);
    }

    #[test]
    fn fc_tracks_ground_truth_closely() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("mid", 6_000, ClassMix::new(0.40, 0.15, 0.45).unwrap())
            .build(&mut platform, 82)
            .unwrap();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let fc = FakeProjectEngine::with_default_model(1).with_sample_size(3_000);
        let out = fc.audit(&mut s, t.target, 3).unwrap();
        // FC's inactive bucket absorbs dormant fakes, so compare against
        // *presented* truth: inactive% ≥ true inactive share; fake+genuine
        // splits the rest.
        assert!(
            out.inactive_pct() >= 38.0,
            "inactive {:.1}%",
            out.inactive_pct()
        );
        assert!(
            (out.genuine_pct() - 45.0).abs() < 8.0,
            "genuine {:.1}% vs truth 45%",
            out.genuine_pct()
        );
    }

    #[test]
    fn fc_is_unbiased_under_recency_bursts() {
        // The decisive experiment: a purchased burst at the head. Prefix
        // tools explode; FC's uniform sample stays near the truth.
        let mut platform = Platform::new();
        let t = TargetScenario::new("burst", 10_000, ClassMix::new(0.20, 0.10, 0.70).unwrap())
            .fake_recency_bias(40.0)
            .build(&mut platform, 83)
            .unwrap();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let fc = FakeProjectEngine::with_default_model(1).with_sample_size(4_000);
        let out = fc.audit(&mut s, t.target, 4).unwrap();
        // Fake + inactive-presenting fakes bound: fake% must stay near 10%,
        // not the ~100% a head sample would see. Dormant fakes land in the
        // inactive bucket, so check fake% ≤ truth and genuine% ≈ 70%.
        assert!(out.fake_pct() < 15.0, "fake {:.1}%", out.fake_pct());
        assert!(
            (out.genuine_pct() - 70.0).abs() < 8.0,
            "genuine {:.1}%",
            out.genuine_pct()
        );
    }

    #[test]
    fn classify_applies_inactivity_rule_first() {
        let fc = FakeProjectEngine::with_default_model(1);
        let gold = GoldStandard::generate(99, 50, recommended_audit_time());
        let now = gold.observed_at();
        for acc in gold.accounts() {
            let data = AccountData {
                id: AccountId(0),
                profile: acc.profile.clone(),
                recent_tweets: None,
            };
            let v = fc.classify(&data, now);
            if acc.profile.never_tweeted() {
                assert_eq!(v, Verdict::Inactive, "never-tweeted must be inactive");
            }
            if acc.class == TrueClass::Inactive {
                assert_eq!(v, Verdict::Inactive);
            }
        }
    }

    #[test]
    fn fc_audit_is_deterministic() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("det", 2_000, ClassMix::new(0.3, 0.2, 0.5).unwrap())
            .build(&mut platform, 84)
            .unwrap();
        let fc = FakeProjectEngine::with_default_model(7).with_sample_size(500);
        let run = || {
            let mut s = ApiSession::new(&platform, ApiConfig::default());
            fc.audit(&mut s, t.target, 5).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "sample size must be positive")]
    fn zero_sample_size_panics() {
        FakeProjectEngine::with_default_model(1).with_sample_size(0);
    }
}
