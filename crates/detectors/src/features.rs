//! Feature extraction for the classifier-based engines.
//!
//! [12] (the Fake Project technical report the paper summarises in §III)
//! organises candidate features by *crawling cost*: profile fields arrive
//! free with `users/lookup` (class A), timelines cost one
//! `statuses/user_timeline` call per account (class B). The optimised FC
//! engine prefers cheap features with high detection power; we mirror the
//! two cost classes as [`FeatureSet::ProfileOnly`] and
//! [`FeatureSet::WithTimeline`].

use crate::data::AccountData;
use fakeaudit_ml::Dataset;
use fakeaudit_population::goldstandard::GoldStandard;
use fakeaudit_population::TrueClass;
use fakeaudit_twittersim::clock::{SimTime, SECS_PER_DAY};
use fakeaudit_twittersim::tweet::TimelineStats;
use fakeaudit_twittersim::{AccountId, Profile};
use serde::{Deserialize, Serialize};

/// Which observation classes the feature vector draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureSet {
    /// Class-A features only (one `users/lookup` per 100 accounts).
    ProfileOnly,
    /// Class-A plus class-B timeline features (one `user_timeline` call per
    /// account — 100× the crawling cost).
    WithTimeline,
}

/// Names of the profile-only features, in extraction order.
pub const PROFILE_FEATURES: &[&str] = &[
    "followers_count",
    "friends_count",
    "following_follower_ratio",
    "statuses_count",
    "account_age_days",
    "days_since_last_tweet",
    "tweet_rate_per_day",
    "default_profile_image",
    "has_bio",
    "has_location",
];

/// Names of the additional timeline features.
pub const TIMELINE_FEATURES: &[&str] = &[
    "retweet_fraction",
    "link_fraction",
    "spam_fraction",
    "max_duplicate_run",
    "automated_source_fraction",
];

/// Sentinel used for `days_since_last_tweet` when the account never
/// tweeted: larger than any plausible account age so threshold splits can
/// isolate never-tweeted accounts.
pub const NEVER_TWEETED_DAYS: f64 = 100_000.0;

impl FeatureSet {
    /// Feature names for this set, in extraction order.
    pub fn names(self) -> Vec<String> {
        let mut names: Vec<String> = PROFILE_FEATURES.iter().map(|s| s.to_string()).collect();
        if self == FeatureSet::WithTimeline {
            names.extend(TIMELINE_FEATURES.iter().map(|s| s.to_string()));
        }
        names
    }

    /// Number of features in this set.
    pub fn arity(self) -> usize {
        match self {
            FeatureSet::ProfileOnly => PROFILE_FEATURES.len(),
            FeatureSet::WithTimeline => PROFILE_FEATURES.len() + TIMELINE_FEATURES.len(),
        }
    }

    /// Extracts the feature vector for `data` as observed at `now`.
    ///
    /// For [`FeatureSet::WithTimeline`] without fetched tweets, timeline
    /// features are zero-filled (the account may simply never have
    /// tweeted).
    pub fn extract(self, data: &AccountData, now: SimTime) -> Vec<f64> {
        let mut v = profile_features(&data.profile, now);
        if self == FeatureSet::WithTimeline {
            let stats = data.timeline_stats().unwrap_or_default();
            v.extend(timeline_features(&stats));
        }
        v
    }
}

fn profile_features(p: &Profile, now: SimTime) -> Vec<f64> {
    let age_days = (p.age_at(now).as_secs() as f64 / SECS_PER_DAY as f64).max(1.0 / 24.0);
    let days_since_last = p
        .seconds_since_last_tweet(now)
        .map_or(NEVER_TWEETED_DAYS, |s| s as f64 / SECS_PER_DAY as f64);
    vec![
        p.followers_count as f64,
        p.friends_count as f64,
        p.following_follower_ratio(),
        p.statuses_count as f64,
        age_days,
        days_since_last,
        p.statuses_count as f64 / age_days,
        f64::from(u8::from(p.default_profile_image)),
        f64::from(u8::from(p.has_bio)),
        f64::from(u8::from(p.has_location)),
    ]
}

fn timeline_features(s: &TimelineStats) -> Vec<f64> {
    vec![
        s.retweet_frac,
        s.link_frac,
        s.spam_frac,
        s.max_duplicates as f64,
        s.automated_frac,
    ]
}

/// The binary classification problem FC solves after the inactivity rule:
/// fake (label 1) versus not-fake (label 0). Class names, in label order.
pub const FC_CLASS_NAMES: [&str; 2] = ["not_fake", "fake"];

/// The FC training label for a hidden class.
pub fn fc_label(class: TrueClass) -> usize {
    usize::from(class == TrueClass::Fake)
}

/// Builds an ML dataset from a gold standard.
///
/// Timeline features (when requested) are computed from each account's
/// newest 200 tweets — what one `user_timeline` page returns.
///
/// # Panics
///
/// Panics if the gold standard is empty.
pub fn dataset_from_gold(gold: &GoldStandard, set: FeatureSet) -> Dataset {
    assert!(!gold.is_empty(), "gold standard must be non-empty");
    let now = gold.observed_at();
    let mut rows = Vec::with_capacity(gold.len());
    let mut labels = Vec::with_capacity(gold.len());
    for (i, acc) in gold.accounts().iter().enumerate() {
        let tweets = match set {
            FeatureSet::ProfileOnly => None,
            // The gold accounts are not registered on a platform; synthesise
            // their timelines directly from the model with a stable id.
            FeatureSet::WithTimeline => Some(acc.timeline.recent_tweets(AccountId(i as u64), 200)),
        };
        let data = AccountData {
            id: AccountId(i as u64),
            profile: acc.profile.clone(),
            recent_tweets: tweets,
        };
        rows.push(set.extract(&data, now));
        labels.push(fc_label(acc.class));
    }
    Dataset::new(
        set.names(),
        FC_CLASS_NAMES.iter().map(|s| s.to_string()).collect(),
        rows,
        labels,
    )
    .expect("extraction yields a valid dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_population::archetype::recommended_audit_time;

    fn gold() -> GoldStandard {
        GoldStandard::generate(3, 30, recommended_audit_time())
    }

    #[test]
    fn arities_match_names() {
        assert_eq!(
            FeatureSet::ProfileOnly.arity(),
            FeatureSet::ProfileOnly.names().len()
        );
        assert_eq!(
            FeatureSet::WithTimeline.arity(),
            FeatureSet::WithTimeline.names().len()
        );
        assert_eq!(FeatureSet::WithTimeline.arity(), 15);
    }

    #[test]
    fn profile_dataset_shape() {
        let d = dataset_from_gold(&gold(), FeatureSet::ProfileOnly);
        assert_eq!(d.len(), 90);
        assert_eq!(d.arity(), 10);
        assert_eq!(d.num_classes(), 2);
        // One third of the gold standard is fake.
        assert_eq!(d.class_counts()[1], 30);
    }

    #[test]
    fn timeline_dataset_shape() {
        let d = dataset_from_gold(&gold(), FeatureSet::WithTimeline);
        assert_eq!(d.arity(), 15);
    }

    #[test]
    fn never_tweeted_sentinel() {
        let g = gold();
        let now = g.observed_at();
        let silent = g
            .accounts()
            .iter()
            .find(|a| a.profile.statuses_count == 0)
            .expect("some gold account never tweeted");
        let data = AccountData {
            id: AccountId(0),
            profile: silent.profile.clone(),
            recent_tweets: None,
        };
        let v = FeatureSet::ProfileOnly.extract(&data, now);
        let idx = PROFILE_FEATURES
            .iter()
            .position(|&n| n == "days_since_last_tweet")
            .unwrap();
        assert_eq!(v[idx], NEVER_TWEETED_DAYS);
    }

    #[test]
    fn features_are_finite() {
        let g = gold();
        let d = dataset_from_gold(&g, FeatureSet::WithTimeline);
        for row in d.rows() {
            assert!(row.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn fc_labels() {
        assert_eq!(fc_label(TrueClass::Fake), 1);
        assert_eq!(fc_label(TrueClass::Genuine), 0);
        assert_eq!(fc_label(TrueClass::Inactive), 0);
    }

    #[test]
    fn fakes_have_higher_ratio_feature() {
        let d = dataset_from_gold(&gold(), FeatureSet::ProfileOnly);
        let ratio_idx = 2;
        let mean = |label: usize| {
            let rows: Vec<f64> = d
                .rows()
                .iter()
                .zip(d.labels())
                .filter(|&(_, &l)| l == label)
                .map(|(r, _)| r[ratio_idx])
                .collect();
            rows.iter().sum::<f64>() / rows.len() as f64
        };
        assert!(mean(1) > mean(0) * 5.0, "fake ratio should dominate");
    }

    #[test]
    fn missing_timeline_zero_fills() {
        let g = gold();
        let acc = &g.accounts()[0];
        let data = AccountData {
            id: AccountId(0),
            profile: acc.profile.clone(),
            recent_tweets: None,
        };
        let v = FeatureSet::WithTimeline.extract(&data, g.observed_at());
        assert_eq!(v.len(), 15);
        assert_eq!(&v[10..], &[0.0, 0.0, 0.0, 0.0, 0.0]);
    }
}
