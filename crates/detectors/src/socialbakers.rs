//! The Socialbakers "Fake Follower Check" (§II-B).
//!
//! The published criteria (verbatim from the paper):
//!
//! 1. following/follower ratio 50:1 or more;
//! 2. more than 30 % of tweets use spam phrases;
//! 3. the same tweets repeated more than three times;
//! 4. more than 90 % of tweets are retweets;
//! 5. more than 90 % of tweets are links;
//! 6. the account has never tweeted;
//! 7. older than two months with a default profile image;
//! 8. neither bio nor location and following more than 100 accounts.
//!
//! Each criterion carries "a given number of points valuation"; accounts
//! whose points exceed "a certain number of points" are *suspicious*.
//! Suspicious accounts are then tested for inactivity (fewer than 3 tweets
//! or last tweet older than 90 days) — note that per the published flow
//! **only suspicious accounts can be called inactive**, which is exactly
//! why SB's inactive column in Table III sits far below FC's. Accounts
//! neither suspicious nor inactive are genuine. The tool considers "up to
//! 2000 followers per account".

use crate::data::{fetch_profiles_with_indexed_timelines, AccountData};
use crate::engine::{AuditError, FollowerAuditor, PrefixFrame, ToolId};
use crate::verdict::{AuditOutcome, Verdict, VerdictCounts};
use fakeaudit_twitter_api::ApiSession;
use fakeaudit_twittersim::clock::{SimTime, SECS_PER_DAY};
use fakeaudit_twittersim::AccountId;
use serde::{Deserialize, Serialize};

/// Point weights for the eight criteria (undisclosed by Socialbakers; these
/// weights order the criteria by specificity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SbWeights {
    /// Criterion 1: ratio ≥ 50:1.
    pub ratio: u32,
    /// Criterion 2: spam phrases in > 30 % of tweets.
    pub spam_phrases: u32,
    /// Criterion 3: same tweet repeated > 3 times.
    pub duplicates: u32,
    /// Criterion 4: > 90 % retweets.
    pub retweets: u32,
    /// Criterion 5: > 90 % links.
    pub links: u32,
    /// Criterion 6: never tweeted.
    pub never_tweeted: u32,
    /// Criterion 7: > 2 months old with default image.
    pub default_image: u32,
    /// Criterion 8: empty bio and location, following > 100.
    pub empty_profile: u32,
    /// Points at or above which an account is suspicious.
    pub suspicious_threshold: u32,
}

impl Default for SbWeights {
    fn default() -> Self {
        Self {
            ratio: 3,
            spam_phrases: 2,
            duplicates: 2,
            retweets: 1,
            links: 1,
            never_tweeted: 2,
            default_image: 1,
            empty_profile: 1,
            suspicious_threshold: 3,
        }
    }
}

/// The Socialbakers Fake Follower Check engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Socialbakers {
    frame: PrefixFrame,
    weights: SbWeights,
}

/// Two months in seconds (criterion 7).
const TWO_MONTHS_SECS: u64 = 60 * SECS_PER_DAY as u64;
/// Ninety days in seconds (inactivity rule).
const NINETY_DAYS_SECS: u64 = 90 * SECS_PER_DAY as u64;

impl Socialbakers {
    /// The documented production configuration: up to 2 000 (newest)
    /// followers per account, all assessed.
    pub fn new() -> Self {
        Self {
            frame: PrefixFrame {
                window: 2_000,
                assess: 2_000,
            },
            weights: SbWeights::default(),
        }
    }

    /// Overrides the point weights.
    pub fn with_weights(mut self, weights: SbWeights) -> Self {
        self.weights = weights;
        self
    }

    /// The sampling frame in use.
    pub fn frame(&self) -> PrefixFrame {
        self.frame
    }

    /// Suspicion points for one account (criteria 1–8).
    pub fn suspicion_points(&self, data: &AccountData, now: SimTime) -> u32 {
        let p = &data.profile;
        let w = &self.weights;
        let stats = data.timeline_stats().unwrap_or_default();
        let mut pts = 0;
        if p.following_follower_ratio() >= 50.0 {
            pts += w.ratio;
        }
        if stats.count > 0 && stats.spam_frac > 0.30 {
            pts += w.spam_phrases;
        }
        if stats.max_duplicates > 3 {
            pts += w.duplicates;
        }
        if stats.count > 0 && stats.retweet_frac > 0.90 {
            pts += w.retweets;
        }
        if stats.count > 0 && stats.link_frac > 0.90 {
            pts += w.links;
        }
        if p.never_tweeted() {
            pts += w.never_tweeted;
        }
        if p.age_at(now).as_secs() > TWO_MONTHS_SECS && p.default_profile_image {
            pts += w.default_image;
        }
        if !p.has_bio && !p.has_location && p.friends_count > 100 {
            pts += w.empty_profile;
        }
        pts
    }

    /// The two inactivity rules: fewer than 3 tweets, or last tweet older
    /// than 90 days.
    pub fn is_inactive(&self, data: &AccountData, now: SimTime) -> bool {
        let p = &data.profile;
        p.statuses_count < 3
            || p.seconds_since_last_tweet(now)
                .is_some_and(|s| s > NINETY_DAYS_SECS)
    }

    /// Classifies one account per the published flow: suspicious accounts
    /// are split into inactive/fake; everything else is genuine.
    pub fn classify(&self, data: &AccountData, now: SimTime) -> Verdict {
        if self.suspicion_points(data, now) >= self.weights.suspicious_threshold {
            if self.is_inactive(data, now) {
                Verdict::Inactive
            } else {
                Verdict::Fake
            }
        } else {
            Verdict::Genuine
        }
    }
}

impl Default for Socialbakers {
    fn default() -> Self {
        Self::new()
    }
}

impl FollowerAuditor for Socialbakers {
    fn tool(&self) -> ToolId {
        ToolId::Socialbakers
    }

    fn audit(
        &self,
        session: &mut ApiSession<'_>,
        target: AccountId,
        seed: u64,
    ) -> Result<AuditOutcome, AuditError> {
        let now = session.platform().now();
        let sample = self.frame.draw(session, target, seed)?;
        // Profiles via the API; timelines from Socialbakers' own monitoring
        // index (see data module docs).
        let data = fetch_profiles_with_indexed_timelines(session, &sample, 200)?;
        let assessed: Vec<(AccountId, Verdict)> =
            data.iter().map(|d| (d.id, self.classify(d, now))).collect();
        let counts: VerdictCounts = assessed.iter().map(|&(_, v)| v).collect();
        Ok(AuditOutcome {
            tool_name: self.tool().name().to_string(),
            target,
            assessed,
            counts,
            audited_at: now,
            api_elapsed_secs: session.elapsed_secs(),
            api_calls: session.log().total(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_population::{ClassMix, TargetScenario};
    use fakeaudit_twitter_api::ApiConfig;
    use fakeaudit_twittersim::timeline::{TimelineModel, TimelineParams};
    use fakeaudit_twittersim::{Platform, Profile};

    fn now() -> SimTime {
        SimTime::from_days(3_000)
    }

    fn base_profile() -> Profile {
        let mut p = Profile::new("x", SimTime::from_days(100));
        p.followers_count = 200;
        p.friends_count = 150;
        p.statuses_count = 500;
        p.last_tweet_at = Some(SimTime::from_days(2_999));
        p.default_profile_image = false;
        p.has_bio = true;
        p.has_location = true;
        p
    }

    fn with_timeline(mut profile: Profile, params: TimelineParams) -> AccountData {
        let model = TimelineModel::new(params, 9);
        profile.statuses_count = model.statuses_count();
        profile.last_tweet_at = model.last_tweet_at();
        let tweets = model.recent_tweets(AccountId(7), 200);
        AccountData {
            id: AccountId(7),
            profile,
            recent_tweets: Some(tweets),
        }
    }

    #[test]
    fn healthy_account_is_genuine() {
        let sb = Socialbakers::new();
        let d = with_timeline(
            base_profile(),
            TimelineParams {
                statuses_count: 300,
                first_tweet_at: SimTime::from_days(200),
                last_tweet_at: SimTime::from_days(2_999),
                retweet_frac: 0.2,
                link_frac: 0.2,
                spam_frac: 0.0,
                duplicate_frac: 0.0,
                automated_frac: 0.0,
            },
        );
        assert_eq!(sb.suspicion_points(&d, now()), 0);
        assert_eq!(sb.classify(&d, now()), Verdict::Genuine);
    }

    #[test]
    fn ratio_criterion_fires_at_50() {
        let sb = Socialbakers::new();
        let mut p = base_profile();
        p.friends_count = 5_000;
        p.followers_count = 100;
        let d = AccountData {
            id: AccountId(1),
            profile: p,
            recent_tweets: Some(vec![]),
        };
        assert_eq!(sb.suspicion_points(&d, now()), sb.weights.ratio);
    }

    #[test]
    fn spammy_timeline_is_fake() {
        let sb = Socialbakers::new();
        let mut p = base_profile();
        p.friends_count = 5_200; // ratio 26 — below 50, no ratio points
        let d = with_timeline(
            p,
            TimelineParams {
                statuses_count: 100,
                first_tweet_at: SimTime::from_days(2_900),
                last_tweet_at: SimTime::from_days(2_999),
                retweet_frac: 0.0,
                link_frac: 0.95,
                spam_frac: 0.8,
                duplicate_frac: 0.5,
                automated_frac: 0.8,
            },
        );
        // spam (2) + duplicates (2) + links (1) ≥ 3 → suspicious, active →
        // fake.
        assert!(sb.suspicion_points(&d, now()) >= 3);
        assert_eq!(sb.classify(&d, now()), Verdict::Fake);
    }

    #[test]
    fn never_tweeted_egg_with_empty_profile_is_suspicious_inactive() {
        let sb = Socialbakers::new();
        let mut p = Profile::new("egg", SimTime::from_days(100));
        p.friends_count = 2_000;
        p.followers_count = 2;
        p.default_profile_image = true;
        let d = AccountData {
            id: AccountId(2),
            profile: p,
            recent_tweets: Some(vec![]),
        };
        // ratio (3) + never tweeted (2) + egg (1) + empty profile (1).
        assert_eq!(sb.suspicion_points(&d, now()), 7);
        // Never tweeted → inactive branch of the suspicious flow.
        assert_eq!(sb.classify(&d, now()), Verdict::Inactive);
    }

    #[test]
    fn dormant_but_unsuspicious_account_reads_genuine() {
        // The SB pathology the paper highlights: a stale human account is
        // NOT tested for inactivity because it is not suspicious.
        let sb = Socialbakers::new();
        let mut p = base_profile();
        p.last_tweet_at = Some(SimTime::from_days(2_000)); // 1000 days stale
        let d = AccountData {
            id: AccountId(3),
            profile: p,
            recent_tweets: Some(vec![]),
        };
        assert_eq!(sb.classify(&d, now()), Verdict::Genuine);
    }

    #[test]
    fn suspicious_and_stale_is_inactive() {
        let sb = Socialbakers::new();
        let mut p = base_profile();
        p.friends_count = 20_000;
        p.followers_count = 10; // ratio 2000
        p.last_tweet_at = Some(SimTime::from_days(2_000));
        let d = AccountData {
            id: AccountId(4),
            profile: p,
            recent_tweets: Some(vec![]),
        };
        assert_eq!(sb.classify(&d, now()), Verdict::Inactive);
    }

    #[test]
    fn young_egg_gets_no_default_image_point() {
        let sb = Socialbakers::new();
        let mut p = Profile::new("young", SimTime::from_days(2_980)); // 20 days old
        p.default_profile_image = true;
        p.has_bio = true;
        p.statuses_count = 10;
        p.last_tweet_at = Some(SimTime::from_days(2_999));
        let d = AccountData {
            id: AccountId(5),
            profile: p,
            recent_tweets: Some(vec![]),
        };
        assert_eq!(sb.suspicion_points(&d, now()), 0);
    }

    #[test]
    fn audit_caps_at_2000_and_reports_counts() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("t", 5_000, ClassMix::new(0.3, 0.2, 0.5).unwrap())
            .build(&mut platform, 61)
            .unwrap();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let out = Socialbakers::new().audit(&mut s, t.target, 1).unwrap();
        assert_eq!(out.sample_size(), 2_000);
        assert_eq!(out.counts.total(), 2_000);
        // 1 followers page + 20 lookup pages, no timeline calls (index).
        assert_eq!(out.api_calls, 21);
    }

    #[test]
    fn sb_underreports_inactives_relative_to_truth() {
        // Truth: 40% inactive with stale accounts at the tail; SB's newest
        // window + suspicious-first flow must report far fewer.
        let mut platform = Platform::new();
        let t = TargetScenario::new("stale", 20_000, ClassMix::new(0.4, 0.1, 0.5).unwrap())
            .inactive_staleness_bias(4.0)
            .build(&mut platform, 62)
            .unwrap();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let out = Socialbakers::new().audit(&mut s, t.target, 2).unwrap();
        assert!(
            out.inactive_pct() < 25.0,
            "SB inactive {:.1}% should sit below the 40% truth",
            out.inactive_pct()
        );
    }
}
