//! The StatusPeople "Fakers" app (§II-A).
//!
//! Documented behaviour: fetch a window of the newest followers (700
//! assessed "across a follower base of up to 35K" after the Oct-2012 API
//! change; originally 1K across 100K), score each against "a number of
//! simple spam criteria": "on a very basic level spam accounts tend to have
//! few or no followers and few or no tweets. But in contrast they tend to
//! follow a lot of other accounts"; the founder names the
//! followers-to-friends relationship as the most meaningful feature. The
//! November-2013 "Deep Dive" variant samples the first 1.25 M records and
//! assesses 33 K.

use crate::data::{fetch_profiles, AccountData};
use crate::engine::{AuditError, FollowerAuditor, PrefixFrame, ToolId};
use crate::verdict::{AuditOutcome, Verdict, VerdictCounts};
use fakeaudit_population::archetype::{presents_inactive, INACTIVITY_DAYS};
use fakeaudit_twitter_api::ApiSession;
use fakeaudit_twittersim::clock::{SimTime, SECS_PER_DAY};
use fakeaudit_twittersim::AccountId;
use serde::{Deserialize, Serialize};

/// Scoring thresholds for the "simple spam criteria". The exact values were
/// never disclosed; these encode the published prose (few followers, few
/// tweets, follows a lot, ratio as the leading signal).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpCriteria {
    /// "Few or no followers": at most this many followers scores a point.
    pub few_followers: u64,
    /// "Few or no tweets": at most this many tweets scores a point.
    pub few_tweets: u64,
    /// "Follow a lot of other accounts": at least this many friends scores
    /// a point.
    pub follows_many: u64,
    /// The headline signal: a following/follower ratio at least this large
    /// scores two points.
    pub ratio: f64,
    /// Points at or above which an account is called fake.
    pub fake_threshold: u32,
}

impl Default for SpCriteria {
    fn default() -> Self {
        Self {
            few_followers: 10,
            few_tweets: 5,
            follows_many: 300,
            ratio: 20.0,
            fake_threshold: 3,
        }
    }
}

/// The StatusPeople Fakers engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatusPeople {
    frame: PrefixFrame,
    criteria: SpCriteria,
}

impl StatusPeople {
    /// The post-October-2012 production configuration: 700 records assessed
    /// across the newest 35 K followers.
    pub fn new() -> Self {
        Self {
            frame: PrefixFrame {
                window: 35_000,
                assess: 700,
            },
            criteria: SpCriteria::default(),
        }
    }

    /// The original July-2012 configuration: 1 000 records across 100 K.
    pub fn original_2012() -> Self {
        Self {
            frame: PrefixFrame {
                window: 100_000,
                assess: 1_000,
            },
            criteria: SpCriteria::default(),
        }
    }

    /// The November-2013 "Deep Dive": 33 K records across the first 1.25 M.
    pub fn deep_dive() -> Self {
        Self {
            frame: PrefixFrame {
                window: 1_250_000,
                assess: 33_000,
            },
            criteria: SpCriteria::default(),
        }
    }

    /// Overrides the scoring thresholds.
    pub fn with_criteria(mut self, criteria: SpCriteria) -> Self {
        self.criteria = criteria;
        self
    }

    /// Overrides the sampling frame (scale-substituted windows, ablations).
    ///
    /// # Panics
    ///
    /// Panics if the frame is degenerate (zero window or assessment).
    pub fn with_frame(mut self, frame: PrefixFrame) -> Self {
        assert!(frame.window > 0 && frame.assess > 0, "degenerate frame");
        self.frame = frame;
        self
    }

    /// The sampling frame in use.
    pub fn frame(&self) -> PrefixFrame {
        self.frame
    }

    /// Spam-criteria points for one account (0–5).
    pub fn spam_points(&self, data: &AccountData) -> u32 {
        let p = &data.profile;
        let c = &self.criteria;
        let mut points = 0;
        if p.followers_count <= c.few_followers {
            points += 1;
        }
        if p.statuses_count <= c.few_tweets {
            points += 1;
        }
        if p.friends_count >= c.follows_many {
            points += 1;
        }
        if p.following_follower_ratio() >= c.ratio {
            points += 2;
        }
        points
    }

    /// Classifies one account at observation time `now`.
    ///
    /// Fake when the spam points reach the threshold; otherwise inactive
    /// when the account is not "engaging with the platform" (no tweet in
    /// [`INACTIVITY_DAYS`]); otherwise good.
    pub fn classify(&self, data: &AccountData, now: SimTime) -> Verdict {
        if self.spam_points(data) >= self.criteria.fake_threshold {
            Verdict::Fake
        } else if presents_inactive(&data.profile, now) {
            Verdict::Inactive
        } else {
            Verdict::Genuine
        }
    }
}

impl Default for StatusPeople {
    fn default() -> Self {
        Self::new()
    }
}

impl FollowerAuditor for StatusPeople {
    fn tool(&self) -> ToolId {
        ToolId::StatusPeople
    }

    fn audit(
        &self,
        session: &mut ApiSession<'_>,
        target: AccountId,
        seed: u64,
    ) -> Result<AuditOutcome, AuditError> {
        let now = session.platform().now();
        let sample = self.frame.draw(session, target, seed)?;
        let data = fetch_profiles(session, &sample)?;
        let assessed: Vec<(AccountId, Verdict)> =
            data.iter().map(|d| (d.id, self.classify(d, now))).collect();
        let counts: VerdictCounts = assessed.iter().map(|&(_, v)| v).collect();
        Ok(AuditOutcome {
            tool_name: self.tool().name().to_string(),
            target,
            assessed,
            counts,
            audited_at: now,
            api_elapsed_secs: session.elapsed_secs(),
            api_calls: session.log().total(),
        })
    }
}

/// Days after which StatusPeople considers an account no longer "engaging
/// with the platform" — we reuse the shared 90-day notion.
pub const SP_INACTIVITY_DAYS: i64 = INACTIVITY_DAYS;

/// Convenience: seconds in [`SP_INACTIVITY_DAYS`].
pub const SP_INACTIVITY_SECS: i64 = SP_INACTIVITY_DAYS * SECS_PER_DAY;

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_population::{ClassMix, TargetScenario, TrueClass};
    use fakeaudit_twitter_api::ApiConfig;
    use fakeaudit_twittersim::{Platform, Profile};

    fn data(followers: u64, friends: u64, tweets: u64, last_days_ago: Option<i64>) -> AccountData {
        let mut p = Profile::new("x", SimTime::from_days(100));
        p.followers_count = followers;
        p.friends_count = friends;
        p.statuses_count = tweets;
        p.last_tweet_at = last_days_ago.map(|d| SimTime::from_days(3_000 - d));
        AccountData {
            id: AccountId(1),
            profile: p,
            recent_tweets: None,
        }
    }

    fn now() -> SimTime {
        SimTime::from_days(3_000)
    }

    #[test]
    fn obvious_fake_scores_high() {
        let sp = StatusPeople::new();
        // 2 followers, 2000 friends, no tweets: all criteria fire.
        let d = data(2, 2_000, 0, None);
        assert_eq!(sp.spam_points(&d), 5);
        assert_eq!(sp.classify(&d, now()), Verdict::Fake);
    }

    #[test]
    fn active_human_is_good() {
        let sp = StatusPeople::new();
        let d = data(500, 250, 3_000, Some(2));
        assert_eq!(sp.spam_points(&d), 0);
        assert_eq!(sp.classify(&d, now()), Verdict::Genuine);
    }

    #[test]
    fn dormant_human_is_inactive() {
        let sp = StatusPeople::new();
        let d = data(500, 400, 3_000, Some(200));
        assert_eq!(sp.classify(&d, now()), Verdict::Inactive);
    }

    #[test]
    fn never_tweeted_nonspammy_is_inactive() {
        let sp = StatusPeople::new();
        // Plenty of followers, few friends: only the few-tweets point.
        let d = data(5_000, 50, 0, None);
        assert_eq!(sp.classify(&d, now()), Verdict::Inactive);
    }

    #[test]
    fn ratio_alone_is_not_enough() {
        let sp = StatusPeople::new();
        // Ratio 25 (2 points) but active and followed: below threshold.
        let d = data(40, 1_000, 500, Some(1));
        assert_eq!(sp.spam_points(&d), 3); // ratio 2 + follows-many 1
        assert_eq!(sp.classify(&d, now()), Verdict::Fake);
        // Keep the ratio ≥ 20 but friends below follows_many: 2 points only.
        let d = data(14, 290, 500, Some(1));
        assert_eq!(sp.spam_points(&d), 2);
        assert_eq!(sp.classify(&d, now()), Verdict::Genuine);
    }

    #[test]
    fn configurations() {
        assert_eq!(StatusPeople::new().frame().assess, 700);
        assert_eq!(StatusPeople::new().frame().window, 35_000);
        assert_eq!(StatusPeople::original_2012().frame().assess, 1_000);
        assert_eq!(StatusPeople::deep_dive().frame().assess, 33_000);
        assert_eq!(StatusPeople::deep_dive().frame().window, 1_250_000);
    }

    #[test]
    fn audit_assesses_at_most_700() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("t", 3_000, ClassMix::new(0.3, 0.2, 0.5).unwrap())
            .build(&mut platform, 51)
            .unwrap();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let out = StatusPeople::new().audit(&mut s, t.target, 1).unwrap();
        assert_eq!(out.sample_size(), 700);
        assert_eq!(out.counts.total(), 700);
        assert!(out.api_calls >= 8, "1 followers page + 7 lookup pages");
    }

    #[test]
    fn audit_flags_recent_fakes_more_than_population() {
        // Fakes pushed to the head: SP's prefix sample over-reports them.
        let mut platform = Platform::new();
        let t = TargetScenario::new("burst", 20_000, ClassMix::new(0.2, 0.1, 0.7).unwrap())
            .fake_recency_bias(30.0)
            .build(&mut platform, 52)
            .unwrap();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        // Window 35K covers all 20K here; shrink to the newest 1K to model
        // the bias sharply.
        let sp = StatusPeople {
            frame: PrefixFrame {
                window: 1_000,
                assess: 700,
            },
            criteria: SpCriteria::default(),
        };
        let out = sp.audit(&mut s, t.target, 2).unwrap();
        assert!(
            out.fake_pct() > 25.0,
            "head sample should over-report 10% truth, got {:.1}%",
            out.fake_pct()
        );
    }

    #[test]
    fn classify_agrees_with_ground_truth_mostly() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("gt", 2_000, ClassMix::new(0.25, 0.25, 0.5).unwrap())
            .build(&mut platform, 53)
            .unwrap();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let sp = StatusPeople::new();
        let out = sp.audit(&mut s, t.target, 3).unwrap();
        let correct = out
            .assessed
            .iter()
            .filter(|&&(id, v)| {
                let truth = t.ground_truth(id).unwrap();
                matches!(
                    (truth, v),
                    (TrueClass::Fake, Verdict::Fake)
                        | (TrueClass::Genuine, Verdict::Genuine)
                        | (TrueClass::Inactive, Verdict::Inactive)
                        // FC-style conflation we accept as "close": dormant
                        // fakes read as inactive.
                        | (TrueClass::Fake, Verdict::Inactive)
                )
            })
            .count();
        assert!(
            correct as f64 / out.sample_size() as f64 > 0.6,
            "SP should be loosely correlated with truth: {}/{}",
            correct,
            out.sample_size()
        );
    }

    #[test]
    fn deterministic_audit() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("det", 1_500, ClassMix::new(0.3, 0.2, 0.5).unwrap())
            .build(&mut platform, 54)
            .unwrap();
        let run = || {
            let mut s = ApiSession::new(&platform, ApiConfig::default());
            StatusPeople::new().audit(&mut s, t.target, 9).unwrap()
        };
        assert_eq!(run(), run());
    }
}
