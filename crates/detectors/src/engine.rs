//! The common auditor interface and shared sampling plumbing.

use crate::verdict::{AuditOutcome, Verdict};
use fakeaudit_stats::rng::rng_for;
use fakeaudit_stats::sampling::SamplingScheme;
use fakeaudit_telemetry::Telemetry;
use fakeaudit_twitter_api::{ApiError, ApiSession};
use fakeaudit_twittersim::AccountId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one of the four analytics engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ToolId {
    /// The Fake Project classifier (§III).
    FakeClassifier,
    /// Twitteraudit.com.
    Twitteraudit,
    /// StatusPeople "Fakers".
    StatusPeople,
    /// Socialbakers "Fake Follower Check".
    Socialbakers,
}

impl ToolId {
    /// All tools in Table III column order.
    pub const ALL: [ToolId; 4] = [
        ToolId::FakeClassifier,
        ToolId::Twitteraudit,
        ToolId::StatusPeople,
        ToolId::Socialbakers,
    ];

    /// Short name used in tables (FC / TA / SP / SB).
    pub fn abbrev(self) -> &'static str {
        match self {
            ToolId::FakeClassifier => "FC",
            ToolId::Twitteraudit => "TA",
            ToolId::StatusPeople => "SP",
            ToolId::Socialbakers => "SB",
        }
    }

    /// Full display name.
    pub fn name(self) -> &'static str {
        match self {
            ToolId::FakeClassifier => "Fake Classifier",
            ToolId::Twitteraudit => "Twitteraudit",
            ToolId::StatusPeople => "StatusPeople Fakers",
            ToolId::Socialbakers => "Socialbakers Fake Follower Check",
        }
    }
}

impl fmt::Display for ToolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors from an audit run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// The underlying API returned an error.
    Api(ApiError),
    /// The target has no followers to assess.
    NoFollowers(
        /// The audited target.
        AccountId,
    ),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Api(e) => write!(f, "api error: {e}"),
            AuditError::NoFollowers(id) => write!(f, "target {id} has no followers"),
        }
    }
}

impl std::error::Error for AuditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AuditError::Api(e) => Some(e),
            AuditError::NoFollowers(_) => None,
        }
    }
}

impl AuditError {
    /// Structured retryability, delegated to [`ApiError::is_retryable`]:
    /// transient API transport failures are retryable; a target with no
    /// followers is a fact about the target, not a fault.
    pub fn is_retryable(&self) -> bool {
        match self {
            AuditError::Api(e) => e.is_retryable(),
            AuditError::NoFollowers(_) => false,
        }
    }

    /// The server-suggested wait carried by the failure, when any.
    pub fn retry_after_secs(&self) -> Option<u32> {
        match self {
            AuditError::Api(e) => e.retry_after_secs(),
            AuditError::NoFollowers(_) => None,
        }
    }
}

#[doc(hidden)]
impl From<ApiError> for AuditError {
    fn from(e: ApiError) -> Self {
        AuditError::Api(e)
    }
}

/// A fake-follower analytics engine: samples a target's followers through
/// an API session and classifies them.
pub trait FollowerAuditor {
    /// Which tool this is.
    fn tool(&self) -> ToolId;

    /// Runs one audit of `target` through `session`. `seed` drives the
    /// sampling randomness (distinct from the session's latency stream).
    ///
    /// # Errors
    ///
    /// [`AuditError::NoFollowers`] for targets without followers and
    /// [`AuditError::Api`] for propagated API failures.
    fn audit(
        &self,
        session: &mut ApiSession<'_>,
        target: AccountId,
        seed: u64,
    ) -> Result<AuditOutcome, AuditError>;
}

impl<A: FollowerAuditor + ?Sized> FollowerAuditor for &A {
    fn tool(&self) -> ToolId {
        (**self).tool()
    }

    fn audit(
        &self,
        session: &mut ApiSession<'_>,
        target: AccountId,
        seed: u64,
    ) -> Result<AuditOutcome, AuditError> {
        (**self).audit(session, target, seed)
    }
}

/// Wraps any auditor, mirroring each audit into a telemetry handle: a
/// `detector.audit{tool}` span over the audit's API schedule plus
/// `detector.classified{tool,verdict}` counters for every verdict issued.
///
/// When the session was opened with
/// [`ApiSession::with_context`](fakeaudit_twitter_api::ApiSession::with_context),
/// the session's context *is* the `detector.audit` span: this wrapper
/// records it at close (so the `api.call` spans the audit issued are its
/// children), giving one causally linked subtree per audit. On a plain
/// session the span stays flat, exactly as before.
///
/// The [`OnlineService`](https://docs.rs/fakeaudit-analytics) wraps its
/// engine in this automatically; use it directly when driving an engine
/// against a raw [`ApiSession`].
#[derive(Debug, Clone)]
pub struct Instrumented<A> {
    inner: A,
    telemetry: Telemetry,
}

impl<A> Instrumented<A> {
    /// Wraps `inner` so its audits record into `telemetry`.
    pub fn new(inner: A, telemetry: Telemetry) -> Self {
        Self { inner, telemetry }
    }

    /// The wrapped auditor.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Unwraps the auditor.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: FollowerAuditor> FollowerAuditor for Instrumented<A> {
    fn tool(&self) -> ToolId {
        self.inner.tool()
    }

    fn audit(
        &self,
        session: &mut ApiSession<'_>,
        target: AccountId,
        seed: u64,
    ) -> Result<AuditOutcome, AuditError> {
        let t0 = session.trace_time();
        let outcome = self.inner.audit(session, target, seed)?;
        let tool = self.tool().abbrev();
        let ctx = session.trace_context();
        if ctx.span_id().is_some() {
            ctx.record(
                "detector.audit",
                t0,
                session.trace_time(),
                &[("tool", tool)],
            );
        } else {
            self.telemetry.span(
                "detector.audit",
                t0,
                session.trace_time(),
                &[("tool", tool)],
            );
        }
        for (verdict, count) in [
            (Verdict::Inactive, outcome.counts.inactive),
            (Verdict::Fake, outcome.counts.fake),
            (Verdict::Genuine, outcome.counts.genuine),
        ] {
            if count > 0 {
                let verdict = verdict.to_string();
                self.telemetry.counter_add(
                    "detector.classified",
                    &[("tool", tool), ("verdict", verdict.as_str())],
                    count,
                );
            }
        }
        Ok(outcome)
    }
}

/// The sampling frame a commercial tool uses: fetch the newest `window`
/// follower ids, then assess `assess` of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixFrame {
    /// Newest-followers window fetched via `followers/ids`.
    pub window: usize,
    /// Accounts actually assessed (drawn at random within the window).
    pub assess: usize,
}

impl PrefixFrame {
    /// Fetches the frame and draws the assessment sample, newest first.
    ///
    /// # Errors
    ///
    /// [`AuditError::NoFollowers`] / [`AuditError::Api`].
    pub fn draw(
        &self,
        session: &mut ApiSession<'_>,
        target: AccountId,
        seed: u64,
    ) -> Result<Vec<AccountId>, AuditError> {
        let frame = session.followers_ids_prefix(target, self.window)?;
        if frame.is_empty() {
            return Err(AuditError::NoFollowers(target));
        }
        let mut rng = rng_for(seed, "prefix-frame");
        let idx = SamplingScheme::Uniform.draw_indices(&mut rng, frame.len(), self.assess);
        Ok(idx.into_iter().map(|i| frame[i]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_population::{ClassMix, TargetScenario};
    use fakeaudit_twitter_api::ApiConfig;
    use fakeaudit_twittersim::Platform;

    #[test]
    fn tool_ids() {
        assert_eq!(ToolId::ALL.len(), 4);
        assert_eq!(ToolId::StatusPeople.abbrev(), "SP");
        assert_eq!(ToolId::FakeClassifier.to_string(), "Fake Classifier");
    }

    #[test]
    fn audit_error_display_and_source() {
        use std::error::Error;
        let e = AuditError::Api(ApiError::UnknownAccount(AccountId(1)));
        assert!(e.to_string().contains("api error"));
        assert!(e.source().is_some());
        assert!(AuditError::NoFollowers(AccountId(2)).source().is_none());
    }

    #[test]
    fn prefix_frame_draws_within_window() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("t", 1_000, ClassMix::all_genuine())
            .build(&mut platform, 31)
            .unwrap();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let frame = PrefixFrame {
            window: 100,
            assess: 30,
        };
        let sample = frame.draw(&mut s, t.target, 9).unwrap();
        assert_eq!(sample.len(), 30);
        let head: std::collections::HashSet<_> = platform
            .followers_newest_first(t.target)
            .into_iter()
            .take(100)
            .collect();
        assert!(sample.iter().all(|id| head.contains(id)));
    }

    #[test]
    fn prefix_frame_caps_at_population() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("small", 10, ClassMix::all_genuine())
            .build(&mut platform, 32)
            .unwrap();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let frame = PrefixFrame {
            window: 35_000,
            assess: 700,
        };
        let sample = frame.draw(&mut s, t.target, 9).unwrap();
        assert_eq!(sample.len(), 10);
    }

    #[test]
    fn prefix_frame_errors_on_followerless_target() {
        let mut platform = Platform::new();
        let lonely = platform
            .register(
                fakeaudit_twittersim::Profile::new("lonely", fakeaudit_twittersim::SimTime::EPOCH),
                fakeaudit_twittersim::timeline::TimelineModel::empty(),
            )
            .unwrap();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let frame = PrefixFrame {
            window: 100,
            assess: 10,
        };
        assert_eq!(
            frame.draw(&mut s, lonely, 1).unwrap_err(),
            AuditError::NoFollowers(lonely)
        );
    }

    #[test]
    fn instrumented_auditor_records_span_and_verdicts() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("instr", 1_000, ClassMix::new(0.3, 0.2, 0.5).unwrap())
            .build(&mut platform, 34)
            .unwrap();
        let tel = Telemetry::enabled();
        let auditor = Instrumented::new(crate::statuspeople::StatusPeople::new(), tel.clone());
        assert_eq!(auditor.tool(), ToolId::StatusPeople);
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let outcome = auditor.audit(&mut s, t.target, 5).unwrap();
        let snap = tel.snapshot();
        assert_eq!(
            snap.counter_total("detector.classified"),
            outcome.counts.total()
        );
        let spans: Vec<_> = tel
            .events()
            .into_iter()
            .filter(|e| e.name == "detector.audit")
            .collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].attr("tool"), Some("SP"));
        assert!(spans[0].duration_secs() > 0.0);
        assert_eq!(auditor.inner().tool(), ToolId::StatusPeople);
        assert_eq!(auditor.into_inner().tool(), ToolId::StatusPeople);
    }

    #[test]
    fn context_sessions_nest_audit_over_api_calls() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("ctx", 1_000, ClassMix::new(0.3, 0.2, 0.5).unwrap())
            .build(&mut platform, 35)
            .unwrap();
        let tel = Telemetry::enabled();
        let audit_ctx = tel.root_context().child();
        let mut s = ApiSession::with_context(&platform, ApiConfig::default(), audit_ctx.clone());
        let auditor = Instrumented::new(crate::statuspeople::StatusPeople::new(), tel.clone());
        auditor.audit(&mut s, t.target, 5).unwrap();
        let events = tel.events();
        let audit = events.iter().find(|e| e.name == "detector.audit").unwrap();
        assert_eq!(audit.id, audit_ctx.span_id());
        let calls: Vec<_> = events.iter().filter(|e| e.name == "api.call").collect();
        assert!(!calls.is_empty());
        assert!(calls.iter().all(|c| c.parent == audit.id));
        // Children close before the parent but nest within its interval.
        assert!(calls.iter().all(|c| c.t0 >= audit.t0 && c.t1 <= audit.t1));
    }

    #[test]
    fn auditor_references_are_auditors_too() {
        let sp = crate::statuspeople::StatusPeople::new();
        let by_ref: &crate::statuspeople::StatusPeople = &sp;
        assert_eq!(by_ref.tool(), ToolId::StatusPeople);
    }

    #[test]
    fn prefix_frame_is_deterministic_per_seed() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("t", 500, ClassMix::all_genuine())
            .build(&mut platform, 33)
            .unwrap();
        let draw = |seed| {
            let mut s = ApiSession::new(&platform, ApiConfig::default());
            PrefixFrame {
                window: 200,
                assess: 50,
            }
            .draw(&mut s, t.target, seed)
            .unwrap()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }
}
