//! Twitteraudit.com (§II-C).
//!
//! Documented behaviour: "taking a random sample of 5K Twitter followers",
//! compute per follower "a score based on i) the number of its tweets,
//! ii) the date of the last tweet, and iii) the ratio of followers to
//! friends". The audit output includes a "real points" chart "with a
//! maximum scale of 5", from which the paper argues "the three criteria
//! used to evaluate the score can sum up to five". Twitteraudit has no
//! inactive bucket: every follower is fake or real.

use crate::data::{fetch_profiles, AccountData};
use crate::engine::{AuditError, FollowerAuditor, PrefixFrame, ToolId};
use crate::verdict::{AuditOutcome, Verdict, VerdictCounts};
use fakeaudit_stats::summary::Histogram;
use fakeaudit_twitter_api::ApiSession;
use fakeaudit_twittersim::clock::{SimTime, SECS_PER_DAY};
use fakeaudit_twittersim::AccountId;
use serde::{Deserialize, Serialize};

/// The Twitteraudit engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Twitteraudit {
    frame: PrefixFrame,
    /// Real points at or below which a follower is called fake (of 5).
    fake_threshold: u32,
}

impl Twitteraudit {
    /// The documented production configuration: a 5 000-follower sample
    /// (drawn from the head of the follower list — the only part one
    /// `followers/ids` page exposes).
    pub fn new() -> Self {
        // Threshold 1 of 5: only near-empty shells are called fake. The
        // paper's Table III shows TA judging stale-but-tweeting followers
        // "real" (e.g. 35% fake for @RudyZerbi whose base is 83.8%
        // inactive), which a harsher threshold cannot produce.
        Self {
            frame: PrefixFrame {
                window: 5_000,
                assess: 5_000,
            },
            fake_threshold: 1,
        }
    }

    /// Overrides the fake threshold (0–5).
    ///
    /// # Panics
    ///
    /// Panics if `threshold > 5`.
    pub fn with_fake_threshold(mut self, threshold: u32) -> Self {
        assert!(threshold <= 5, "threshold is on the 0-5 scale");
        self.fake_threshold = threshold;
        self
    }

    /// The sampling frame in use.
    pub fn frame(&self) -> PrefixFrame {
        self.frame
    }

    /// "Real points" for one account, 0–5: up to 2 for tweet volume, up to
    /// 2 for last-tweet recency, 1 for a healthy followers/friends ratio.
    pub fn real_points(&self, data: &AccountData, now: SimTime) -> u32 {
        let p = &data.profile;
        let mut pts = 0;
        // i) number of tweets.
        if p.statuses_count >= 10 {
            pts += 1;
        }
        if p.statuses_count >= 100 {
            pts += 1;
        }
        // ii) date of the last tweet.
        if let Some(secs) = p.seconds_since_last_tweet(now) {
            if secs <= 90 * SECS_PER_DAY as u64 {
                pts += 2;
            } else if secs <= 365 * SECS_PER_DAY as u64 {
                pts += 1;
            }
        }
        // iii) followers-to-friends ratio.
        if p.followers_count * 2 >= p.friends_count {
            pts += 1;
        }
        pts
    }

    /// Classifies one account: fake at or below the threshold, real above.
    pub fn classify(&self, data: &AccountData, now: SimTime) -> Verdict {
        if self.real_points(data, now) <= self.fake_threshold {
            Verdict::Fake
        } else {
            Verdict::Genuine
        }
    }

    /// The per-follower quality-score chart the site renders: a histogram
    /// of real points over the assessed sample.
    pub fn quality_histogram(&self, data: &[AccountData], now: SimTime) -> Histogram {
        let mut h = Histogram::new(0.0, 6.0, 6);
        h.extend(data.iter().map(|d| f64::from(self.real_points(d, now))));
        h
    }

    /// Runs an audit and also returns the real-points chart the site shows
    /// alongside the percentage (§II-C describes three charts; this is the
    /// per-follower one the paper reverse-engineered the 0–5 scale from).
    ///
    /// # Errors
    ///
    /// Same as [`FollowerAuditor::audit`].
    pub fn audit_with_chart(
        &self,
        session: &mut ApiSession<'_>,
        target: AccountId,
        seed: u64,
    ) -> Result<(AuditOutcome, Histogram), AuditError> {
        let now = session.platform().now();
        let sample = self.frame.draw(session, target, seed)?;
        let data = fetch_profiles(session, &sample)?;
        let assessed: Vec<(AccountId, Verdict)> =
            data.iter().map(|d| (d.id, self.classify(d, now))).collect();
        let counts: VerdictCounts = assessed.iter().map(|&(_, v)| v).collect();
        let chart = self.quality_histogram(&data, now);
        Ok((
            AuditOutcome {
                tool_name: self.tool().name().to_string(),
                target,
                assessed,
                counts,
                audited_at: now,
                api_elapsed_secs: session.elapsed_secs(),
                api_calls: session.log().total(),
            },
            chart,
        ))
    }
}

impl Default for Twitteraudit {
    fn default() -> Self {
        Self::new()
    }
}

impl FollowerAuditor for Twitteraudit {
    fn tool(&self) -> ToolId {
        ToolId::Twitteraudit
    }

    fn audit(
        &self,
        session: &mut ApiSession<'_>,
        target: AccountId,
        seed: u64,
    ) -> Result<AuditOutcome, AuditError> {
        let now = session.platform().now();
        let sample = self.frame.draw(session, target, seed)?;
        let data = fetch_profiles(session, &sample)?;
        let assessed: Vec<(AccountId, Verdict)> =
            data.iter().map(|d| (d.id, self.classify(d, now))).collect();
        let counts: VerdictCounts = assessed.iter().map(|&(_, v)| v).collect();
        Ok(AuditOutcome {
            tool_name: self.tool().name().to_string(),
            target,
            assessed,
            counts,
            audited_at: now,
            api_elapsed_secs: session.elapsed_secs(),
            api_calls: session.log().total(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_population::{ClassMix, TargetScenario};
    use fakeaudit_twitter_api::ApiConfig;
    use fakeaudit_twittersim::{Platform, Profile};

    fn now() -> SimTime {
        SimTime::from_days(3_000)
    }

    fn data(followers: u64, friends: u64, tweets: u64, last_days_ago: Option<i64>) -> AccountData {
        let mut p = Profile::new("x", SimTime::from_days(100));
        p.followers_count = followers;
        p.friends_count = friends;
        p.statuses_count = tweets;
        p.last_tweet_at = last_days_ago.map(|d| SimTime::from_days(3_000 - d));
        AccountData {
            id: AccountId(1),
            profile: p,
            recent_tweets: None,
        }
    }

    #[test]
    fn active_reciprocal_account_scores_five() {
        let ta = Twitteraudit::new();
        let d = data(1_000, 500, 5_000, Some(1));
        assert_eq!(ta.real_points(&d, now()), 5);
        assert_eq!(ta.classify(&d, now()), Verdict::Genuine);
    }

    #[test]
    fn empty_shell_scores_zero() {
        let ta = Twitteraudit::new();
        let d = data(1, 3_000, 0, None);
        assert_eq!(ta.real_points(&d, now()), 0);
        assert_eq!(ta.classify(&d, now()), Verdict::Fake);
    }

    #[test]
    fn stale_account_loses_recency_points() {
        let ta = Twitteraudit::new();
        let recent = data(100, 100, 500, Some(10));
        let semi = data(100, 100, 500, Some(200));
        let dead = data(100, 100, 500, Some(900));
        assert_eq!(ta.real_points(&recent, now()), 5);
        assert_eq!(ta.real_points(&semi, now()), 4);
        assert_eq!(ta.real_points(&dead, now()), 3);
    }

    #[test]
    fn no_inactive_bucket() {
        // Whatever the account looks like, TA only says fake or genuine.
        let ta = Twitteraudit::new();
        for d in [
            data(1, 3_000, 0, None),
            data(100, 100, 500, Some(900)),
            data(1_000, 10, 10_000, Some(1)),
        ] {
            assert_ne!(ta.classify(&d, now()), Verdict::Inactive);
        }
    }

    #[test]
    fn threshold_is_configurable() {
        let d = data(100, 100, 500, Some(900)); // 3 points
        assert_eq!(Twitteraudit::new().classify(&d, now()), Verdict::Genuine);
        assert_eq!(
            Twitteraudit::new()
                .with_fake_threshold(3)
                .classify(&d, now()),
            Verdict::Fake
        );
    }

    #[test]
    #[should_panic(expected = "threshold is on the 0-5 scale")]
    fn oversized_threshold_panics() {
        Twitteraudit::new().with_fake_threshold(6);
    }

    #[test]
    fn quality_histogram_buckets_points() {
        let ta = Twitteraudit::new();
        let sample = vec![
            data(1, 3_000, 0, None),          // 0 points
            data(1_000, 500, 5_000, Some(1)), // 5 points
        ];
        let h = ta.quality_histogram(&sample, now());
        assert_eq!(h.total(), 2);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[5], 1);
    }

    #[test]
    fn audit_runs_over_one_page_sample() {
        let mut platform = Platform::new();
        let t = TargetScenario::new("t", 8_000, ClassMix::new(0.3, 0.2, 0.5).unwrap())
            .build(&mut platform, 71)
            .unwrap();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let out = Twitteraudit::new().audit(&mut s, t.target, 1).unwrap();
        assert_eq!(out.sample_size(), 5_000);
        // 1 followers page + 50 lookup pages.
        assert_eq!(out.api_calls, 51);
        assert_eq!(out.counts.inactive, 0, "TA has no inactive bucket");
    }

    #[test]
    fn dormant_inactives_read_as_fake() {
        // TA folds dormant accounts into its fake bucket — part of why
        // Table III disagrees so much.
        let mut platform = Platform::new();
        let t = TargetScenario::new("stale", 4_000, ClassMix::new(0.5, 0.0, 0.5).unwrap())
            .inactive_staleness_bias(1.0)
            .build(&mut platform, 72)
            .unwrap();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let out = Twitteraudit::new().audit(&mut s, t.target, 2).unwrap();
        assert!(
            out.fake_pct() > 15.0,
            "stale accounts should inflate TA's fake rate, got {:.1}%",
            out.fake_pct()
        );
    }
}
