//! Verdicts, counts and audit outcomes.

use fakeaudit_twittersim::{AccountId, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A detector's verdict on one follower — the three buckets of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Verdict {
    /// Dormant account.
    Inactive,
    /// Fake / bought / bot account.
    Fake,
    /// Genuine account.
    Genuine,
}

impl Verdict {
    /// All verdicts in Table III column order.
    pub const ALL: [Verdict; 3] = [Verdict::Inactive, Verdict::Fake, Verdict::Genuine];
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Inactive => write!(f, "inactive"),
            Verdict::Fake => write!(f, "fake"),
            Verdict::Genuine => write!(f, "genuine"),
        }
    }
}

/// Verdict tallies over an assessed sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VerdictCounts {
    /// Accounts judged inactive.
    pub inactive: u64,
    /// Accounts judged fake.
    pub fake: u64,
    /// Accounts judged genuine.
    pub genuine: u64,
}

impl VerdictCounts {
    /// Records one verdict.
    pub fn record(&mut self, v: Verdict) {
        match v {
            Verdict::Inactive => self.inactive += 1,
            Verdict::Fake => self.fake += 1,
            Verdict::Genuine => self.genuine += 1,
        }
    }

    /// Total verdicts recorded.
    pub fn total(&self) -> u64 {
        self.inactive + self.fake + self.genuine
    }

    /// Percentage (0–100) of `v`; 0 for an empty tally.
    pub fn percentage(&self, v: Verdict) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let k = match v {
            Verdict::Inactive => self.inactive,
            Verdict::Fake => self.fake,
            Verdict::Genuine => self.genuine,
        };
        k as f64 / total as f64 * 100.0
    }

    /// `(inactive %, fake %, genuine %)` — a Table III row.
    pub fn as_row(&self) -> (f64, f64, f64) {
        (
            self.percentage(Verdict::Inactive),
            self.percentage(Verdict::Fake),
            self.percentage(Verdict::Genuine),
        )
    }
}

impl FromIterator<Verdict> for VerdictCounts {
    fn from_iter<T: IntoIterator<Item = Verdict>>(iter: T) -> Self {
        let mut c = VerdictCounts::default();
        for v in iter {
            c.record(v);
        }
        c
    }
}

impl fmt::Display for VerdictCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (i, k, g) = self.as_row();
        write!(f, "inactive {i:.1}% / fake {k:.1}% / genuine {g:.1}%")
    }
}

/// The result of one tool run over one target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditOutcome {
    /// Human-readable tool name.
    pub tool_name: String,
    /// The audited target.
    pub target: AccountId,
    /// Per-account verdicts over the assessed sample.
    pub assessed: Vec<(AccountId, Verdict)>,
    /// Verdict tallies (consistent with `assessed`).
    pub counts: VerdictCounts,
    /// When the audit ran (platform time).
    pub audited_at: SimTime,
    /// Simulated seconds the audit took (API schedule; service overhead is
    /// added by the analytics layer).
    pub api_elapsed_secs: f64,
    /// Total REST calls issued.
    pub api_calls: u64,
}

impl AuditOutcome {
    /// Percentage of the sample judged fake.
    pub fn fake_pct(&self) -> f64 {
        self.counts.percentage(Verdict::Fake)
    }

    /// Percentage judged inactive.
    pub fn inactive_pct(&self) -> f64 {
        self.counts.percentage(Verdict::Inactive)
    }

    /// Percentage judged genuine.
    pub fn genuine_pct(&self) -> f64 {
        self.counts.percentage(Verdict::Genuine)
    }

    /// Sample size assessed.
    pub fn sample_size(&self) -> usize {
        self.assessed.len()
    }
}

impl fmt::Display for AuditOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {} (n={}, {:.0}s, {} calls)",
            self.tool_name,
            self.target,
            self.counts,
            self.sample_size(),
            self.api_elapsed_secs,
            self.api_calls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_record_and_percentages() {
        let mut c = VerdictCounts::default();
        for _ in 0..25 {
            c.record(Verdict::Inactive);
        }
        for _ in 0..25 {
            c.record(Verdict::Fake);
        }
        for _ in 0..50 {
            c.record(Verdict::Genuine);
        }
        assert_eq!(c.total(), 100);
        assert_eq!(c.percentage(Verdict::Inactive), 25.0);
        assert_eq!(c.as_row(), (25.0, 25.0, 50.0));
    }

    #[test]
    fn empty_counts_percentages_are_zero() {
        let c = VerdictCounts::default();
        assert_eq!(c.percentage(Verdict::Fake), 0.0);
        assert_eq!(c.as_row(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn from_iterator() {
        let c: VerdictCounts = [Verdict::Fake, Verdict::Fake, Verdict::Genuine]
            .into_iter()
            .collect();
        assert_eq!(c.fake, 2);
        assert_eq!(c.genuine, 1);
        assert_eq!(c.inactive, 0);
    }

    #[test]
    fn row_percentages_sum_to_100() {
        let c: VerdictCounts = [Verdict::Fake, Verdict::Genuine, Verdict::Inactive]
            .into_iter()
            .collect();
        let (a, b, g) = c.as_row();
        assert!((a + b + g - 100.0).abs() < 1e-9);
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Fake.to_string(), "fake");
        assert_eq!(Verdict::ALL.len(), 3);
    }

    #[test]
    fn outcome_accessors() {
        let o = AuditOutcome {
            tool_name: "test".into(),
            target: AccountId(1),
            assessed: vec![
                (AccountId(2), Verdict::Fake),
                (AccountId(3), Verdict::Genuine),
            ],
            counts: [Verdict::Fake, Verdict::Genuine].into_iter().collect(),
            audited_at: SimTime::EPOCH,
            api_elapsed_secs: 12.5,
            api_calls: 3,
        };
        assert_eq!(o.sample_size(), 2);
        assert_eq!(o.fake_pct(), 50.0);
        assert_eq!(o.genuine_pct(), 50.0);
        assert_eq!(o.inactive_pct(), 0.0);
        assert!(o.to_string().contains("test"));
    }
}
