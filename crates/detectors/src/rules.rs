//! Literature rule sets (§III, experiment E4).
//!
//! The Fake Project methodology first evaluated "algorithms based on single
//! classification rules proposed by [13], [14], [15]" — Camisani-Calzolari's
//! human/bot scores, Socialbakers' criteria (already implemented in
//! [`crate::socialbakers`]) and StateOfSearch's "7 signals to look out for"
//! — and found that rule sets underperform trained classifiers on fake
//! followers. This module implements the two remaining rule sets so the E4
//! experiment can reproduce that comparison.

use crate::data::AccountData;
use fakeaudit_twittersim::clock::{SimTime, SECS_PER_DAY};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A binary rule-based account classifier: fake or not.
pub trait RuleSet: fmt::Debug {
    /// The rule set's name for reports.
    fn name(&self) -> &'static str;

    /// Whether the rule set calls this account fake at observation time
    /// `now`.
    fn is_fake(&self, data: &AccountData, now: SimTime) -> bool;
}

/// Camisani-Calzolari's human-score rules ([13]): an account earns
/// "humanity" points for profile completeness and engagement; accounts
/// below a threshold are bots. The published analysis scored the 2012 US
/// presidential candidates' followers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CamisaniCalzolari;

impl CamisaniCalzolari {
    /// Humanity points (0–7) from the observable subset of the published
    /// criteria: profile image, bio, location, ≥30 followers, ≥50 tweets,
    /// a balanced follow graph, and recent activity.
    pub fn human_points(&self, data: &AccountData, now: SimTime) -> u32 {
        let p = &data.profile;
        let mut pts = 0;
        if !p.default_profile_image {
            pts += 1;
        }
        if p.has_bio {
            pts += 1;
        }
        if p.has_location {
            pts += 1;
        }
        if p.followers_count >= 30 {
            pts += 1;
        }
        if p.statuses_count >= 50 {
            pts += 1;
        }
        if p.following_follower_ratio() < 10.0 {
            pts += 1;
        }
        if p.seconds_since_last_tweet(now)
            .is_some_and(|s| s <= 180 * SECS_PER_DAY as u64)
        {
            pts += 1;
        }
        pts
    }
}

impl RuleSet for CamisaniCalzolari {
    fn name(&self) -> &'static str {
        "Camisani-Calzolari"
    }

    fn is_fake(&self, data: &AccountData, now: SimTime) -> bool {
        self.human_points(data, now) <= 2
    }
}

/// StateOfSearch's "How to recognize Twitterbots: 7 signals" ([15]):
/// biography absent, skewed follow graph, very young account, bursty tweet
/// rate, repeated tweets, link-heavy tweets, default profile image. An
/// account showing enough signals is a bot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StateOfSearch;

impl StateOfSearch {
    /// Bot signals present (0–8, including the Chu et al. automated-source
    /// signal). Timeline-derived signals only fire when tweets were
    /// fetched.
    pub fn bot_signals(&self, data: &AccountData, now: SimTime) -> u32 {
        let p = &data.profile;
        let mut signals = 0;
        if !p.has_bio {
            signals += 1;
        }
        if p.following_follower_ratio() >= 20.0 {
            signals += 1;
        }
        if p.age_at(now).as_days_f64() < 60.0 {
            signals += 1;
        }
        let age_days = p.age_at(now).as_days_f64().max(1.0);
        if p.statuses_count as f64 / age_days > 50.0 {
            signals += 1;
        }
        if p.default_profile_image {
            signals += 1;
        }
        if let Some(stats) = data.timeline_stats() {
            if stats.max_duplicates > 3 {
                signals += 1;
            }
            if stats.count > 0 && stats.link_frac > 0.8 {
                signals += 1;
            }
            // The Chu et al. device signal: posting predominantly through
            // the API or scheduling services.
            if stats.count > 0 && stats.automated_frac > 0.5 {
                signals += 1;
            }
        }
        signals
    }
}

impl RuleSet for StateOfSearch {
    fn name(&self) -> &'static str {
        "StateOfSearch 7-signals"
    }

    fn is_fake(&self, data: &AccountData, now: SimTime) -> bool {
        self.bot_signals(data, now) >= 3
    }
}

/// Evaluates a rule set as a binary fake detector over labelled accounts,
/// returning `(true_positive, false_positive, true_negative, false_negative)`.
pub fn evaluate_rules<R: RuleSet + ?Sized>(
    rules: &R,
    labelled: &[(AccountData, bool)],
    now: SimTime,
) -> (u64, u64, u64, u64) {
    let mut tp = 0;
    let mut fp = 0;
    let mut tn = 0;
    let mut fne = 0;
    for (data, truly_fake) in labelled {
        match (rules.is_fake(data, now), truly_fake) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, false) => tn += 1,
            (false, true) => fne += 1,
        }
    }
    (tp, fp, tn, fne)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_population::archetype::recommended_audit_time;
    use fakeaudit_population::goldstandard::GoldStandard;
    use fakeaudit_population::TrueClass;
    use fakeaudit_twittersim::{AccountId, Profile};

    fn labelled() -> (Vec<(AccountData, bool)>, SimTime) {
        let gold = GoldStandard::generate(21, 120, recommended_audit_time());
        let now = gold.observed_at();
        let data = gold
            .accounts()
            .iter()
            .enumerate()
            .map(|(i, acc)| {
                (
                    AccountData {
                        id: AccountId(i as u64),
                        profile: acc.profile.clone(),
                        recent_tweets: Some(acc.timeline.recent_tweets(AccountId(i as u64), 200)),
                    },
                    acc.class == TrueClass::Fake,
                )
            })
            .collect();
        (data, now)
    }

    #[test]
    fn camisani_scores_obvious_cases() {
        let now = recommended_audit_time();
        let mut human = Profile::new("h", SimTime::from_days(100));
        human.followers_count = 200;
        human.friends_count = 180;
        human.statuses_count = 900;
        human.last_tweet_at = Some(SimTime::from_days(2_995));
        human.default_profile_image = false;
        human.has_bio = true;
        human.has_location = true;
        let hd = AccountData {
            id: AccountId(1),
            profile: human,
            recent_tweets: None,
        };
        assert_eq!(CamisaniCalzolari.human_points(&hd, now), 7);
        assert!(!CamisaniCalzolari.is_fake(&hd, now));

        let bot = Profile::new("b", SimTime::from_days(2_990));
        let bd = AccountData {
            id: AccountId(2),
            profile: bot,
            recent_tweets: None,
        };
        assert!(CamisaniCalzolari.human_points(&bd, now) <= 2);
        assert!(CamisaniCalzolari.is_fake(&bd, now));
    }

    #[test]
    fn stateofsearch_counts_signals() {
        let now = recommended_audit_time();
        let mut bot = Profile::new("b", SimTime::from_days(2_990)); // 10 days old
        bot.friends_count = 4_000;
        bot.followers_count = 3;
        bot.default_profile_image = true;
        let bd = AccountData {
            id: AccountId(3),
            profile: bot,
            recent_tweets: None,
        };
        assert!(StateOfSearch.bot_signals(&bd, now) >= 4);
        assert!(StateOfSearch.is_fake(&bd, now));
    }

    #[test]
    fn rule_sets_have_signal_on_gold_standard() {
        let (data, now) = labelled();
        for rules in [&CamisaniCalzolari as &dyn RuleSet, &StateOfSearch] {
            let (tp, fp, tn, fne) = evaluate_rules(rules, &data, now);
            assert_eq!(tp + fp + tn + fne, data.len() as u64);
            let recall = tp as f64 / (tp + fne).max(1) as f64;
            assert!(
                recall > 0.5,
                "{} recall {recall:.2} should beat chance",
                rules.name()
            );
        }
    }

    #[test]
    fn rule_sets_misfire_more_than_a_trained_model_would() {
        // The paper's E4 claim in miniature: rules carry substantial error.
        let (data, now) = labelled();
        let (tp, fp, _tn, fne) = evaluate_rules(&CamisaniCalzolari, &data, now);
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        let recall = tp as f64 / (tp + fne).max(1) as f64;
        let f1 = 2.0 * precision * recall / (precision + recall).max(1e-9);
        assert!(
            f1 < 0.98,
            "rules should not be near-perfect (f1 {f1:.3}) — that would \
             contradict the motivation for a trained classifier"
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(CamisaniCalzolari.name(), "Camisani-Calzolari");
        assert_eq!(StateOfSearch.name(), "StateOfSearch 7-signals");
    }
}
