//! The four fake-follower analytics engines the paper compares (§II–III),
//! reimplemented from their documented methodologies.
//!
//! * [`statuspeople`] — the "Fakers" app: newest-35 K window, 700 assessed,
//!   "simple spam criteria" (few followers / few tweets / follows many),
//!   plus the late-2013 "Deep Dive" variant (1.25 M window, 33 K assessed);
//! * [`socialbakers`] — "Fake Follower Check": newest-2 000 window, the
//!   eight published criteria with a points system, inactivity tested
//!   *only* on suspicious accounts (which is why SB under-reports
//!   inactives);
//! * [`twitteraudit`] — 5 000-follower sample, a 0–5 score from tweet
//!   count, last-tweet date and follower/friend ratio; no inactive bucket;
//! * [`fake_project`] — the authors' FC engine (§III): full follower list,
//!   uniform random sample of 9 604 (95 % ± 1 %), inactivity rule first,
//!   then a trained classifier (a [`fakeaudit_ml::RandomForest`] here);
//! * [`rules`] — the literature rule sets FC was distilled from
//!   (Camisani-Calzolari's human scores, StateOfSearch's seven bot
//!   signals), for the E4 comparison;
//! * [`features`] — feature extraction (profile-only and with-timeline
//!   sets, mirroring [12]'s crawling-cost classes);
//! * [`engine`] — the [`engine::FollowerAuditor`] trait every tool
//!   implements, plus shared sampling plumbing;
//! * [`data`] — the per-account observation record and its API fetchers;
//! * [`verdict`] — verdicts, counts, audit outcomes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod engine;
pub mod fake_project;
pub mod features;
pub mod rules;
pub mod socialbakers;
pub mod statuspeople;
pub mod twitteraudit;
pub mod verdict;

pub use engine::{AuditError, FollowerAuditor, Instrumented, ToolId};
pub use fake_project::FakeProjectEngine;
pub use socialbakers::Socialbakers;
pub use statuspeople::StatusPeople;
pub use twitteraudit::Twitteraudit;
pub use verdict::{AuditOutcome, Verdict, VerdictCounts};
