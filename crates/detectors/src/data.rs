//! Per-account observation records and their API fetchers.

use fakeaudit_twitter_api::{ApiError, ApiSession};
use fakeaudit_twittersim::tweet::TimelineStats;
use fakeaudit_twittersim::{AccountId, Profile, Tweet};
use serde::{Deserialize, Serialize};

/// Everything a detector may observe about one account: the hydrated
/// profile and (optionally) its recent tweets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccountData {
    /// The account id.
    pub id: AccountId,
    /// Profile as returned by `users/lookup`.
    pub profile: Profile,
    /// Recent tweets (newest first), when the tool fetched them; `None`
    /// when the tool works from the profile alone.
    pub recent_tweets: Option<Vec<Tweet>>,
}

impl AccountData {
    /// Timeline statistics over the fetched tweets; `None` when the tool
    /// did not fetch tweets.
    pub fn timeline_stats(&self) -> Option<TimelineStats> {
        self.recent_tweets.as_deref().map(TimelineStats::compute)
    }
}

/// Hydrates profiles for `ids` through `users/lookup` (profile-only tools:
/// StatusPeople, Twitteraudit, the FC engine).
///
/// Unknown ids are dropped, as the real endpoint does.
///
/// # Errors
///
/// Propagates retryable [`ApiError`]s when the session's fault plan
/// exhausts its retry budget.
pub fn fetch_profiles(
    session: &mut ApiSession<'_>,
    ids: &[AccountId],
) -> Result<Vec<AccountData>, ApiError> {
    Ok(session
        .users_lookup(ids)?
        .into_iter()
        .zip(ids.iter())
        .map(|(profile, &id)| AccountData {
            id,
            profile,
            recent_tweets: None,
        })
        .collect())
}

/// Hydrates profiles *and* recent timelines (up to `timeline_depth` tweets
/// each) through the API, paying full rate-limit cost.
///
/// # Errors
///
/// Propagates [`ApiError`] from the timeline fetches.
pub fn fetch_profiles_with_timelines(
    session: &mut ApiSession<'_>,
    ids: &[AccountId],
    timeline_depth: usize,
) -> Result<Vec<AccountData>, ApiError> {
    let mut out = fetch_profiles(session, ids)?;
    for acc in &mut out {
        acc.recent_tweets = Some(session.user_timeline(acc.id, timeline_depth)?);
    }
    Ok(out)
}

/// Hydrates profiles through the API but reads timelines from the
/// platform's **pre-crawled index** without API charges — how
/// Socialbakers' monitoring infrastructure amortises data collection
/// (§IV-C shows SB answering in ~10 s, far below what per-audit timeline
/// crawls would allow).
///
/// # Errors
///
/// Propagates retryable [`ApiError`]s from the profile hydration.
pub fn fetch_profiles_with_indexed_timelines(
    session: &mut ApiSession<'_>,
    ids: &[AccountId],
    timeline_depth: usize,
) -> Result<Vec<AccountData>, ApiError> {
    let mut out = fetch_profiles(session, ids)?;
    let platform = session.platform();
    for acc in &mut out {
        acc.recent_tweets = Some(platform.recent_tweets(acc.id, timeline_depth));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_population::{ClassMix, TargetScenario};
    use fakeaudit_twitter_api::ApiConfig;
    use fakeaudit_twittersim::Platform;

    fn built() -> (Platform, fakeaudit_population::BuiltTarget) {
        let mut platform = Platform::new();
        let t = TargetScenario::new("t", 300, ClassMix::new(0.3, 0.2, 0.5).unwrap())
            .build(&mut platform, 21)
            .unwrap();
        (platform, t)
    }

    fn ids(t: &fakeaudit_population::BuiltTarget, n: usize) -> Vec<AccountId> {
        t.followers_oldest_first
            .iter()
            .map(|&(id, _)| id)
            .take(n)
            .collect()
    }

    #[test]
    fn fetch_profiles_hydrates_all_known() {
        let (platform, t) = built();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let data = fetch_profiles(&mut s, &ids(&t, 150)).unwrap();
        assert_eq!(data.len(), 150);
        assert!(data.iter().all(|d| d.recent_tweets.is_none()));
        assert_eq!(s.log().users_lookup, 2);
    }

    #[test]
    fn fetch_with_timelines_charges_api() {
        let (platform, t) = built();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let data = fetch_profiles_with_timelines(&mut s, &ids(&t, 20), 200).unwrap();
        assert_eq!(data.len(), 20);
        assert!(data.iter().all(|d| d.recent_tweets.is_some()));
        assert_eq!(s.log().user_timeline, 20);
    }

    #[test]
    fn indexed_timelines_are_free() {
        let (platform, t) = built();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let data = fetch_profiles_with_indexed_timelines(&mut s, &ids(&t, 20), 200).unwrap();
        assert_eq!(data.len(), 20);
        assert!(data.iter().all(|d| d.recent_tweets.is_some()));
        assert_eq!(s.log().user_timeline, 0, "index reads bypass the API");
    }

    #[test]
    fn indexed_and_api_timelines_agree() {
        // The index is the same platform state the API serves.
        let (platform, t) = built();
        let sample = ids(&t, 5);
        let mut s1 = ApiSession::new(&platform, ApiConfig::default());
        let via_api = fetch_profiles_with_timelines(&mut s1, &sample, 200).unwrap();
        let mut s2 = ApiSession::new(&platform, ApiConfig::default());
        let via_index = fetch_profiles_with_indexed_timelines(&mut s2, &sample, 200).unwrap();
        assert_eq!(via_api, via_index);
    }

    #[test]
    fn timeline_stats_roundtrip() {
        let (platform, t) = built();
        let mut s = ApiSession::new(&platform, ApiConfig::default());
        let data = fetch_profiles_with_indexed_timelines(&mut s, &ids(&t, 30), 200).unwrap();
        for d in &data {
            let stats = d.timeline_stats().unwrap();
            assert_eq!(stats.count as u64, d.profile.statuses_count.min(200));
        }
    }
}
