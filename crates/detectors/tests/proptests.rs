//! Property-based tests for the detector engines' invariants.

use fakeaudit_detectors::data::AccountData;
use fakeaudit_detectors::features::FeatureSet;
use fakeaudit_detectors::{Socialbakers, StatusPeople, Twitteraudit, Verdict, VerdictCounts};
use fakeaudit_twittersim::timeline::{TimelineModel, TimelineParams};
use fakeaudit_twittersim::{AccountId, Profile, SimTime};
use proptest::prelude::*;

/// Arbitrary but structurally valid account observations.
fn account_strategy() -> impl Strategy<Value = AccountData> {
    (
        0u64..1_000_000,               // followers
        0u64..1_000_000,               // friends
        0u64..10_000,                  // statuses
        0i64..2_900,                   // created days before "now" (day 3000)
        prop::option::of(0i64..2_900), // last tweet days ago
        any::<bool>(),                 // default image
        any::<bool>(),                 // bio
        any::<bool>(),                 // location
    )
        .prop_map(|(followers, friends, statuses, age, last, egg, bio, loc)| {
            let mut p = Profile::new("prop", SimTime::from_days(3_000 - age));
            p.followers_count = followers;
            p.friends_count = friends;
            p.statuses_count = statuses;
            p.last_tweet_at = if statuses > 0 {
                last.map(|d| SimTime::from_days(3_000 - d))
            } else {
                None
            };
            p.default_profile_image = egg;
            p.has_bio = bio;
            p.has_location = loc;
            AccountData {
                id: AccountId(1),
                profile: p,
                recent_tweets: Some(Vec::new()),
            }
        })
}

proptest! {
    #[test]
    fn every_tool_returns_a_legal_verdict(data in account_strategy()) {
        let now = SimTime::from_days(3_000);
        let sp = StatusPeople::new().classify(&data, now);
        let sb = Socialbakers::new().classify(&data, now);
        let ta = Twitteraudit::new().classify(&data, now);
        prop_assert!(Verdict::ALL.contains(&sp));
        prop_assert!(Verdict::ALL.contains(&sb));
        prop_assert!(Verdict::ALL.contains(&ta));
        // Twitteraudit never outputs an inactive bucket.
        prop_assert_ne!(ta, Verdict::Inactive);
    }

    #[test]
    fn classification_is_a_pure_function(data in account_strategy()) {
        let now = SimTime::from_days(3_000);
        prop_assert_eq!(
            StatusPeople::new().classify(&data, now),
            StatusPeople::new().classify(&data, now)
        );
        prop_assert_eq!(
            Socialbakers::new().classify(&data, now),
            Socialbakers::new().classify(&data, now)
        );
    }

    #[test]
    fn ta_points_bounded_by_five(data in account_strategy()) {
        let now = SimTime::from_days(3_000);
        prop_assert!(Twitteraudit::new().real_points(&data, now) <= 5);
    }

    #[test]
    fn sp_points_bounded_by_five(data in account_strategy()) {
        prop_assert!(StatusPeople::new().spam_points(&data) <= 5);
    }

    #[test]
    fn sb_inactive_verdict_requires_suspicion(data in account_strategy()) {
        // The published SB flow: Inactive is only reachable through the
        // suspicious branch.
        let now = SimTime::from_days(3_000);
        let sb = Socialbakers::new();
        if sb.classify(&data, now) == Verdict::Inactive {
            prop_assert!(sb.suspicion_points(&data, now) >= 3);
            prop_assert!(sb.is_inactive(&data, now));
        }
    }

    #[test]
    fn feature_vectors_are_finite_and_sized(data in account_strategy()) {
        let now = SimTime::from_days(3_000);
        for set in [FeatureSet::ProfileOnly, FeatureSet::WithTimeline] {
            let v = set.extract(&data, now);
            prop_assert_eq!(v.len(), set.arity());
            prop_assert!(v.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn verdict_counts_percentages_sum_to_100(
        verdicts in prop::collection::vec(0usize..3, 1..200),
    ) {
        let counts: VerdictCounts = verdicts
            .iter()
            .map(|&i| Verdict::ALL[i])
            .collect();
        let (a, b, c) = counts.as_row();
        prop_assert!((a + b + c - 100.0).abs() < 1e-9);
        prop_assert_eq!(counts.total(), verdicts.len() as u64);
    }

    #[test]
    fn richer_timelines_never_reduce_sb_suspicion_data(
        statuses in 1u64..300,
        spam in 0.0f64..1.0,
        dup in 0.0f64..1.0,
        seed in 0u64..100,
    ) {
        // Structural invariant: suspicion computed from a timeline is the
        // same whether the tweets come attached to the account or are
        // recomputed from the same model.
        let now = SimTime::from_days(3_000);
        let model = TimelineModel::new(
            TimelineParams {
                statuses_count: statuses,
                first_tweet_at: SimTime::from_days(2_000),
                last_tweet_at: SimTime::from_days(2_990),
                retweet_frac: 0.2,
                link_frac: 0.3,
                spam_frac: spam,
                duplicate_frac: dup,
                automated_frac: 0.3,
            },
            seed,
        );
        let mut profile = Profile::new("tl", SimTime::from_days(1_500));
        profile.statuses_count = statuses;
        profile.last_tweet_at = model.last_tweet_at();
        let tweets = model.recent_tweets(AccountId(3), 200);
        let a = AccountData {
            id: AccountId(3),
            profile: profile.clone(),
            recent_tweets: Some(tweets.clone()),
        };
        let b = AccountData {
            id: AccountId(3),
            profile,
            recent_tweets: Some(tweets),
        };
        let sb = Socialbakers::new();
        prop_assert_eq!(sb.suspicion_points(&a, now), sb.suspicion_points(&b, now));
    }
}
