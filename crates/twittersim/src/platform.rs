//! The assembled synthetic platform: accounts + follow graph + clock.

use crate::account::{AccountId, Profile};
use crate::clock::{SimClock, SimDuration, SimTime};
use crate::graph::{FollowGraph, GraphError};
use crate::timeline::TimelineModel;
use crate::tweet::Tweet;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors from platform operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// The referenced account does not exist.
    UnknownAccount(
        /// The missing id.
        AccountId,
    ),
    /// A follow-graph mutation failed.
    Graph(GraphError),
    /// A screen name was registered twice.
    DuplicateScreenName(
        /// The offending name.
        String,
    ),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownAccount(id) => write!(f, "unknown account {id}"),
            PlatformError::Graph(e) => write!(f, "graph error: {e}"),
            PlatformError::DuplicateScreenName(n) => {
                write!(f, "screen name @{n} already registered")
            }
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<GraphError> for PlatformError {
    fn from(e: GraphError) -> Self {
        PlatformError::Graph(e)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct AccountRecord {
    profile: Profile,
    timeline: TimelineModel,
}

/// The synthetic Twitter platform.
///
/// ```
/// use fakeaudit_twittersim::{Platform, Profile, SimTime};
/// use fakeaudit_twittersim::timeline::TimelineModel;
///
/// let mut platform = Platform::new();
/// let target = platform.register(
///     Profile::new("celebrity", SimTime::EPOCH),
///     TimelineModel::empty(),
/// )?;
/// let fan = platform.register(
///     Profile::new("fan", SimTime::EPOCH),
///     TimelineModel::empty(),
/// )?;
/// platform.follow(fan, target)?;
/// assert_eq!(platform.profile(target).unwrap().followers_count, 1);
/// # Ok::<(), fakeaudit_twittersim::platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Platform {
    accounts: HashMap<AccountId, AccountRecord>,
    screen_names: HashSet<String>,
    graph: FollowGraph,
    clock: SimClock,
    next_id: u64,
    /// Targets whose follower count was pinned to a nominal value
    /// (scale substitution; see crate docs). Follows no longer bump these.
    nominal_targets: HashSet<AccountId>,
}

impl Platform {
    /// Creates an empty platform with the clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new account; ids are assigned sequentially.
    ///
    /// The profile's `statuses_count` / `last_tweet_at` are synchronised
    /// from the timeline model, so callers cannot register inconsistent
    /// pairs.
    ///
    /// # Errors
    ///
    /// [`PlatformError::DuplicateScreenName`] if the screen name is taken.
    pub fn register(
        &mut self,
        mut profile: Profile,
        timeline: TimelineModel,
    ) -> Result<AccountId, PlatformError> {
        if !self.screen_names.insert(profile.screen_name.clone()) {
            return Err(PlatformError::DuplicateScreenName(profile.screen_name));
        }
        profile.statuses_count = timeline.statuses_count();
        profile.last_tweet_at = timeline.last_tweet_at();
        let id = AccountId(self.next_id);
        self.next_id += 1;
        self.accounts
            .insert(id, AccountRecord { profile, timeline });
        Ok(id)
    }

    /// Number of registered accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// The profile of `id`, if registered.
    pub fn profile(&self, id: AccountId) -> Option<&Profile> {
        self.accounts.get(&id).map(|r| &r.profile)
    }

    /// Looks up an account id by screen name (linear scan; used by examples
    /// and report rendering only).
    pub fn account_by_screen_name(&self, name: &str) -> Option<AccountId> {
        self.accounts
            .iter()
            .find(|(_, r)| r.profile.screen_name == name)
            .map(|(id, _)| *id)
    }

    /// `follower` starts following `target` at the current simulated time.
    ///
    /// Bumps `follower.friends_count` and, unless the target's count was
    /// pinned with [`Platform::pin_followers_count`], `target.followers_count`.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownAccount`] or a wrapped [`GraphError`].
    pub fn follow(&mut self, follower: AccountId, target: AccountId) -> Result<(), PlatformError> {
        if !self.accounts.contains_key(&follower) {
            return Err(PlatformError::UnknownAccount(follower));
        }
        if !self.accounts.contains_key(&target) {
            return Err(PlatformError::UnknownAccount(target));
        }
        let now = self.clock.now();
        self.graph.follow(follower, target, now)?;
        if let Some(r) = self.accounts.get_mut(&follower) {
            r.profile.friends_count += 1;
        }
        if !self.nominal_targets.contains(&target) {
            if let Some(r) = self.accounts.get_mut(&target) {
                r.profile.followers_count += 1;
            }
        }
        Ok(())
    }

    /// `follower` stops following `target`; counts are decremented
    /// (the pinned nominal count of a scale-substituted target is left
    /// untouched).
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownAccount`] or a wrapped
    /// [`GraphError::NotFollowing`](crate::graph::GraphError::NotFollowing).
    pub fn unfollow(
        &mut self,
        follower: AccountId,
        target: AccountId,
    ) -> Result<(), PlatformError> {
        if !self.accounts.contains_key(&follower) {
            return Err(PlatformError::UnknownAccount(follower));
        }
        if !self.accounts.contains_key(&target) {
            return Err(PlatformError::UnknownAccount(target));
        }
        self.graph.unfollow(follower, target)?;
        if let Some(r) = self.accounts.get_mut(&follower) {
            r.profile.friends_count = r.profile.friends_count.saturating_sub(1);
        }
        if !self.nominal_targets.contains(&target) {
            if let Some(r) = self.accounts.get_mut(&target) {
                r.profile.followers_count = r.profile.followers_count.saturating_sub(1);
            }
        }
        Ok(())
    }

    /// Pins `target`'s public follower count to `nominal` (scale
    /// substitution for multi-million-follower accounts). The materialised
    /// list in the graph keeps its real length; rate-limit arithmetic uses
    /// the nominal count.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownAccount`].
    pub fn pin_followers_count(
        &mut self,
        target: AccountId,
        nominal: u64,
    ) -> Result<(), PlatformError> {
        let r = self
            .accounts
            .get_mut(&target)
            .ok_or(PlatformError::UnknownAccount(target))?;
        r.profile.followers_count = nominal;
        self.nominal_targets.insert(target);
        Ok(())
    }

    /// The materialised follower ids of `target`, newest first (the API
    /// order).
    pub fn followers_newest_first(&self, target: AccountId) -> Vec<AccountId> {
        self.graph.followers_newest_first(target)
    }

    /// Number of *materialised* followers (may be below the nominal
    /// `followers_count` for pinned targets).
    pub fn materialized_follower_count(&self, target: AccountId) -> usize {
        self.graph.follower_count(target)
    }

    /// Direct access to the follow graph.
    pub fn graph(&self) -> &FollowGraph {
        &self.graph
    }

    /// The newest `limit` tweets of `id`, newest first.
    pub fn recent_tweets(&self, id: AccountId, limit: usize) -> Vec<Tweet> {
        self.accounts
            .get(&id)
            .map_or_else(Vec::new, |r| r.timeline.recent_tweets(id, limit))
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Advances the simulated clock.
    pub fn advance_clock(&mut self, d: SimDuration) {
        self.clock.advance(d);
    }

    /// Iterates over all account ids in ascending id order.
    pub fn account_ids(&self) -> Vec<AccountId> {
        let mut ids: Vec<_> = self.accounts.keys().copied().collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{TimelineModel, TimelineParams};

    fn empty_profile(name: &str) -> Profile {
        Profile::new(name, SimTime::EPOCH)
    }

    #[test]
    fn register_assigns_sequential_ids() {
        let mut p = Platform::new();
        let a = p
            .register(empty_profile("a"), TimelineModel::empty())
            .unwrap();
        let b = p
            .register(empty_profile("b"), TimelineModel::empty())
            .unwrap();
        assert_eq!(a, AccountId(0));
        assert_eq!(b, AccountId(1));
        assert_eq!(p.account_count(), 2);
    }

    #[test]
    fn register_rejects_duplicate_screen_names() {
        let mut p = Platform::new();
        p.register(empty_profile("dup"), TimelineModel::empty())
            .unwrap();
        assert!(matches!(
            p.register(empty_profile("dup"), TimelineModel::empty()),
            Err(PlatformError::DuplicateScreenName(_))
        ));
    }

    #[test]
    fn register_synchronises_profile_with_timeline() {
        let mut p = Platform::new();
        let tl = TimelineModel::new(
            TimelineParams {
                statuses_count: 42,
                first_tweet_at: SimTime::from_days(1),
                last_tweet_at: SimTime::from_days(9),
                ..TimelineParams::default()
            },
            7,
        );
        let id = p.register(empty_profile("x"), tl).unwrap();
        let prof = p.profile(id).unwrap();
        assert_eq!(prof.statuses_count, 42);
        assert_eq!(prof.last_tweet_at, Some(SimTime::from_days(9)));
    }

    #[test]
    fn follow_updates_counts_and_graph() {
        let mut p = Platform::new();
        let t = p
            .register(empty_profile("t"), TimelineModel::empty())
            .unwrap();
        let f = p
            .register(empty_profile("f"), TimelineModel::empty())
            .unwrap();
        p.follow(f, t).unwrap();
        assert_eq!(p.profile(t).unwrap().followers_count, 1);
        assert_eq!(p.profile(f).unwrap().friends_count, 1);
        assert_eq!(p.followers_newest_first(t), vec![f]);
    }

    #[test]
    fn follow_unknown_account_errors() {
        let mut p = Platform::new();
        let t = p
            .register(empty_profile("t"), TimelineModel::empty())
            .unwrap();
        assert_eq!(
            p.follow(AccountId(99), t).unwrap_err(),
            PlatformError::UnknownAccount(AccountId(99))
        );
        assert_eq!(
            p.follow(t, AccountId(99)).unwrap_err(),
            PlatformError::UnknownAccount(AccountId(99))
        );
    }

    #[test]
    fn follow_order_tracks_clock() {
        let mut p = Platform::new();
        let t = p
            .register(empty_profile("t"), TimelineModel::empty())
            .unwrap();
        let f1 = p
            .register(empty_profile("f1"), TimelineModel::empty())
            .unwrap();
        let f2 = p
            .register(empty_profile("f2"), TimelineModel::empty())
            .unwrap();
        p.follow(f1, t).unwrap();
        p.advance_clock(SimDuration::from_days(1));
        p.follow(f2, t).unwrap();
        // Newest first: f2 before f1.
        assert_eq!(p.followers_newest_first(t), vec![f2, f1]);
    }

    #[test]
    fn pinned_counts_are_stable_under_follows() {
        let mut p = Platform::new();
        let t = p
            .register(empty_profile("obama"), TimelineModel::empty())
            .unwrap();
        let f = p
            .register(empty_profile("f"), TimelineModel::empty())
            .unwrap();
        p.pin_followers_count(t, 41_000_000).unwrap();
        p.follow(f, t).unwrap();
        assert_eq!(p.profile(t).unwrap().followers_count, 41_000_000);
        assert_eq!(p.materialized_follower_count(t), 1);
    }

    #[test]
    fn pin_unknown_account_errors() {
        let mut p = Platform::new();
        assert!(matches!(
            p.pin_followers_count(AccountId(5), 1),
            Err(PlatformError::UnknownAccount(_))
        ));
    }

    #[test]
    fn recent_tweets_roundtrip() {
        let mut p = Platform::new();
        let tl = TimelineModel::new(
            TimelineParams {
                statuses_count: 10,
                first_tweet_at: SimTime::from_days(1),
                last_tweet_at: SimTime::from_days(2),
                ..TimelineParams::default()
            },
            3,
        );
        let id = p.register(empty_profile("tweety"), tl).unwrap();
        let ts = p.recent_tweets(id, 5);
        assert_eq!(ts.len(), 5);
        assert!(ts.iter().all(|t| t.author == id));
    }

    #[test]
    fn recent_tweets_of_unknown_account_is_empty() {
        let p = Platform::new();
        assert!(p.recent_tweets(AccountId(7), 5).is_empty());
    }

    #[test]
    fn screen_name_lookup() {
        let mut p = Platform::new();
        let id = p
            .register(empty_profile("findme"), TimelineModel::empty())
            .unwrap();
        assert_eq!(p.account_by_screen_name("findme"), Some(id));
        assert_eq!(p.account_by_screen_name("ghost"), None);
    }

    #[test]
    fn unfollow_decrements_counts() {
        let mut p = Platform::new();
        let t = p
            .register(empty_profile("t"), TimelineModel::empty())
            .unwrap();
        let f = p
            .register(empty_profile("f"), TimelineModel::empty())
            .unwrap();
        p.follow(f, t).unwrap();
        p.unfollow(f, t).unwrap();
        assert_eq!(p.profile(t).unwrap().followers_count, 0);
        assert_eq!(p.profile(f).unwrap().friends_count, 0);
        assert!(p.followers_newest_first(t).is_empty());
    }

    #[test]
    fn unfollow_keeps_pinned_counts() {
        let mut p = Platform::new();
        let t = p
            .register(empty_profile("t"), TimelineModel::empty())
            .unwrap();
        let f = p
            .register(empty_profile("f"), TimelineModel::empty())
            .unwrap();
        p.follow(f, t).unwrap();
        p.pin_followers_count(t, 1_000_000).unwrap();
        p.unfollow(f, t).unwrap();
        assert_eq!(p.profile(t).unwrap().followers_count, 1_000_000);
        assert_eq!(p.materialized_follower_count(t), 0);
    }

    #[test]
    fn unfollow_errors() {
        let mut p = Platform::new();
        let t = p
            .register(empty_profile("t"), TimelineModel::empty())
            .unwrap();
        assert!(matches!(
            p.unfollow(AccountId(99), t),
            Err(PlatformError::UnknownAccount(_))
        ));
        let f = p
            .register(empty_profile("f"), TimelineModel::empty())
            .unwrap();
        assert!(matches!(
            p.unfollow(f, t),
            Err(PlatformError::Graph(GraphError::NotFollowing { .. }))
        ));
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = PlatformError::Graph(GraphError::SelfFollow(AccountId(1)));
        assert!(e.to_string().contains("graph error"));
        assert!(e.source().is_some());
        assert!(PlatformError::UnknownAccount(AccountId(2))
            .source()
            .is_none());
    }
}
