//! Tweet-text synthesis and the spam-phrase lexicon.
//!
//! Socialbakers' methodology flags accounts where "more than 30% of the
//! account's tweets use spam phrases (like diet, make money, work from
//! home)" (§II-B). We keep the published example phrases plus a handful of
//! era-appropriate additions, and synthesise benign filler text for the
//! rest of the corpus.

use rand::Rng;

/// Spam phrases tested by the Socialbakers criterion. The first three are
/// verbatim from the paper; the rest are typical 2013-era follower-spam
/// n-grams used to give the synthesiser variety.
pub const SPAM_PHRASES: &[&str] = &[
    "diet",
    "make money",
    "work from home",
    "free followers",
    "lose weight fast",
    "click here",
    "earn cash",
    "miracle cure",
];

/// Benign sentence templates for genuine-looking tweets.
const BENIGN_TEMPLATES: &[&str] = &[
    "just watched the match, what a game",
    "coffee first, questions later",
    "reading a great book this weekend",
    "traffic in the city is unbearable today",
    "happy birthday to my best friend",
    "can't believe the season finale",
    "new recipe turned out great",
    "monday mornings should be optional",
    "beautiful sunset at the beach today",
    "excited for the concert tonight",
];

/// Returns true when `text` contains any spam phrase (case-insensitive).
///
/// ```
/// use fakeaudit_twittersim::text::contains_spam_phrase;
/// assert!(contains_spam_phrase("New DIET plan, click here"));
/// assert!(!contains_spam_phrase("lovely weather in Pisa"));
/// ```
pub fn contains_spam_phrase(text: &str) -> bool {
    let lower = text.to_lowercase();
    SPAM_PHRASES.iter().any(|p| lower.contains(p))
}

/// Synthesises a benign tweet body.
pub fn benign_text<R: Rng + ?Sized>(rng: &mut R) -> String {
    let t = BENIGN_TEMPLATES[rng.gen_range(0..BENIGN_TEMPLATES.len())];
    // A numeric suffix keeps most benign tweets textually distinct so they
    // don't trip duplicate detection.
    format!("{t} #{:04}", rng.gen_range(0..10_000))
}

/// Synthesises a spam tweet body containing at least one spam phrase.
pub fn spam_text<R: Rng + ?Sized>(rng: &mut R) -> String {
    let p = SPAM_PHRASES[rng.gen_range(0..SPAM_PHRASES.len())];
    format!("amazing opportunity: {p}!!! don't miss out")
}

/// A stable 64-bit fingerprint of tweet text, used for duplicate detection
/// ("the same tweets are repeated more than three times"). FNV-1a over the
/// lowercased text with whitespace collapsed.
pub fn fingerprint(text: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut last_space = false;
    for c in text.chars().flat_map(|c| c.to_lowercase()) {
        let c = if c.is_whitespace() { ' ' } else { c };
        if c == ' ' {
            if last_space {
                continue;
            }
            last_space = true;
        } else {
            last_space = false;
        }
        let mut buf = [0u8; 4];
        for b in c.encode_utf8(&mut buf).as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_stats::rng::rng_for;

    #[test]
    fn spam_phrases_include_paper_examples() {
        for p in ["diet", "make money", "work from home"] {
            assert!(SPAM_PHRASES.contains(&p), "missing paper phrase {p}");
        }
    }

    #[test]
    fn detection_is_case_insensitive() {
        assert!(contains_spam_phrase("MAKE MONEY now"));
        assert!(contains_spam_phrase("Work From Home today"));
    }

    #[test]
    fn benign_text_is_not_spam() {
        let mut rng = rng_for(1, "text");
        for _ in 0..100 {
            let t = benign_text(&mut rng);
            assert!(!contains_spam_phrase(&t), "benign text flagged: {t}");
        }
    }

    #[test]
    fn spam_text_is_spam() {
        let mut rng = rng_for(2, "text");
        for _ in 0..100 {
            assert!(contains_spam_phrase(&spam_text(&mut rng)));
        }
    }

    #[test]
    fn fingerprint_stable_and_normalising() {
        assert_eq!(fingerprint("Hello  World"), fingerprint("hello world"));
        assert_eq!(fingerprint("a\tb"), fingerprint("a b"));
        assert_ne!(fingerprint("hello world"), fingerprint("hello worlds"));
    }

    #[test]
    fn fingerprint_empty() {
        assert_eq!(fingerprint(""), fingerprint(""));
        assert_ne!(fingerprint(""), fingerprint(" x"));
    }

    #[test]
    fn benign_texts_are_mostly_distinct() {
        let mut rng = rng_for(3, "text");
        let mut seen = std::collections::HashSet::new();
        let n = 200;
        for _ in 0..n {
            seen.insert(fingerprint(&benign_text(&mut rng)));
        }
        assert!(
            seen.len() > n * 9 / 10,
            "only {} distinct of {n}",
            seen.len()
        );
    }
}
