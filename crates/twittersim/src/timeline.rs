//! Generative timeline model.
//!
//! Materialising full timelines for hundreds of thousands of synthetic
//! followers would dominate memory, so each account stores a compact
//! [`TimelineModel`] from which concrete [`Tweet`]s are synthesised
//! deterministically on demand. Two requests for the same account's
//! timeline always return identical tweets — the property the duplicate-
//! detection criteria and snapshot experiments rely on.

use crate::account::AccountId;
use crate::clock::SimTime;
use crate::text;
use crate::tweet::{Tweet, TweetKind, TweetSource};
use fakeaudit_stats::rng::rng_for_indexed;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Compact behavioural description of an account's timeline.
///
/// Fractions are clamped to `[0, 1]` at construction. `statuses_count`
/// tweets are (virtually) spread between `first_tweet_at` and
/// `last_tweet_at`; only the requested suffix is ever materialised.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineModel {
    statuses_count: u64,
    first_tweet_at: SimTime,
    last_tweet_at: SimTime,
    retweet_frac: f64,
    link_frac: f64,
    spam_frac: f64,
    /// Fraction of tweets drawn from a tiny pool of repeated bodies.
    duplicate_frac: f64,
    /// Fraction posted from automated clients (API/scheduler).
    automated_frac: f64,
    seed: u64,
}

/// Builder-style parameters for [`TimelineModel::new`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineParams {
    /// Lifetime tweet count.
    pub statuses_count: u64,
    /// Time of the oldest tweet.
    pub first_tweet_at: SimTime,
    /// Time of the newest tweet.
    pub last_tweet_at: SimTime,
    /// Fraction of retweets.
    pub retweet_frac: f64,
    /// Fraction of tweets with links.
    pub link_frac: f64,
    /// Fraction of tweets containing spam phrases.
    pub spam_frac: f64,
    /// Fraction of tweets drawn from a small pool of identical bodies.
    pub duplicate_frac: f64,
    /// Fraction posted from automated clients (API/scheduler).
    pub automated_frac: f64,
}

impl Default for TimelineParams {
    fn default() -> Self {
        Self {
            statuses_count: 0,
            first_tweet_at: SimTime::EPOCH,
            last_tweet_at: SimTime::EPOCH,
            retweet_frac: 0.1,
            link_frac: 0.1,
            spam_frac: 0.0,
            duplicate_frac: 0.0,
            automated_frac: 0.05,
        }
    }
}

impl TimelineModel {
    /// Creates a model from `params`, clamping fractions into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `last_tweet_at` precedes `first_tweet_at` while
    /// `statuses_count > 0`.
    pub fn new(params: TimelineParams, seed: u64) -> Self {
        if params.statuses_count > 0 {
            assert!(
                params.last_tweet_at >= params.first_tweet_at,
                "last tweet must not precede first tweet"
            );
        }
        let clamp = |f: f64| f.clamp(0.0, 1.0);
        Self {
            statuses_count: params.statuses_count,
            first_tweet_at: params.first_tweet_at,
            last_tweet_at: params.last_tweet_at,
            retweet_frac: clamp(params.retweet_frac),
            link_frac: clamp(params.link_frac),
            spam_frac: clamp(params.spam_frac),
            duplicate_frac: clamp(params.duplicate_frac),
            automated_frac: clamp(params.automated_frac),
            seed,
        }
    }

    /// An empty timeline (account that never tweeted).
    pub fn empty() -> Self {
        Self::new(TimelineParams::default(), 0)
    }

    /// Lifetime tweet count.
    pub fn statuses_count(&self) -> u64 {
        self.statuses_count
    }

    /// Time of the newest tweet, or `None` for an empty timeline.
    pub fn last_tweet_at(&self) -> Option<SimTime> {
        (self.statuses_count > 0).then_some(self.last_tweet_at)
    }

    /// Synthesises the newest `limit` tweets for `author`, newest first.
    ///
    /// Deterministic: repeated calls return identical tweets. Tweet `id`s
    /// count down from `statuses_count` so the newest tweet has the largest
    /// id, like the real platform.
    ///
    /// ```
    /// use fakeaudit_twittersim::timeline::{TimelineModel, TimelineParams};
    /// use fakeaudit_twittersim::{AccountId, SimTime};
    ///
    /// let model = TimelineModel::new(
    ///     TimelineParams {
    ///         statuses_count: 50,
    ///         first_tweet_at: SimTime::from_days(0),
    ///         last_tweet_at: SimTime::from_days(10),
    ///         ..TimelineParams::default()
    ///     },
    ///     7,
    /// );
    /// let tweets = model.recent_tweets(AccountId(1), 5);
    /// assert_eq!(tweets.len(), 5);
    /// assert_eq!(tweets[0].created_at, SimTime::from_days(10));
    /// assert_eq!(tweets, model.recent_tweets(AccountId(1), 5));
    /// ```
    pub fn recent_tweets(&self, author: AccountId, limit: usize) -> Vec<Tweet> {
        let n = (self.statuses_count as usize).min(limit);
        let mut out = Vec::with_capacity(n);
        let span = if self.statuses_count > 1 {
            (self.last_tweet_at.as_secs() - self.first_tweet_at.as_secs()).max(0)
        } else {
            0
        };
        // One sequential stream, newest tweet first: requesting a longer
        // suffix never changes the tweets already produced for a shorter
        // one (prefix stability), and a single RNG construction per call
        // keeps bulk timeline synthesis cheap.
        let mut rng = rng_for_indexed(self.seed ^ author.as_u64().rotate_left(17), "timeline", 0);
        for i in 0..n {
            let created_at = if self.statuses_count == 1 {
                self.last_tweet_at
            } else {
                let frac = i as f64 / (self.statuses_count - 1) as f64;
                SimTime::from_secs(self.last_tweet_at.as_secs() - (frac * span as f64) as i64)
            };
            let is_dup = rng.gen::<f64>() < self.duplicate_frac;
            let is_spam = rng.gen::<f64>() < self.spam_frac;
            let kind = if rng.gen::<f64>() < self.retweet_frac {
                TweetKind::Retweet
            } else if rng.gen::<f64>() < 0.15 {
                TweetKind::Reply
            } else {
                TweetKind::Original
            };
            let has_link = rng.gen::<f64>() < self.link_frac;
            let source = if rng.gen::<f64>() < self.automated_frac {
                if rng.gen::<f64>() < 0.5 {
                    TweetSource::Api
                } else {
                    TweetSource::Scheduler
                }
            } else if rng.gen::<f64>() < 0.55 {
                TweetSource::Mobile
            } else {
                TweetSource::Web
            };
            let text = if is_dup {
                // A pool of 3 recycled bodies per account produces the
                // "same tweet repeated more than three times" signature.
                let pool_idx = rng.gen_range(0..3u8);
                format!("check this out, incredible deal number {pool_idx}")
            } else if is_spam {
                text::spam_text(&mut rng)
            } else {
                text::benign_text(&mut rng)
            };
            out.push(Tweet {
                id: self.statuses_count - i as u64,
                author,
                created_at,
                text,
                kind,
                has_link,
                source,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tweet::TimelineStats;

    fn model(count: u64, spam: f64, dup: f64, rt: f64) -> TimelineModel {
        TimelineModel::new(
            TimelineParams {
                statuses_count: count,
                first_tweet_at: SimTime::from_days(0),
                last_tweet_at: SimTime::from_days(100),
                retweet_frac: rt,
                link_frac: 0.2,
                spam_frac: spam,
                duplicate_frac: dup,
                automated_frac: 0.1,
            },
            99,
        )
    }

    #[test]
    fn empty_timeline() {
        let m = TimelineModel::empty();
        assert_eq!(m.statuses_count(), 0);
        assert!(m.last_tweet_at().is_none());
        assert!(m.recent_tweets(AccountId(1), 100).is_empty());
    }

    #[test]
    fn deterministic_generation() {
        let m = model(50, 0.3, 0.2, 0.4);
        let a = m.recent_tweets(AccountId(7), 20);
        let b = m.recent_tweets(AccountId(7), 20);
        assert_eq!(a, b);
    }

    #[test]
    fn different_authors_different_tweets() {
        let m = model(50, 0.3, 0.2, 0.4);
        let a = m.recent_tweets(AccountId(7), 20);
        let b = m.recent_tweets(AccountId(8), 20);
        assert_ne!(a, b);
    }

    #[test]
    fn newest_first_ordering_and_ids() {
        let m = model(30, 0.0, 0.0, 0.0);
        let ts = m.recent_tweets(AccountId(1), 30);
        assert_eq!(ts.len(), 30);
        assert_eq!(ts[0].created_at, SimTime::from_days(100));
        for w in ts.windows(2) {
            assert!(w[0].created_at >= w[1].created_at, "must be newest first");
            assert!(w[0].id > w[1].id);
        }
        assert_eq!(ts[0].id, 30);
        assert_eq!(ts[29].id, 1);
    }

    #[test]
    fn limit_caps_output() {
        let m = model(1000, 0.0, 0.0, 0.0);
        assert_eq!(m.recent_tweets(AccountId(1), 200).len(), 200);
        let m = model(5, 0.0, 0.0, 0.0);
        assert_eq!(m.recent_tweets(AccountId(1), 200).len(), 5);
    }

    #[test]
    fn prefix_is_stable_under_longer_requests() {
        // Requesting more tweets must not change the newest ones.
        let m = model(100, 0.2, 0.1, 0.3);
        let short = m.recent_tweets(AccountId(3), 10);
        let long = m.recent_tweets(AccountId(3), 50);
        assert_eq!(&long[..10], &short[..]);
    }

    #[test]
    fn spam_fraction_is_respected() {
        let m = model(400, 0.5, 0.0, 0.0);
        let ts = m.recent_tweets(AccountId(2), 400);
        let s = TimelineStats::compute(&ts);
        assert!((s.spam_frac - 0.5).abs() < 0.1, "spam frac {}", s.spam_frac);
    }

    #[test]
    fn duplicate_fraction_produces_duplicates() {
        let m = model(200, 0.0, 0.6, 0.0);
        let ts = m.recent_tweets(AccountId(2), 200);
        let s = TimelineStats::compute(&ts);
        assert!(s.max_duplicates > 10, "max dup {}", s.max_duplicates);
    }

    #[test]
    fn no_duplicates_without_dup_fraction() {
        let m = model(200, 0.0, 0.0, 0.0);
        let ts = m.recent_tweets(AccountId(2), 200);
        let s = TimelineStats::compute(&ts);
        assert!(s.max_duplicates <= 3, "max dup {}", s.max_duplicates);
    }

    #[test]
    fn retweet_fraction_is_respected() {
        let m = model(400, 0.0, 0.0, 0.9);
        let ts = m.recent_tweets(AccountId(2), 400);
        let s = TimelineStats::compute(&ts);
        assert!(s.retweet_frac > 0.8, "retweet frac {}", s.retweet_frac);
    }

    #[test]
    fn single_tweet_timestamp() {
        let m = TimelineModel::new(
            TimelineParams {
                statuses_count: 1,
                first_tweet_at: SimTime::from_days(5),
                last_tweet_at: SimTime::from_days(5),
                ..TimelineParams::default()
            },
            1,
        );
        let ts = m.recent_tweets(AccountId(1), 10);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].created_at, SimTime::from_days(5));
    }

    #[test]
    #[should_panic(expected = "last tweet must not precede first tweet")]
    fn rejects_reversed_span() {
        TimelineModel::new(
            TimelineParams {
                statuses_count: 2,
                first_tweet_at: SimTime::from_days(10),
                last_tweet_at: SimTime::from_days(5),
                ..TimelineParams::default()
            },
            1,
        );
    }

    #[test]
    fn fractions_are_clamped() {
        let m = TimelineModel::new(
            TimelineParams {
                statuses_count: 10,
                first_tweet_at: SimTime::EPOCH,
                last_tweet_at: SimTime::from_days(1),
                retweet_frac: 7.0,
                link_frac: -2.0,
                spam_frac: 0.5,
                duplicate_frac: 0.5,
                automated_frac: 0.1,
            },
            1,
        );
        let ts = m.recent_tweets(AccountId(1), 10);
        assert!(ts.iter().all(|t| t.is_retweet()));
        assert!(ts.iter().all(|t| !t.has_link));
    }
}
