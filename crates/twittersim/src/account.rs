//! Account identities and profiles.
//!
//! A [`Profile`] carries exactly the attributes the surveyed detectors
//! inspect (§II): follower/friend/status counts, account age, default
//! profile image, and bio/location presence. Counts are stored on the
//! profile (authoritative), while the follow *lists* of audited targets live
//! in [`crate::graph`].

use crate::clock::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A unique account identifier, analogous to Twitter's numeric user id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AccountId(pub u64);

impl AccountId {
    /// The raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl From<u64> for AccountId {
    fn from(v: u64) -> Self {
        AccountId(v)
    }
}

/// An account profile as `GET users/lookup` would return it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Screen name (without the leading `@`).
    pub screen_name: String,
    /// Account creation time.
    pub created_at: SimTime,
    /// Number of accounts following this one. For scale-substituted targets
    /// this is the *nominal* count (see crate docs).
    pub followers_count: u64,
    /// Number of accounts this one follows ("friends" in API parlance).
    pub friends_count: u64,
    /// Lifetime number of tweets.
    pub statuses_count: u64,
    /// Time of the most recent tweet, if the account has ever tweeted.
    pub last_tweet_at: Option<SimTime>,
    /// Whether the account still uses the default profile image (the "egg").
    pub default_profile_image: bool,
    /// Whether the bio field is filled in.
    pub has_bio: bool,
    /// Whether the location field is filled in.
    pub has_location: bool,
}

impl Profile {
    /// Creates a minimal fresh profile: zero counts, never tweeted, default
    /// image, empty bio/location.
    pub fn new(screen_name: impl Into<String>, created_at: SimTime) -> Self {
        Self {
            screen_name: screen_name.into(),
            created_at,
            followers_count: 0,
            friends_count: 0,
            statuses_count: 0,
            last_tweet_at: None,
            default_profile_image: true,
            has_bio: false,
            has_location: false,
        }
    }

    /// The follower/friend ratio `friends / followers` used by several
    /// tools ("fake accounts tend to follow a lot of people but don't have
    /// many followers"). Returns `friends_count` as-is when the account has
    /// zero followers (the most suspicious case).
    pub fn following_follower_ratio(&self) -> f64 {
        if self.followers_count == 0 {
            self.friends_count as f64
        } else {
            self.friends_count as f64 / self.followers_count as f64
        }
    }

    /// Account age at `now`. Zero if `now` precedes creation.
    pub fn age_at(&self, now: SimTime) -> crate::clock::SimDuration {
        if now <= self.created_at {
            crate::clock::SimDuration::ZERO
        } else {
            now - self.created_at
        }
    }

    /// Whether the account has never tweeted.
    pub fn never_tweeted(&self) -> bool {
        self.statuses_count == 0
    }

    /// Seconds since the last tweet at `now`, or `None` if never tweeted.
    pub fn seconds_since_last_tweet(&self, now: SimTime) -> Option<u64> {
        self.last_tweet_at
            .map(|t| if now <= t { 0 } else { (now - t).as_secs() })
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "@{} (followers={} friends={} tweets={})",
            self.screen_name, self.followers_count, self.friends_count, self.statuses_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SimDuration, SimTime};

    #[test]
    fn account_id_display_and_conversion() {
        let id = AccountId::from(42u64);
        assert_eq!(id.to_string(), "u42");
        assert_eq!(id.as_u64(), 42);
    }

    #[test]
    fn fresh_profile_defaults() {
        let p = Profile::new("alice", SimTime::from_days(10));
        assert!(p.never_tweeted());
        assert!(p.default_profile_image);
        assert!(!p.has_bio);
        assert_eq!(p.followers_count, 0);
        assert_eq!(p.seconds_since_last_tweet(SimTime::from_days(11)), None);
    }

    #[test]
    fn ratio_with_followers() {
        let mut p = Profile::new("bob", SimTime::EPOCH);
        p.friends_count = 500;
        p.followers_count = 10;
        assert_eq!(p.following_follower_ratio(), 50.0);
    }

    #[test]
    fn ratio_with_zero_followers() {
        let mut p = Profile::new("bot", SimTime::EPOCH);
        p.friends_count = 2000;
        assert_eq!(p.following_follower_ratio(), 2000.0);
    }

    #[test]
    fn age_clamps_at_zero() {
        let p = Profile::new("c", SimTime::from_days(100));
        assert_eq!(p.age_at(SimTime::from_days(50)), SimDuration::ZERO);
        assert_eq!(
            p.age_at(SimTime::from_days(130)),
            SimDuration::from_days(30)
        );
    }

    #[test]
    fn seconds_since_last_tweet() {
        let mut p = Profile::new("d", SimTime::EPOCH);
        p.last_tweet_at = Some(SimTime::from_secs(1_000));
        p.statuses_count = 1;
        assert_eq!(
            p.seconds_since_last_tweet(SimTime::from_secs(1_500)),
            Some(500)
        );
        // A clock observed before the tweet clamps at zero.
        assert_eq!(p.seconds_since_last_tweet(SimTime::from_secs(900)), Some(0));
    }

    #[test]
    fn profile_display_mentions_counts() {
        let mut p = Profile::new("e", SimTime::EPOCH);
        p.followers_count = 7;
        assert!(p.to_string().contains("@e"));
        assert!(p.to_string().contains("followers=7"));
    }
}
