//! Tweets and the per-tweet features the detectors test.

use crate::account::AccountId;
use crate::clock::SimTime;
use crate::text;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a tweet, as the Socialbakers criteria distinguish them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TweetKind {
    /// An original status update.
    Original,
    /// A retweet of someone else's status.
    Retweet,
    /// A reply to another account.
    Reply,
}

impl fmt::Display for TweetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TweetKind::Original => write!(f, "original"),
            TweetKind::Retweet => write!(f, "retweet"),
            TweetKind::Reply => write!(f, "reply"),
        }
    }
}

/// The client a tweet was posted from, as the API's `source` field exposes
/// it. Chu et al. ("human, bot, or cyborg?", cited in §II) showed the
/// device mix separates automation from people: bots post through the API
/// or schedulers, humans through the web and official mobile apps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TweetSource {
    /// The twitter.com web client.
    Web,
    /// Official mobile apps.
    Mobile,
    /// Third-party apps posting through the REST API.
    Api,
    /// Scheduling/automation services (the strongest bot signal).
    Scheduler,
}

impl TweetSource {
    /// Whether this source indicates automated posting.
    pub fn is_automated(self) -> bool {
        matches!(self, TweetSource::Api | TweetSource::Scheduler)
    }
}

impl fmt::Display for TweetSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TweetSource::Web => write!(f, "web"),
            TweetSource::Mobile => write!(f, "mobile"),
            TweetSource::Api => write!(f, "api"),
            TweetSource::Scheduler => write!(f, "scheduler"),
        }
    }
}

/// A tweet as `GET statuses/user_timeline` would return it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tweet {
    /// Tweet id, unique per author timeline.
    pub id: u64,
    /// The author.
    pub author: AccountId,
    /// Posting time.
    pub created_at: SimTime,
    /// Tweet body.
    pub text: String,
    /// Original / retweet / reply.
    pub kind: TweetKind,
    /// Whether the body carries a URL.
    pub has_link: bool,
    /// The posting client.
    pub source: TweetSource,
}

impl Tweet {
    /// Whether the body contains a spam phrase
    /// (see [`text::SPAM_PHRASES`]).
    pub fn is_spammy(&self) -> bool {
        text::contains_spam_phrase(&self.text)
    }

    /// Stable fingerprint of the body, for duplicate detection.
    pub fn fingerprint(&self) -> u64 {
        text::fingerprint(&self.text)
    }

    /// Whether this tweet is a retweet.
    pub fn is_retweet(&self) -> bool {
        self.kind == TweetKind::Retweet
    }
}

impl fmt::Display for Tweet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {}",
            self.author, self.id, self.kind, self.text
        )
    }
}

/// Aggregate statistics over a set of tweets — the timeline-derived features
/// the detectors and the ML feature extractor consume.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimelineStats {
    /// Number of tweets inspected.
    pub count: usize,
    /// Fraction that are retweets (0 when `count == 0`).
    pub retweet_frac: f64,
    /// Fraction carrying links.
    pub link_frac: f64,
    /// Fraction containing spam phrases.
    pub spam_frac: f64,
    /// Fraction posted from automated sources (API/scheduler).
    pub automated_frac: f64,
    /// Size of the largest group of identical (by fingerprint) tweets.
    pub max_duplicates: usize,
    /// Time of the newest tweet inspected.
    pub newest: Option<SimTime>,
    /// Time of the oldest tweet inspected.
    pub oldest: Option<SimTime>,
}

impl TimelineStats {
    /// Computes statistics over `tweets` (any order).
    pub fn compute(tweets: &[Tweet]) -> Self {
        if tweets.is_empty() {
            return Self::default();
        }
        let n = tweets.len() as f64;
        let mut dup_counts: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();
        let mut retweets = 0usize;
        let mut links = 0usize;
        let mut spam = 0usize;
        let mut automated = 0usize;
        let mut newest = tweets[0].created_at;
        let mut oldest = tweets[0].created_at;
        for t in tweets {
            if t.is_retweet() {
                retweets += 1;
            }
            if t.has_link {
                links += 1;
            }
            if t.is_spammy() {
                spam += 1;
            }
            if t.source.is_automated() {
                automated += 1;
            }
            *dup_counts.entry(t.fingerprint()).or_insert(0) += 1;
            newest = newest.max(t.created_at);
            oldest = oldest.min(t.created_at);
        }
        Self {
            count: tweets.len(),
            retweet_frac: retweets as f64 / n,
            link_frac: links as f64 / n,
            spam_frac: spam as f64 / n,
            automated_frac: automated as f64 / n,
            max_duplicates: dup_counts.values().copied().max().unwrap_or(0),
            newest: Some(newest),
            oldest: Some(oldest),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tweet(id: u64, kind: TweetKind, text: &str, link: bool, at: i64) -> Tweet {
        Tweet {
            id,
            author: AccountId(1),
            created_at: SimTime::from_secs(at),
            text: text.to_string(),
            kind,
            has_link: link,
            source: TweetSource::Web,
        }
    }

    #[test]
    fn spam_detection_delegates_to_lexicon() {
        let t = tweet(1, TweetKind::Original, "best diet ever", false, 0);
        assert!(t.is_spammy());
        let u = tweet(2, TweetKind::Original, "nice day in Pisa", false, 0);
        assert!(!u.is_spammy());
    }

    #[test]
    fn stats_of_empty_timeline() {
        let s = TimelineStats::compute(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_duplicates, 0);
        assert!(s.newest.is_none());
    }

    #[test]
    fn stats_fractions() {
        let ts = vec![
            tweet(1, TweetKind::Retweet, "a", true, 10),
            tweet(2, TweetKind::Original, "b", false, 20),
            tweet(3, TweetKind::Retweet, "make money now", true, 30),
            tweet(4, TweetKind::Reply, "d", false, 5),
        ];
        let s = TimelineStats::compute(&ts);
        assert_eq!(s.count, 4);
        assert_eq!(s.retweet_frac, 0.5);
        assert_eq!(s.link_frac, 0.5);
        assert_eq!(s.spam_frac, 0.25);
        assert_eq!(s.newest, Some(SimTime::from_secs(30)));
        assert_eq!(s.oldest, Some(SimTime::from_secs(5)));
    }

    #[test]
    fn stats_duplicates() {
        let ts = vec![
            tweet(1, TweetKind::Original, "BUY NOW", false, 1),
            tweet(2, TweetKind::Original, "buy now", false, 2),
            tweet(3, TweetKind::Original, "buy  now", false, 3),
            tweet(4, TweetKind::Original, "something else", false, 4),
        ];
        let s = TimelineStats::compute(&ts);
        assert_eq!(s.max_duplicates, 3, "normalised duplicates must group");
    }

    #[test]
    fn kind_display() {
        assert_eq!(TweetKind::Retweet.to_string(), "retweet");
        assert_eq!(TweetSource::Scheduler.to_string(), "scheduler");
    }

    #[test]
    fn automated_sources() {
        assert!(TweetSource::Api.is_automated());
        assert!(TweetSource::Scheduler.is_automated());
        assert!(!TweetSource::Web.is_automated());
        assert!(!TweetSource::Mobile.is_automated());
    }

    #[test]
    fn stats_count_automation() {
        let mut a = tweet(1, TweetKind::Original, "a", false, 1);
        a.source = TweetSource::Scheduler;
        let b = tweet(2, TweetKind::Original, "b", false, 2);
        let s = TimelineStats::compute(&[a, b]);
        assert_eq!(s.automated_frac, 0.5);
    }
}
