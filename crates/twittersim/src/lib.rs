//! Synthetic Twitter platform for the *fakeaudit* reproduction.
//!
//! The paper's substrate is the live 2014 Twitter platform; this crate is the
//! faithful synthetic replacement (DESIGN.md §2). It models the pieces the
//! paper's arguments actually touch:
//!
//! * [`clock`] — a virtual clock ([`clock::SimClock`]); every "second" in the
//!   reproduced tables is simulated time, so experiments that took the
//!   authors 27 wall-clock days run in milliseconds;
//! * [`account`] — account identities and profiles with the attributes the
//!   detectors inspect (follower/friend/status counts, creation date,
//!   default profile image, bio/location presence);
//! * [`tweet`] — tweets with the features Socialbakers' criteria test
//!   (retweets, links, spam phrases, duplicated text);
//! * [`timeline`] — a compact generative model of an account's timeline from
//!   which concrete tweets are synthesised deterministically on demand
//!   (materialising 200 tweets × 200 000 followers eagerly would be waste);
//! * [`text`] — the spam-phrase lexicon and tweet-text synthesiser;
//! * [`graph`] — the follow graph; follower lists are ordered by follow
//!   time, the property §IV-B of the paper establishes for the real API;
//! * [`platform`] — the assembled platform: accounts + graph + clock;
//! * [`snapshot`] — daily follower-list snapshots for the ordering
//!   experiment (E1).
//!
//! # Scale substitution
//!
//! Accounts with tens of millions of followers (e.g. @BarackObama's 41 M)
//! are simulated with a *materialised* follower list capped in the hundred-
//! thousands plus a **nominal** follower count used for rate-limit
//! arithmetic and display. Percentage results are scale-invariant as long as
//! the materialised list preserves the temporal class mixture, which the
//! population generator guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod clock;
pub mod graph;
pub mod platform;
pub mod snapshot;
pub mod text;
pub mod timeline;
pub mod tweet;

pub use account::{AccountId, Profile};
pub use clock::{SimClock, SimDuration, SimTime};
pub use platform::Platform;
pub use tweet::{Tweet, TweetKind};
