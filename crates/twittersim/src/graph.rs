//! The follow graph.
//!
//! Follower lists are stored in **follow order** (oldest first); the API
//! view [`FollowGraph::followers_newest_first`] reverses them, reproducing
//! the property §IV-B establishes for the real `GET followers/ids`: a
//! size-`n` prefix of the API response is exactly the `n` most recent
//! followers.

use crate::account::AccountId;
use crate::clock::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A directed follow edge: `follower` started following at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FollowEdge {
    /// The account doing the following.
    pub follower: AccountId,
    /// When the follow happened.
    pub at: SimTime,
}

/// Errors returned by graph mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// The follower already follows the target.
    AlreadyFollowing {
        /// Offending follower.
        follower: AccountId,
        /// Followed target.
        target: AccountId,
    },
    /// An account tried to follow itself.
    SelfFollow(
        /// The account in question.
        AccountId,
    ),
    /// Follow times must be non-decreasing per target list.
    NonMonotonicTime {
        /// Target whose list would go backwards.
        target: AccountId,
    },
    /// Unfollow of an edge that does not exist.
    NotFollowing {
        /// The presumed follower.
        follower: AccountId,
        /// The presumed target.
        target: AccountId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::AlreadyFollowing { follower, target } => {
                write!(f, "{follower} already follows {target}")
            }
            GraphError::SelfFollow(id) => write!(f, "{id} cannot follow itself"),
            GraphError::NonMonotonicTime { target } => {
                write!(f, "follow times for {target} must be non-decreasing")
            }
            GraphError::NotFollowing { follower, target } => {
                write!(f, "{follower} does not follow {target}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// The follow graph: per-target follower lists in follow order, plus a
/// reverse index of who each account follows.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FollowGraph {
    /// target -> followers in follow order (oldest first).
    followers: HashMap<AccountId, Vec<FollowEdge>>,
    /// follower -> set of targets (kept as a Vec; each account follows few
    /// audited targets in our scenarios).
    friends: HashMap<AccountId, Vec<AccountId>>,
}

impl FollowGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `follower` starts following `target` at time `at`.
    ///
    /// Follow times for a given target must be non-decreasing — the
    /// simulation always appends the newest follower at the tail.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfFollow`], [`GraphError::AlreadyFollowing`] or
    /// [`GraphError::NonMonotonicTime`].
    pub fn follow(
        &mut self,
        follower: AccountId,
        target: AccountId,
        at: SimTime,
    ) -> Result<(), GraphError> {
        if follower == target {
            return Err(GraphError::SelfFollow(follower));
        }
        if self
            .friends
            .get(&follower)
            .is_some_and(|v| v.contains(&target))
        {
            return Err(GraphError::AlreadyFollowing { follower, target });
        }
        let list = self.followers.entry(target).or_default();
        if list.last().is_some_and(|e| e.at > at) {
            return Err(GraphError::NonMonotonicTime { target });
        }
        list.push(FollowEdge { follower, at });
        self.friends.entry(follower).or_default().push(target);
        Ok(())
    }

    /// Removes the `follower -> target` edge, preserving the follow order
    /// of the remaining followers (unfollows churn the paper's daily
    /// snapshots without perturbing positions — §IV-B).
    ///
    /// # Errors
    ///
    /// [`GraphError::NotFollowing`] when the edge does not exist.
    pub fn unfollow(&mut self, follower: AccountId, target: AccountId) -> Result<(), GraphError> {
        let not_following = GraphError::NotFollowing { follower, target };
        let friends = self.friends.get_mut(&follower).ok_or(not_following)?;
        let fpos = friends
            .iter()
            .position(|&t| t == target)
            .ok_or(not_following)?;
        friends.remove(fpos);
        let list = self.followers.get_mut(&target).ok_or(not_following)?;
        let pos = list
            .iter()
            .position(|e| e.follower == follower)
            .ok_or(not_following)?;
        list.remove(pos);
        Ok(())
    }

    /// Number of followers of `target`.
    pub fn follower_count(&self, target: AccountId) -> usize {
        self.followers.get(&target).map_or(0, Vec::len)
    }

    /// The follower edges of `target` in follow order (oldest first).
    pub fn followers_oldest_first(&self, target: AccountId) -> &[FollowEdge] {
        self.followers.get(&target).map_or(&[], Vec::as_slice)
    }

    /// The follower ids of `target` newest first — the order the simulated
    /// `GET followers/ids` returns them (§IV-B).
    pub fn followers_newest_first(&self, target: AccountId) -> Vec<AccountId> {
        self.followers
            .get(&target)
            .map_or_else(Vec::new, |v| v.iter().rev().map(|e| e.follower).collect())
    }

    /// The targets `follower` follows, in follow order.
    pub fn friends_of(&self, follower: AccountId) -> &[AccountId] {
        self.friends.get(&follower).map_or(&[], Vec::as_slice)
    }

    /// Whether `follower` follows `target`.
    pub fn is_following(&self, follower: AccountId, target: AccountId) -> bool {
        self.friends
            .get(&follower)
            .is_some_and(|v| v.contains(&target))
    }

    /// Iterates over all audited targets (accounts with ≥1 follower edge).
    pub fn targets(&self) -> impl Iterator<Item = AccountId> + '_ {
        self.followers.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn follow_appends_in_order() {
        let mut g = FollowGraph::new();
        g.follow(AccountId(1), AccountId(100), t(10)).unwrap();
        g.follow(AccountId(2), AccountId(100), t(20)).unwrap();
        g.follow(AccountId(3), AccountId(100), t(30)).unwrap();
        let oldest = g.followers_oldest_first(AccountId(100));
        assert_eq!(
            oldest.iter().map(|e| e.follower).collect::<Vec<_>>(),
            vec![AccountId(1), AccountId(2), AccountId(3)]
        );
    }

    #[test]
    fn api_view_is_newest_first() {
        let mut g = FollowGraph::new();
        for i in 1..=5 {
            g.follow(AccountId(i), AccountId(100), t(i as i64)).unwrap();
        }
        let api = g.followers_newest_first(AccountId(100));
        assert_eq!(
            api,
            vec![
                AccountId(5),
                AccountId(4),
                AccountId(3),
                AccountId(2),
                AccountId(1)
            ]
        );
    }

    #[test]
    fn prefix_of_api_view_is_most_recent() {
        // The §IV-B invariant: the first n returned ids are the n newest.
        let mut g = FollowGraph::new();
        for i in 0..100u64 {
            g.follow(AccountId(i), AccountId(999), t(i as i64)).unwrap();
        }
        let api = g.followers_newest_first(AccountId(999));
        let prefix: Vec<_> = api[..10].to_vec();
        let expected: Vec<_> = (90..100u64).rev().map(AccountId).collect();
        assert_eq!(prefix, expected);
    }

    #[test]
    fn rejects_self_follow() {
        let mut g = FollowGraph::new();
        assert_eq!(
            g.follow(AccountId(1), AccountId(1), t(0)).unwrap_err(),
            GraphError::SelfFollow(AccountId(1))
        );
    }

    #[test]
    fn rejects_duplicate_follow() {
        let mut g = FollowGraph::new();
        g.follow(AccountId(1), AccountId(2), t(0)).unwrap();
        assert!(matches!(
            g.follow(AccountId(1), AccountId(2), t(5)),
            Err(GraphError::AlreadyFollowing { .. })
        ));
    }

    #[test]
    fn rejects_time_going_backwards() {
        let mut g = FollowGraph::new();
        g.follow(AccountId(1), AccountId(9), t(100)).unwrap();
        assert!(matches!(
            g.follow(AccountId(2), AccountId(9), t(50)),
            Err(GraphError::NonMonotonicTime { .. })
        ));
    }

    #[test]
    fn equal_times_are_allowed() {
        let mut g = FollowGraph::new();
        g.follow(AccountId(1), AccountId(9), t(100)).unwrap();
        g.follow(AccountId(2), AccountId(9), t(100)).unwrap();
        assert_eq!(g.follower_count(AccountId(9)), 2);
    }

    #[test]
    fn friends_reverse_index() {
        let mut g = FollowGraph::new();
        g.follow(AccountId(1), AccountId(10), t(0)).unwrap();
        g.follow(AccountId(1), AccountId(11), t(1)).unwrap();
        assert_eq!(g.friends_of(AccountId(1)), &[AccountId(10), AccountId(11)]);
        assert!(g.is_following(AccountId(1), AccountId(10)));
        assert!(!g.is_following(AccountId(1), AccountId(12)));
    }

    #[test]
    fn empty_graph_queries() {
        let g = FollowGraph::new();
        assert_eq!(g.follower_count(AccountId(1)), 0);
        assert!(g.followers_newest_first(AccountId(1)).is_empty());
        assert!(g.friends_of(AccountId(1)).is_empty());
        assert_eq!(g.targets().count(), 0);
    }

    #[test]
    fn unfollow_removes_edge_and_preserves_order() {
        let mut g = FollowGraph::new();
        for i in 1..=5 {
            g.follow(AccountId(i), AccountId(100), t(i as i64)).unwrap();
        }
        g.unfollow(AccountId(3), AccountId(100)).unwrap();
        assert_eq!(g.follower_count(AccountId(100)), 4);
        assert!(!g.is_following(AccountId(3), AccountId(100)));
        assert_eq!(
            g.followers_newest_first(AccountId(100)),
            vec![AccountId(5), AccountId(4), AccountId(2), AccountId(1)]
        );
    }

    #[test]
    fn unfollow_of_missing_edge_errors() {
        let mut g = FollowGraph::new();
        g.follow(AccountId(1), AccountId(2), t(0)).unwrap();
        assert!(matches!(
            g.unfollow(AccountId(1), AccountId(3)),
            Err(GraphError::NotFollowing { .. })
        ));
        assert!(matches!(
            g.unfollow(AccountId(9), AccountId(2)),
            Err(GraphError::NotFollowing { .. })
        ));
    }

    #[test]
    fn refollow_after_unfollow_lands_at_tail() {
        let mut g = FollowGraph::new();
        g.follow(AccountId(1), AccountId(9), t(0)).unwrap();
        g.follow(AccountId(2), AccountId(9), t(1)).unwrap();
        g.unfollow(AccountId(1), AccountId(9)).unwrap();
        g.follow(AccountId(1), AccountId(9), t(5)).unwrap();
        assert_eq!(
            g.followers_newest_first(AccountId(9)),
            vec![AccountId(1), AccountId(2)]
        );
    }

    #[test]
    fn targets_lists_followed_accounts() {
        let mut g = FollowGraph::new();
        g.follow(AccountId(1), AccountId(10), t(0)).unwrap();
        g.follow(AccountId(2), AccountId(20), t(0)).unwrap();
        let mut ts: Vec<_> = g.targets().collect();
        ts.sort();
        assert_eq!(ts, vec![AccountId(10), AccountId(20)]);
    }
}
