//! Virtual time.
//!
//! All timing results in the reproduction (Table II response times, the
//! 27-day Obama crawl) are *simulated*: they are derived from API call
//! schedules against [`SimClock`], never from the wall clock. This makes
//! every experiment instantaneous and bit-reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Seconds in a simulated minute/hour/day.
pub const SECS_PER_MINUTE: i64 = 60;
/// Seconds in a simulated hour.
pub const SECS_PER_HOUR: i64 = 3_600;
/// Seconds in a simulated day.
pub const SECS_PER_DAY: i64 = 86_400;

/// A point in simulated time, in whole seconds since the simulation epoch.
///
/// The epoch is arbitrary; the reproduction uses "seconds since 2006-03-21"
/// (Twitter's launch) purely as a mnemonic.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(i64);

impl SimTime {
    /// The simulation epoch.
    pub const EPOCH: SimTime = SimTime(0);

    /// Creates a time `secs` seconds after the epoch.
    pub fn from_secs(secs: i64) -> Self {
        SimTime(secs)
    }

    /// Creates a time `days` days after the epoch.
    pub fn from_days(days: i64) -> Self {
        SimTime(days * SECS_PER_DAY)
    }

    /// Seconds since the epoch.
    pub fn as_secs(self) -> i64 {
        self.0
    }

    /// Whole days since the epoch (floor).
    pub fn as_days(self) -> i64 {
        self.0.div_euclid(SECS_PER_DAY)
    }

    /// The absolute duration between two times.
    pub fn abs_diff(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.abs_diff(other.0))
    }

    /// `self + duration`, saturating at the representable maximum.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0 as i64))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0 as i64)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0 as i64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics (in debug) if `rhs` is later than `self`; use
    /// [`SimTime::abs_diff`] for unordered operands.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction would underflow");
        SimDuration((self.0 - rhs.0) as u64)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let days = self.as_days();
        let rem = self.0 - days * SECS_PER_DAY;
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            days,
            rem / SECS_PER_HOUR,
            (rem % SECS_PER_HOUR) / SECS_PER_MINUTE,
            rem % SECS_PER_MINUTE
        )
    }
}

/// A non-negative span of simulated time, in whole seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `secs` seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a duration of `mins` minutes.
    pub fn from_mins(mins: u64) -> Self {
        SimDuration(mins * SECS_PER_MINUTE as u64)
    }

    /// Creates a duration of `days` days.
    pub fn from_days(days: u64) -> Self {
        SimDuration(days * SECS_PER_DAY as u64)
    }

    /// The duration in seconds.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// The duration in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / SECS_PER_DAY as f64
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= SECS_PER_DAY as u64 {
            write!(f, "{:.1}d", self.as_days_f64())
        } else if self.0 >= SECS_PER_HOUR as u64 {
            write!(f, "{:.1}h", self.0 as f64 / SECS_PER_HOUR as f64)
        } else {
            write!(f, "{}s", self.0)
        }
    }
}

/// A monotonically advancing virtual clock.
///
/// ```
/// use fakeaudit_twittersim::clock::{SimClock, SimDuration, SimTime};
/// let mut clock = SimClock::new();
/// clock.advance(SimDuration::from_mins(2));
/// assert_eq!(clock.now(), SimTime::from_secs(120));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Creates a clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at `t`.
    pub fn starting_at(t: SimTime) -> Self {
        Self { now: t }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Advances the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time — the clock is
    /// monotone.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "SimClock must not move backwards");
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(100);
        let u = t + SimDuration::from_secs(20);
        assert_eq!(u.as_secs(), 120);
        assert_eq!(u - t, SimDuration::from_secs(20));
    }

    #[test]
    fn day_conversions() {
        assert_eq!(SimTime::from_days(3).as_secs(), 3 * 86_400);
        assert_eq!(SimTime::from_secs(2 * 86_400 + 5).as_days(), 2);
        assert_eq!(SimDuration::from_days(27).as_days_f64(), 27.0);
    }

    #[test]
    fn negative_time_floor_division() {
        assert_eq!(SimTime::from_secs(-1).as_days(), -1);
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(30);
        assert_eq!(a.abs_diff(b), b.abs_diff(a));
        assert_eq!(a.abs_diff(b).as_secs(), 20);
    }

    #[test]
    fn clock_advances() {
        let mut c = SimClock::new();
        c.advance(SimDuration::from_mins(1));
        c.advance(SimDuration::from_secs(30));
        assert_eq!(c.now().as_secs(), 90);
    }

    #[test]
    #[should_panic(expected = "must not move backwards")]
    fn clock_is_monotone() {
        let mut c = SimClock::starting_at(SimTime::from_secs(100));
        c.advance_to(SimTime::from_secs(99));
    }

    #[test]
    fn duration_display() {
        assert_eq!(SimDuration::from_secs(45).to_string(), "45s");
        assert_eq!(SimDuration::from_secs(7_200).to_string(), "2.0h");
        assert_eq!(SimDuration::from_days(27).to_string(), "27.0d");
    }

    #[test]
    fn time_display() {
        assert_eq!(SimTime::from_secs(90_061).to_string(), "d1+01:01:01");
    }

    #[test]
    fn duration_checked_sub() {
        let a = SimDuration::from_secs(10);
        let b = SimDuration::from_secs(4);
        assert_eq!(a.checked_sub(b), Some(SimDuration::from_secs(6)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    fn saturating_add_caps() {
        let t = SimTime::from_secs(i64::MAX - 1);
        let u = t.saturating_add(SimDuration::from_secs(100));
        assert_eq!(u.as_secs(), i64::MAX);
    }
}
