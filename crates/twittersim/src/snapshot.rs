//! Follower-list snapshots for the ordering experiment (§IV-B / E1).
//!
//! The paper's first experiment saved each target's full follower list once
//! per day and compared the lists day by day, verifying that new followers
//! always appear at one end — establishing that the API's order is follow
//! time and therefore that prefix samples are biased towards the newest
//! followers. [`SnapshotSeries`] reproduces that methodology.

use crate::account::AccountId;
use crate::clock::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// One saved follower list (newest first, as the API returns it).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// When the list was fetched.
    pub taken_at: SimTime,
    /// Follower ids, newest first.
    pub followers: Vec<AccountId>,
}

/// Result of comparing two consecutive snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotDiff {
    /// Followers present in the later snapshot but not the earlier.
    pub added: Vec<AccountId>,
    /// Followers present in the earlier snapshot but not the later
    /// (unfollows — rare in our scenarios).
    pub removed: Vec<AccountId>,
    /// Whether every added follower sits at the head of the later list,
    /// before all carried-over followers — the paper's thesis.
    pub additions_at_head: bool,
}

/// Errors from snapshot-series operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// Snapshots must be appended in time order.
    OutOfOrder,
    /// At least two snapshots are needed to diff.
    TooFewSnapshots,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::OutOfOrder => write!(f, "snapshots must be appended in time order"),
            SnapshotError::TooFewSnapshots => write!(f, "need at least two snapshots to diff"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A time-ordered series of follower-list snapshots for one target.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotSeries {
    snapshots: Vec<Snapshot>,
}

impl SnapshotSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::OutOfOrder`] if `taken_at` precedes the last
    /// snapshot.
    pub fn push(
        &mut self,
        taken_at: SimTime,
        followers: Vec<AccountId>,
    ) -> Result<(), SnapshotError> {
        if self.snapshots.last().is_some_and(|s| s.taken_at > taken_at) {
            return Err(SnapshotError::OutOfOrder);
        }
        self.snapshots.push(Snapshot {
            taken_at,
            followers,
        });
        Ok(())
    }

    /// Number of snapshots collected.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The stored snapshots, oldest first.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Diffs consecutive snapshots `i` and `i+1`.
    fn diff_pair(earlier: &Snapshot, later: &Snapshot) -> SnapshotDiff {
        let before: HashSet<_> = earlier.followers.iter().copied().collect();
        let after: HashSet<_> = later.followers.iter().copied().collect();
        let added: Vec<_> = later
            .followers
            .iter()
            .copied()
            .filter(|f| !before.contains(f))
            .collect();
        let removed: Vec<_> = earlier
            .followers
            .iter()
            .copied()
            .filter(|f| !after.contains(f))
            .collect();
        // Thesis check: in the later (newest-first) list, all additions
        // occupy the leading positions.
        let additions_at_head = later
            .followers
            .iter()
            .take_while(|f| !before.contains(*f))
            .count()
            == added.len();
        SnapshotDiff {
            added,
            removed,
            additions_at_head,
        }
    }

    /// Diffs every consecutive snapshot pair, oldest first.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TooFewSnapshots`] with fewer than two snapshots.
    pub fn diffs(&self) -> Result<Vec<SnapshotDiff>, SnapshotError> {
        if self.snapshots.len() < 2 {
            return Err(SnapshotError::TooFewSnapshots);
        }
        Ok(self
            .snapshots
            .windows(2)
            .map(|w| Self::diff_pair(&w[0], &w[1]))
            .collect())
    }

    /// The paper's verdict: do **all** consecutive diffs place new
    /// followers at the head of the (newest-first) list?
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TooFewSnapshots`] with fewer than two snapshots.
    pub fn confirms_follow_time_ordering(&self) -> Result<bool, SnapshotError> {
        Ok(self.diffs()?.iter().all(|d| d.additions_at_head))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<AccountId> {
        v.iter().copied().map(AccountId).collect()
    }

    #[test]
    fn push_enforces_time_order() {
        let mut s = SnapshotSeries::new();
        s.push(SimTime::from_days(1), ids(&[1])).unwrap();
        assert_eq!(
            s.push(SimTime::from_days(0), ids(&[1])).unwrap_err(),
            SnapshotError::OutOfOrder
        );
    }

    #[test]
    fn equal_times_allowed() {
        let mut s = SnapshotSeries::new();
        s.push(SimTime::from_days(1), ids(&[1])).unwrap();
        s.push(SimTime::from_days(1), ids(&[2, 1])).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn diff_requires_two_snapshots() {
        let mut s = SnapshotSeries::new();
        assert_eq!(s.diffs().unwrap_err(), SnapshotError::TooFewSnapshots);
        s.push(SimTime::EPOCH, ids(&[1])).unwrap();
        assert_eq!(s.diffs().unwrap_err(), SnapshotError::TooFewSnapshots);
    }

    #[test]
    fn additions_at_head_confirmed() {
        let mut s = SnapshotSeries::new();
        // Newest-first lists: day 1 has followers 3,2,1; day 2 adds 5,4.
        s.push(SimTime::from_days(1), ids(&[3, 2, 1])).unwrap();
        s.push(SimTime::from_days(2), ids(&[5, 4, 3, 2, 1]))
            .unwrap();
        let d = &s.diffs().unwrap()[0];
        assert_eq!(d.added, ids(&[5, 4]));
        assert!(d.removed.is_empty());
        assert!(d.additions_at_head);
        assert!(s.confirms_follow_time_ordering().unwrap());
    }

    #[test]
    fn additions_in_middle_refute_thesis() {
        let mut s = SnapshotSeries::new();
        s.push(SimTime::from_days(1), ids(&[3, 2, 1])).unwrap();
        // 4 inserted between existing followers: not follow-time order.
        s.push(SimTime::from_days(2), ids(&[3, 4, 2, 1])).unwrap();
        let d = &s.diffs().unwrap()[0];
        assert_eq!(d.added, ids(&[4]));
        assert!(!d.additions_at_head);
        assert!(!s.confirms_follow_time_ordering().unwrap());
    }

    #[test]
    fn unfollows_are_reported_as_removed() {
        let mut s = SnapshotSeries::new();
        s.push(SimTime::from_days(1), ids(&[3, 2, 1])).unwrap();
        s.push(SimTime::from_days(2), ids(&[4, 3, 1])).unwrap();
        let d = &s.diffs().unwrap()[0];
        assert_eq!(d.added, ids(&[4]));
        assert_eq!(d.removed, ids(&[2]));
        assert!(d.additions_at_head);
    }

    #[test]
    fn no_change_diff() {
        let mut s = SnapshotSeries::new();
        s.push(SimTime::from_days(1), ids(&[2, 1])).unwrap();
        s.push(SimTime::from_days(2), ids(&[2, 1])).unwrap();
        let d = &s.diffs().unwrap()[0];
        assert!(d.added.is_empty());
        assert!(d.removed.is_empty());
        assert!(d.additions_at_head);
    }

    #[test]
    fn multi_day_series() {
        let mut s = SnapshotSeries::new();
        let mut list = Vec::new();
        for day in 0..10u64 {
            // Two new followers per day, appended at the head.
            list.insert(0, AccountId(day * 2));
            list.insert(0, AccountId(day * 2 + 1));
            s.push(SimTime::from_days(day as i64), list.clone())
                .unwrap();
        }
        assert_eq!(s.diffs().unwrap().len(), 9);
        assert!(s.confirms_follow_time_ordering().unwrap());
    }
}
