//! Property-based tests for the synthetic platform's invariants.

use fakeaudit_twittersim::clock::{SimDuration, SimTime};
use fakeaudit_twittersim::graph::FollowGraph;
use fakeaudit_twittersim::snapshot::SnapshotSeries;
use fakeaudit_twittersim::text::{contains_spam_phrase, fingerprint};
use fakeaudit_twittersim::timeline::{TimelineModel, TimelineParams};
use fakeaudit_twittersim::tweet::TimelineStats;
use fakeaudit_twittersim::{AccountId, Platform, Profile};
use proptest::prelude::*;

proptest! {
    #[test]
    fn graph_api_view_reverses_follow_order(n in 1u64..200) {
        let mut g = FollowGraph::new();
        for i in 0..n {
            g.follow(AccountId(i), AccountId(10_000), SimTime::from_secs(i as i64))
                .unwrap();
        }
        let api = g.followers_newest_first(AccountId(10_000));
        prop_assert_eq!(api.len(), n as usize);
        // Position k in the API view is the (n-1-k)-th follower.
        for (k, id) in api.iter().enumerate() {
            prop_assert_eq!(*id, AccountId(n - 1 - k as u64));
        }
    }

    #[test]
    fn any_api_prefix_is_the_newest_followers(n in 2u64..300, prefix in 1usize..300) {
        let mut g = FollowGraph::new();
        for i in 0..n {
            g.follow(AccountId(i), AccountId(10_000), SimTime::from_secs(i as i64))
                .unwrap();
        }
        let api = g.followers_newest_first(AccountId(10_000));
        let k = prefix.min(api.len());
        // The §IV-B invariant for every prefix size.
        let newest: Vec<AccountId> = (0..k as u64).map(|j| AccountId(n - 1 - j)).collect();
        prop_assert_eq!(&api[..k], &newest[..]);
    }

    #[test]
    fn timeline_generation_is_prefix_stable(
        count in 0u64..400,
        short in 0usize..200,
        extra in 0usize..200,
        seed in 0u64..500,
    ) {
        let model = TimelineModel::new(
            TimelineParams {
                statuses_count: count,
                first_tweet_at: SimTime::from_days(0),
                last_tweet_at: SimTime::from_days(100),
                retweet_frac: 0.3,
                link_frac: 0.3,
                spam_frac: 0.2,
                duplicate_frac: 0.2,
                automated_frac: 0.2,
            },
            seed,
        );
        let a = model.recent_tweets(AccountId(1), short);
        let b = model.recent_tweets(AccountId(1), short + extra);
        prop_assert_eq!(&b[..a.len()], &a[..]);
    }

    #[test]
    fn timeline_tweets_are_newest_first_with_descending_ids(
        count in 1u64..300,
        seed in 0u64..500,
    ) {
        let model = TimelineModel::new(
            TimelineParams {
                statuses_count: count,
                first_tweet_at: SimTime::from_days(1),
                last_tweet_at: SimTime::from_days(50),
                ..TimelineParams::default()
            },
            seed,
        );
        let tweets = model.recent_tweets(AccountId(2), count as usize);
        for w in tweets.windows(2) {
            prop_assert!(w[0].created_at >= w[1].created_at);
            prop_assert!(w[0].id > w[1].id);
        }
        let stats = TimelineStats::compute(&tweets);
        prop_assert_eq!(stats.count, count as usize);
        prop_assert!(stats.retweet_frac >= 0.0 && stats.retweet_frac <= 1.0);
    }

    #[test]
    fn platform_counts_stay_consistent(follows in 1usize..100) {
        let mut platform = Platform::new();
        let target = platform
            .register(Profile::new("t", SimTime::EPOCH), TimelineModel::empty())
            .unwrap();
        for i in 0..follows {
            let f = platform
                .register(Profile::new(format!("f{i}"), SimTime::EPOCH), TimelineModel::empty())
                .unwrap();
            platform.advance_clock(SimDuration::from_secs(1));
            platform.follow(f, target).unwrap();
        }
        prop_assert_eq!(platform.profile(target).unwrap().followers_count, follows as u64);
        prop_assert_eq!(platform.materialized_follower_count(target), follows);
        prop_assert_eq!(platform.followers_newest_first(target).len(), follows);
    }

    #[test]
    fn snapshot_series_confirms_head_insertion(days in 2usize..30, per_day in 1usize..10) {
        let mut series = SnapshotSeries::new();
        let mut list: Vec<AccountId> = Vec::new();
        let mut next = 0u64;
        for day in 0..days {
            for _ in 0..per_day {
                list.insert(0, AccountId(next));
                next += 1;
            }
            series.push(SimTime::from_days(day as i64), list.clone()).unwrap();
        }
        prop_assert!(series.confirms_follow_time_ordering().unwrap());
    }

    #[test]
    fn snapshot_series_detects_mid_insertion(days in 2usize..10) {
        let mut series = SnapshotSeries::new();
        // Day 0: two followers; later days insert in the middle.
        let mut list = vec![AccountId(1), AccountId(0)];
        series.push(SimTime::from_days(0), list.clone()).unwrap();
        for day in 1..days {
            list.insert(1, AccountId(100 + day as u64));
            series.push(SimTime::from_days(day as i64), list.clone()).unwrap();
        }
        prop_assert!(!series.confirms_follow_time_ordering().unwrap());
    }

    #[test]
    fn fingerprint_normalisation(s in "[a-zA-Z ]{0,40}") {
        prop_assert_eq!(fingerprint(&s), fingerprint(&s.to_uppercase()));
        let doubled: String = s.replace(' ', "  ");
        prop_assert_eq!(fingerprint(&s), fingerprint(&doubled));
    }

    #[test]
    fn spam_detection_survives_case_mangling(idx in 0usize..8) {
        let phrase = fakeaudit_twittersim::text::SPAM_PHRASES[idx];
        let mangled: String = phrase
            .chars()
            .enumerate()
            .map(|(i, c)| if i % 2 == 0 { c.to_ascii_uppercase() } else { c })
            .collect();
        let text = format!("xx {mangled} yy");
        prop_assert!(contains_spam_phrase(&text));
    }

    #[test]
    fn sim_time_day_roundtrip(days in -10_000i64..10_000) {
        prop_assert_eq!(SimTime::from_days(days).as_days(), days);
    }

    #[test]
    fn sim_duration_addition_is_commutative(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        prop_assert_eq!(
            SimDuration::from_secs(a) + SimDuration::from_secs(b),
            SimDuration::from_secs(b) + SimDuration::from_secs(a)
        );
    }
}
