//! Gaussian naive Bayes.
//!
//! One of the classifier families the Fake Project methodology evaluated on
//! its gold standard before settling on decision forests ([12] §5 compares
//! several learners); included so E4 can reproduce a multi-learner
//! comparison rather than a single point.

use crate::dataset::Dataset;
use crate::tree::FitError;
use crate::Classifier;
use serde::{Deserialize, Serialize};

/// Per-class, per-feature Gaussian parameters plus a log-prior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNaiveBayes {
    /// `means[class][feature]`.
    means: Vec<Vec<f64>>,
    /// `variances[class][feature]`, floored for numerical stability.
    variances: Vec<Vec<f64>>,
    log_priors: Vec<f64>,
    arity: usize,
}

/// Variance floor: features that are constant within a class would
/// otherwise produce infinite densities.
const VAR_FLOOR: f64 = 1e-9;

impl GaussianNaiveBayes {
    /// Fits the model on `data`.
    ///
    /// Classes absent from the training set receive a `-inf` prior and are
    /// never predicted.
    ///
    /// # Errors
    ///
    /// [`FitError::EmptyTrainingSet`] when `data` is empty.
    pub fn fit(data: &Dataset) -> Result<Self, FitError> {
        if data.is_empty() {
            return Err(FitError::EmptyTrainingSet);
        }
        let classes = data.num_classes();
        let arity = data.arity();
        let counts = data.class_counts();
        let mut means = vec![vec![0.0; arity]; classes];
        let mut variances = vec![vec![0.0; arity]; classes];
        for (row, &label) in data.rows().iter().zip(data.labels()) {
            for (f, &v) in row.iter().enumerate() {
                means[label][f] += v;
            }
        }
        for (c, class_means) in means.iter_mut().enumerate() {
            if counts[c] == 0 {
                continue;
            }
            for m in class_means.iter_mut() {
                *m /= counts[c] as f64;
            }
        }
        for (row, &label) in data.rows().iter().zip(data.labels()) {
            for (f, &v) in row.iter().enumerate() {
                let d = v - means[label][f];
                variances[label][f] += d * d;
            }
        }
        for (c, class_vars) in variances.iter_mut().enumerate() {
            for v in class_vars.iter_mut() {
                *v = if counts[c] > 0 {
                    (*v / counts[c] as f64).max(VAR_FLOOR)
                } else {
                    VAR_FLOOR
                };
            }
        }
        let n = data.len() as f64;
        let log_priors = counts
            .iter()
            .map(|&k| {
                if k == 0 {
                    f64::NEG_INFINITY
                } else {
                    (k as f64 / n).ln()
                }
            })
            .collect();
        Ok(Self {
            means,
            variances,
            log_priors,
            arity,
        })
    }

    /// Joint log-likelihood of `features` under each class.
    pub fn log_likelihoods(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.arity, "feature arity mismatch");
        self.log_priors
            .iter()
            .enumerate()
            .map(|(c, &prior)| {
                if prior == f64::NEG_INFINITY {
                    return f64::NEG_INFINITY;
                }
                let mut ll = prior;
                for (f, &x) in features.iter().enumerate() {
                    let mean = self.means[c][f];
                    let var = self.variances[c][f];
                    ll += -0.5
                        * ((x - mean).powi(2) / var + var.ln() + (2.0 * std::f64::consts::PI).ln());
                }
                ll
            })
            .collect()
    }
}

impl Classifier for GaussianNaiveBayes {
    fn predict(&self, features: &[f64]) -> usize {
        self.log_likelihoods(features)
            .into_iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("log-likelihoods are comparable")
            })
            .map(|(i, _)| i)
            .expect("at least one class")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_stats::rng::rng_for;
    use rand::Rng;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn gaussian_clusters(n: usize, seed: u64, sep: f64) -> Dataset {
        let mut rng = rng_for(seed, "nb");
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let centre = label as f64 * sep;
            rows.push(vec![
                centre + fakeaudit_stats::dist::standard_normal(&mut rng),
                centre + fakeaudit_stats::dist::standard_normal(&mut rng),
            ]);
            labels.push(label);
        }
        Dataset::new(names(&["x", "y"]), names(&["a", "b"]), rows, labels).unwrap()
    }

    #[test]
    fn separable_gaussians_classify_well() {
        let train = gaussian_clusters(400, 1, 6.0);
        let test = gaussian_clusters(200, 2, 6.0);
        let nb = GaussianNaiveBayes::fit(&train).unwrap();
        let correct = test
            .rows()
            .iter()
            .zip(test.labels())
            .filter(|(r, &l)| nb.predict(r) == l)
            .count();
        assert!(correct >= 195, "accuracy {correct}/200");
    }

    #[test]
    fn respects_priors_on_imbalanced_data() {
        // 90% of rows are class 0 at the same location: ties break to the
        // majority class via the prior.
        let rows: Vec<Vec<f64>> = (0..100).map(|_| vec![0.0]).collect();
        let labels: Vec<usize> = (0..100).map(|i| usize::from(i >= 90)).collect();
        let d = Dataset::new(names(&["x"]), names(&["a", "b"]), rows, labels).unwrap();
        let nb = GaussianNaiveBayes::fit(&d).unwrap();
        assert_eq!(nb.predict(&[0.0]), 0);
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let rows = vec![
            vec![1.0, 5.0],
            vec![1.0, -5.0],
            vec![1.0, 5.1],
            vec![1.0, -5.1],
        ];
        let labels = vec![0, 1, 0, 1];
        let d = Dataset::new(names(&["const", "sig"]), names(&["a", "b"]), rows, labels).unwrap();
        let nb = GaussianNaiveBayes::fit(&d).unwrap();
        assert_eq!(nb.predict(&[1.0, 4.0]), 0);
        assert_eq!(nb.predict(&[1.0, -4.0]), 1);
        assert!(nb
            .log_likelihoods(&[1.0, 4.0])
            .iter()
            .all(|x| x.is_finite()));
    }

    #[test]
    fn absent_class_is_never_predicted() {
        let rows = vec![vec![0.0], vec![1.0]];
        let labels = vec![0, 0];
        let d = Dataset::new(names(&["x"]), names(&["a", "b"]), rows, labels).unwrap();
        let nb = GaussianNaiveBayes::fit(&d).unwrap();
        let mut rng = rng_for(3, "nb");
        for _ in 0..20 {
            let x: f64 = rng.gen_range(-100.0..100.0);
            assert_eq!(nb.predict(&[x]), 0);
        }
    }

    #[test]
    #[should_panic(expected = "feature arity mismatch")]
    fn arity_mismatch_panics() {
        let d = gaussian_clusters(10, 4, 3.0);
        let nb = GaussianNaiveBayes::fit(&d).unwrap();
        nb.predict(&[1.0]);
    }

    #[test]
    fn fit_is_deterministic() {
        let d = gaussian_clusters(100, 5, 3.0);
        assert_eq!(
            GaussianNaiveBayes::fit(&d).unwrap(),
            GaussianNaiveBayes::fit(&d).unwrap()
        );
    }
}
