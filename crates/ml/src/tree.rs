//! CART decision trees: Gini impurity, axis-aligned threshold splits.

use crate::dataset::Dataset;
use crate::Classifier;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Hyperparameters for [`DecisionTree::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples allowed in a leaf.
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 1,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Rows with `feature value <= threshold`.
        left: Box<Node>,
        /// Rows with `feature value > threshold`.
        right: Box<Node>,
    },
}

/// Errors from tree fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// The training set needs at least one row (guaranteed by `Dataset`,
    /// kept for forests fitting on filtered subsets).
    EmptyTrainingSet,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::EmptyTrainingSet => write!(f, "training set is empty"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted CART decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    arity: usize,
    num_classes: usize,
    /// Per-feature total impurity decrease accumulated at fit time
    /// (unnormalised mean-decrease-in-impurity importances).
    importances: Vec<f64>,
}

impl DecisionTree {
    /// Fits a tree on `data` with `params`.
    ///
    /// # Errors
    ///
    /// [`FitError::EmptyTrainingSet`] (unreachable through a validated
    /// [`Dataset`], but part of the contract).
    pub fn fit(data: &Dataset, params: TreeParams) -> Result<Self, FitError> {
        if data.is_empty() {
            return Err(FitError::EmptyTrainingSet);
        }
        let indices: Vec<usize> = (0..data.len()).collect();
        let all_features: Vec<usize> = (0..data.arity()).collect();
        let mut importances = vec![0.0; data.arity()];
        let root = build(data, &indices, &all_features, params, 0, &mut importances);
        Ok(Self {
            root,
            arity: data.arity(),
            num_classes: data.num_classes(),
            importances,
        })
    }

    /// Fits a tree considering only the feature columns in `features` at
    /// each split (used by random forests).
    ///
    /// # Errors
    ///
    /// [`FitError::EmptyTrainingSet`].
    ///
    /// # Panics
    ///
    /// Panics if `features` contains an out-of-range column.
    pub fn fit_on_features(
        data: &Dataset,
        features: &[usize],
        params: TreeParams,
    ) -> Result<Self, FitError> {
        if data.is_empty() {
            return Err(FitError::EmptyTrainingSet);
        }
        assert!(
            features.iter().all(|&f| f < data.arity()),
            "feature index out of range"
        );
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut importances = vec![0.0; data.arity()];
        let root = build(data, &indices, features, params, 0, &mut importances);
        Ok(Self {
            root,
            arity: data.arity(),
            num_classes: data.num_classes(),
            importances,
        })
    }

    /// The number of classes seen at fit time.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Mean-decrease-in-impurity feature importances, normalised to sum to
    /// 1 (all zeros for a lone leaf).
    pub fn feature_importance(&self) -> Vec<f64> {
        let total: f64 = self.importances.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.importances.len()];
        }
        self.importances.iter().map(|v| v / total).collect()
    }

    /// Number of decision (split) nodes.
    pub fn split_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Renders the tree as indented text, for interpretability reports
    /// (which thresholds the FC classifier actually learned).
    ///
    /// # Panics
    ///
    /// Panics if `feature_names`/`class_names` are shorter than the fitted
    /// arity/class count.
    pub fn render_text(&self, feature_names: &[String], class_names: &[String]) -> String {
        assert!(feature_names.len() >= self.arity, "feature names too short");
        assert!(
            class_names.len() >= self.num_classes,
            "class names too short"
        );
        fn walk(
            node: &Node,
            depth: usize,
            features: &[String],
            classes: &[String],
            out: &mut String,
        ) {
            let pad = "  ".repeat(depth);
            match node {
                Node::Leaf { class } => {
                    out.push_str(&format!("{pad}=> {}\n", classes[*class]));
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    out.push_str(&format!(
                        "{pad}if {} <= {threshold:.3}:\n",
                        features[*feature]
                    ));
                    walk(left, depth + 1, features, classes, out);
                    out.push_str(&format!("{pad}else:\n"));
                    walk(right, depth + 1, features, classes, out);
                }
            }
        }
        let mut out = String::new();
        walk(&self.root, 0, feature_names, class_names, &mut out);
        out
    }

    /// Tree depth (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }
}

impl Classifier for DecisionTree {
    fn predict(&self, features: &[f64]) -> usize {
        assert_eq!(
            features.len(),
            self.arity,
            "feature vector arity mismatch: got {}, expected {}",
            features.len(),
            self.arity
        );
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

fn class_counts(data: &Dataset, indices: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; data.num_classes()];
    for &i in indices {
        counts[data.labels()[i]] += 1;
    }
    counts
}

fn majority(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    impurity: f64,
}

fn find_best_split(
    data: &Dataset,
    indices: &[usize],
    features: &[usize],
    min_leaf: usize,
) -> Option<BestSplit> {
    // Accept the best split even at zero Gini gain (as mainstream CART
    // implementations do): zero-gain first splits are what make parity-like
    // concepts (XOR) learnable, and termination is unaffected because every
    // split strictly partitions into two non-empty child sets.
    let n = indices.len();
    let parent_counts = class_counts(data, indices);
    let mut best: Option<BestSplit> = None;
    for &f in features {
        // Sort indices by this feature's value.
        let mut order: Vec<usize> = indices.to_vec();
        order.sort_by(|&a, &b| {
            data.rows()[a][f]
                .partial_cmp(&data.rows()[b][f])
                .expect("finite features")
        });
        let mut left_counts = vec![0usize; data.num_classes()];
        for cut in 1..n {
            let prev = order[cut - 1];
            left_counts[data.labels()[prev]] += 1;
            let v_prev = data.rows()[prev][f];
            let v_next = data.rows()[order[cut]][f];
            if v_prev == v_next {
                continue; // cannot split between equal values
            }
            if cut < min_leaf || n - cut < min_leaf {
                continue;
            }
            let right_counts: Vec<usize> = parent_counts
                .iter()
                .zip(&left_counts)
                .map(|(&p, &l)| p - l)
                .collect();
            let w = cut as f64 / n as f64;
            let impurity = w * gini(&left_counts, cut) + (1.0 - w) * gini(&right_counts, n - cut);
            if impurity < best.as_ref().map_or(f64::INFINITY, |b| b.impurity) {
                best = Some(BestSplit {
                    feature: f,
                    threshold: (v_prev + v_next) / 2.0,
                    impurity,
                });
            }
        }
    }
    best
}

fn build(
    data: &Dataset,
    indices: &[usize],
    features: &[usize],
    params: TreeParams,
    depth: usize,
    importances: &mut [f64],
) -> Node {
    let counts = class_counts(data, indices);
    let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
    if pure
        || depth >= params.max_depth
        || indices.len() < params.min_samples_split
        || features.is_empty()
    {
        return Node::Leaf {
            class: majority(&counts),
        };
    }
    match find_best_split(data, indices, features, params.min_samples_leaf.max(1)) {
        None => Node::Leaf {
            class: majority(&counts),
        },
        Some(split) => {
            // Mean decrease in impurity, weighted by the node's share of
            // the training set.
            let parent_gini = gini(&counts, indices.len());
            importances[split.feature] += (indices.len() as f64 / data.len() as f64)
                * (parent_gini - split.impurity).max(0.0);
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| data.rows()[i][split.feature] <= split.threshold);
            Node::Split {
                feature: split.feature,
                threshold: split.threshold,
                left: Box::new(build(
                    data,
                    &left_idx,
                    features,
                    params,
                    depth + 1,
                    importances,
                )),
                right: Box::new(build(
                    data,
                    &right_idx,
                    features,
                    params,
                    depth + 1,
                    importances,
                )),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// Linearly separable 1-D data.
    fn separable() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        Dataset::new(names(&["x"]), names(&["lo", "hi"]), rows, labels).unwrap()
    }

    #[test]
    fn fits_separable_data_perfectly() {
        let d = separable();
        let t = DecisionTree::fit(&d, TreeParams::default()).unwrap();
        for (row, &label) in d.rows().iter().zip(d.labels()) {
            assert_eq!(t.predict(row), label);
        }
        assert_eq!(t.depth(), 1, "one split suffices");
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let d = Dataset::new(
            names(&["x"]),
            names(&["only"]),
            vec![vec![1.0], vec![2.0]],
            vec![0, 0],
        )
        .unwrap();
        let t = DecisionTree::fit(&d, TreeParams::default()).unwrap();
        assert_eq!(t.split_count(), 0);
        assert_eq!(t.predict(&[5.0]), 0);
    }

    #[test]
    fn max_depth_zero_is_majority_vote() {
        let d = separable();
        let t = DecisionTree::fit(
            &d,
            TreeParams {
                max_depth: 0,
                ..TreeParams::default()
            },
        )
        .unwrap();
        assert_eq!(t.split_count(), 0);
    }

    #[test]
    fn xor_needs_depth_two() {
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let labels = vec![0, 1, 1, 0];
        let d = Dataset::new(names(&["a", "b"]), names(&["z", "o"]), rows, labels).unwrap();
        let t = DecisionTree::fit(
            &d,
            TreeParams {
                max_depth: 4,
                min_samples_split: 2,
                min_samples_leaf: 1,
            },
        )
        .unwrap();
        assert_eq!(t.predict(&[0.0, 0.0]), 0);
        assert_eq!(t.predict(&[0.0, 1.0]), 1);
        assert_eq!(t.predict(&[1.0, 0.0]), 1);
        assert_eq!(t.predict(&[1.0, 1.0]), 0);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn identical_features_cannot_split() {
        let d = Dataset::new(
            names(&["x"]),
            names(&["a", "b"]),
            vec![vec![1.0], vec![1.0], vec![1.0]],
            vec![0, 1, 1],
        )
        .unwrap();
        let t = DecisionTree::fit(&d, TreeParams::default()).unwrap();
        assert_eq!(t.split_count(), 0);
        assert_eq!(t.predict(&[1.0]), 1, "majority class");
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let d = separable();
        let t = DecisionTree::fit(
            &d,
            TreeParams {
                min_samples_leaf: 8,
                ..TreeParams::default()
            },
        )
        .unwrap();
        // Only the middle split keeps both leaves >= 8.
        assert!(t.depth() <= 2);
    }

    #[test]
    fn fit_on_feature_subset_ignores_other_columns() {
        // Column 0 separates, column 1 is noise; restrict to column 1.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 0.0]).collect();
        let labels: Vec<usize> = (0..10).map(|i| usize::from(i >= 5)).collect();
        let d = Dataset::new(names(&["good", "noise"]), names(&["a", "b"]), rows, labels).unwrap();
        let t = DecisionTree::fit_on_features(&d, &[1], TreeParams::default()).unwrap();
        assert_eq!(t.split_count(), 0, "noise column cannot split");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn predict_panics_on_wrong_arity() {
        let t = DecisionTree::fit(&separable(), TreeParams::default()).unwrap();
        t.predict(&[1.0, 2.0]);
    }

    #[test]
    fn three_class_problem() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let d = Dataset::new(names(&["x"]), names(&["a", "b", "c"]), rows, labels).unwrap();
        let t = DecisionTree::fit(&d, TreeParams::default()).unwrap();
        assert_eq!(t.predict(&[5.0]), 0);
        assert_eq!(t.predict(&[15.0]), 1);
        assert_eq!(t.predict(&[25.0]), 2);
    }

    #[test]
    fn render_text_shows_thresholds_and_classes() {
        let d = separable();
        let t = DecisionTree::fit(&d, TreeParams::default()).unwrap();
        let text = t.render_text(&names(&["x"]), &names(&["lo", "hi"]));
        assert!(text.contains("if x <= 9.500"), "{text}");
        assert!(text.contains("=> lo"));
        assert!(text.contains("=> hi"));
        assert!(text.contains("else:"));
    }

    #[test]
    #[should_panic(expected = "feature names too short")]
    fn render_text_checks_names() {
        let t = DecisionTree::fit(&separable(), TreeParams::default()).unwrap();
        t.render_text(&[], &names(&["a", "b"]));
    }

    #[test]
    fn predict_batch_matches_predict() {
        let d = separable();
        let t = DecisionTree::fit(&d, TreeParams::default()).unwrap();
        let batch = t.predict_batch(d.rows());
        let single: Vec<usize> = d.rows().iter().map(|r| t.predict(r)).collect();
        assert_eq!(batch, single);
    }
}
