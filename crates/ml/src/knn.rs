//! k-nearest-neighbours with per-feature standardisation.
//!
//! The simplest of the learner families the Fake Project methodology
//! compared ([12]); included for the E4 multi-learner comparison. Features
//! are z-scored at fit time so the heavily skewed count features
//! (followers, statuses) do not drown the boolean ones.

use crate::dataset::Dataset;
use crate::tree::FitError;
use crate::Classifier;
use serde::{Deserialize, Serialize};

/// A fitted (memorising) kNN classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KNearestNeighbors {
    k: usize,
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
    means: Vec<f64>,
    /// Per-feature standard deviations, floored at 1 for constants.
    stds: Vec<f64>,
    num_classes: usize,
}

impl KNearestNeighbors {
    /// Fits (memorises) the training set with neighbourhood size `k`.
    ///
    /// # Errors
    ///
    /// [`FitError::EmptyTrainingSet`] when `data` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn fit(data: &Dataset, k: usize) -> Result<Self, FitError> {
        assert!(k > 0, "k must be positive");
        if data.is_empty() {
            return Err(FitError::EmptyTrainingSet);
        }
        let arity = data.arity();
        let n = data.len() as f64;
        let mut means = vec![0.0; arity];
        for row in data.rows() {
            for (f, &v) in row.iter().enumerate() {
                means[f] += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; arity];
        for row in data.rows() {
            for (f, &v) in row.iter().enumerate() {
                stds[f] += (v - means[f]).powi(2);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        let rows = data
            .rows()
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(f, &v)| (v - means[f]) / stds[f])
                    .collect()
            })
            .collect();
        Ok(Self {
            k: k.min(data.len()),
            rows,
            labels: data.labels().to_vec(),
            means,
            stds,
            num_classes: data.num_classes(),
        })
    }

    /// The effective neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    fn standardise(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.means.len(), "feature arity mismatch");
        features
            .iter()
            .enumerate()
            .map(|(f, &v)| (v - self.means[f]) / self.stds[f])
            .collect()
    }
}

impl Classifier for KNearestNeighbors {
    fn predict(&self, features: &[f64]) -> usize {
        let q = self.standardise(features);
        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f64, usize)> = self
            .rows
            .iter()
            .zip(&self.labels)
            .map(|(row, &label)| {
                let d2: f64 = row.iter().zip(&q).map(|(a, b)| (a - b).powi(2)).sum();
                (d2, label)
            })
            .collect();
        dists.select_nth_unstable_by(self.k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("distances are finite")
        });
        let mut votes = vec![0usize; self.num_classes];
        for &(_, label) in &dists[..self.k] {
            votes[label] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .map(|(i, _)| i)
            .expect("at least one class")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn grid() -> Dataset {
        // Class 0 near origin, class 1 near (10, 10).
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                rows.push(vec![i as f64 * 0.1, j as f64 * 0.1]);
                labels.push(0);
                rows.push(vec![10.0 + i as f64 * 0.1, 10.0 + j as f64 * 0.1]);
                labels.push(1);
            }
        }
        Dataset::new(names(&["x", "y"]), names(&["a", "b"]), rows, labels).unwrap()
    }

    #[test]
    fn classifies_clusters() {
        let knn = KNearestNeighbors::fit(&grid(), 5).unwrap();
        assert_eq!(knn.predict(&[0.2, 0.3]), 0);
        assert_eq!(knn.predict(&[10.2, 10.3]), 1);
    }

    #[test]
    fn k_is_capped_at_training_size() {
        let d = Dataset::new(
            names(&["x"]),
            names(&["a", "b"]),
            vec![vec![0.0], vec![1.0]],
            vec![0, 1],
        )
        .unwrap();
        let knn = KNearestNeighbors::fit(&d, 100).unwrap();
        assert_eq!(knn.k(), 2);
    }

    #[test]
    fn standardisation_balances_scales() {
        // Feature 0 ranges ±1 and separates classes; feature 1 is noise at
        // a 1000× larger scale. Without z-scoring the noise dominates.
        let rows = vec![
            vec![-1.0, 500.0],
            vec![-0.9, -800.0],
            vec![-0.8, 700.0],
            vec![1.0, -600.0],
            vec![0.9, 900.0],
            vec![0.8, -400.0],
        ];
        let labels = vec![0, 0, 0, 1, 1, 1];
        let d = Dataset::new(names(&["sig", "noise"]), names(&["a", "b"]), rows, labels).unwrap();
        let knn = KNearestNeighbors::fit(&d, 3).unwrap();
        assert_eq!(knn.predict(&[-0.95, 0.0]), 0);
        assert_eq!(knn.predict(&[0.95, 0.0]), 1);
    }

    #[test]
    fn single_neighbour_memorises() {
        let d = grid();
        let knn = KNearestNeighbors::fit(&d, 1).unwrap();
        for (row, &label) in d.rows().iter().zip(d.labels()) {
            assert_eq!(knn.predict(row), label);
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = KNearestNeighbors::fit(&grid(), 0);
    }

    #[test]
    #[should_panic(expected = "feature arity mismatch")]
    fn arity_mismatch_panics() {
        let knn = KNearestNeighbors::fit(&grid(), 1).unwrap();
        knn.predict(&[1.0]);
    }

    #[test]
    fn constant_feature_is_harmless() {
        let rows = vec![
            vec![7.0, 0.0],
            vec![7.0, 1.0],
            vec![7.0, 10.0],
            vec![7.0, 11.0],
        ];
        let labels = vec![0, 0, 1, 1];
        let d = Dataset::new(names(&["c", "x"]), names(&["a", "b"]), rows, labels).unwrap();
        let knn = KNearestNeighbors::fit(&d, 1).unwrap();
        assert_eq!(knn.predict(&[7.0, 0.5]), 0);
        assert_eq!(knn.predict(&[7.0, 10.5]), 1);
    }
}
