//! Feature matrices with named columns and class labels.

use fakeaudit_stats::rng::rng_for;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from dataset construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// No rows were supplied.
    Empty,
    /// A row's arity disagrees with the feature names.
    RaggedRow {
        /// Index of the offending row.
        row: usize,
        /// Its length.
        len: usize,
        /// Expected length.
        expected: usize,
    },
    /// A label is outside `0..num_classes`.
    BadLabel {
        /// Index of the offending row.
        row: usize,
        /// The label value.
        label: usize,
    },
    /// A feature value is NaN or infinite.
    NonFiniteFeature {
        /// Row index.
        row: usize,
        /// Column index.
        col: usize,
    },
    /// Labels and rows have different lengths.
    LengthMismatch,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Empty => write!(f, "dataset must contain at least one row"),
            DatasetError::RaggedRow { row, len, expected } => {
                write!(f, "row {row} has {len} features, expected {expected}")
            }
            DatasetError::BadLabel { row, label } => {
                write!(f, "row {row} has out-of-range label {label}")
            }
            DatasetError::NonFiniteFeature { row, col } => {
                write!(f, "non-finite feature at row {row}, column {col}")
            }
            DatasetError::LengthMismatch => write!(f, "rows and labels differ in length"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// A labelled dataset: dense `f64` rows, named feature columns, named
/// classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    class_names: Vec<String>,
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Builds a dataset, validating shape, label range and finiteness.
    ///
    /// # Errors
    ///
    /// See [`DatasetError`].
    pub fn new(
        feature_names: Vec<String>,
        class_names: Vec<String>,
        rows: Vec<Vec<f64>>,
        labels: Vec<usize>,
    ) -> Result<Self, DatasetError> {
        if rows.is_empty() {
            return Err(DatasetError::Empty);
        }
        if rows.len() != labels.len() {
            return Err(DatasetError::LengthMismatch);
        }
        let arity = feature_names.len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != arity {
                return Err(DatasetError::RaggedRow {
                    row: i,
                    len: row.len(),
                    expected: arity,
                });
            }
            if let Some(col) = row.iter().position(|v| !v.is_finite()) {
                return Err(DatasetError::NonFiniteFeature { row: i, col });
            }
        }
        if let Some((i, &label)) = labels
            .iter()
            .enumerate()
            .find(|&(_, &l)| l >= class_names.len())
        {
            return Err(DatasetError::BadLabel { row: i, label });
        }
        Ok(Self {
            feature_names,
            class_names,
            rows,
            labels,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset is empty (never true for a constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of feature columns.
    pub fn arity(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Feature column names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Class names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// The feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// The labels, parallel to [`Dataset::rows`].
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-class row counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// A new dataset containing the rows at `indices` (duplicates allowed —
    /// this is what bootstrap sampling uses).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `indices` is empty.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        assert!(!indices.is_empty(), "subset must be non-empty");
        Dataset {
            feature_names: self.feature_names.clone(),
            class_names: self.class_names.clone(),
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Splits into `(train, test)` after a seeded shuffle, with
    /// `train_fraction` of rows in train.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_fraction < 1` and both sides end up
    /// non-empty.
    pub fn shuffled_split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train_fraction must be in (0, 1)"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut rng_for(seed, "split"));
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.len() - 1);
        (self.subset(&idx[..cut]), self.subset(&idx[cut..]))
    }

    /// Seeded k-fold partition: returns `k` (train, test) pairs covering
    /// every row exactly once as test.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= k <= len`.
    pub fn k_folds(&self, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
        assert!(k >= 2 && k <= self.len(), "k must be in [2, len]");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut rng_for(seed, "kfold"));
        let mut folds = Vec::with_capacity(k);
        for f in 0..k {
            let test: Vec<usize> = idx
                .iter()
                .copied()
                .enumerate()
                .filter(|(i, _)| i % k == f)
                .map(|(_, v)| v)
                .collect();
            let train: Vec<usize> = idx
                .iter()
                .copied()
                .enumerate()
                .filter(|(i, _)| i % k != f)
                .map(|(_, v)| v)
                .collect();
            folds.push((self.subset(&train), self.subset(&test)));
        }
        folds
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dataset: {} rows x {} features, {} classes",
            self.len(),
            self.arity(),
            self.num_classes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn small() -> Dataset {
        Dataset::new(
            names(&["x", "y"]),
            names(&["a", "b"]),
            vec![
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![0.5, 0.5],
                vec![0.9, 0.1],
            ],
            vec![0, 1, 0, 1],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let d = small();
        assert_eq!(d.len(), 4);
        assert_eq!(d.arity(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.class_counts(), vec![2, 2]);
        assert!(!d.is_empty());
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Dataset::new(names(&["x"]), names(&["a"]), vec![], vec![]).unwrap_err(),
            DatasetError::Empty
        );
    }

    #[test]
    fn rejects_ragged_rows() {
        let e = Dataset::new(
            names(&["x", "y"]),
            names(&["a"]),
            vec![vec![1.0, 2.0], vec![1.0]],
            vec![0, 0],
        )
        .unwrap_err();
        assert!(matches!(e, DatasetError::RaggedRow { row: 1, .. }));
    }

    #[test]
    fn rejects_bad_labels() {
        let e = Dataset::new(names(&["x"]), names(&["a"]), vec![vec![1.0]], vec![1]).unwrap_err();
        assert!(matches!(e, DatasetError::BadLabel { label: 1, .. }));
    }

    #[test]
    fn rejects_nan() {
        let e =
            Dataset::new(names(&["x"]), names(&["a"]), vec![vec![f64::NAN]], vec![0]).unwrap_err();
        assert!(matches!(e, DatasetError::NonFiniteFeature { .. }));
    }

    #[test]
    fn rejects_length_mismatch() {
        let e =
            Dataset::new(names(&["x"]), names(&["a"]), vec![vec![1.0]], vec![0, 0]).unwrap_err();
        assert_eq!(e, DatasetError::LengthMismatch);
    }

    #[test]
    fn subset_with_duplicates() {
        let d = small();
        let s = d.subset(&[0, 0, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels(), &[0, 0, 1]);
    }

    #[test]
    fn shuffled_split_partitions() {
        let d = small();
        let (train, test) = d.shuffled_split(0.5, 1);
        assert_eq!(train.len() + test.len(), 4);
        assert_eq!(train.len(), 2);
    }

    #[test]
    fn split_is_deterministic() {
        let d = small();
        let (a, _) = d.shuffled_split(0.5, 7);
        let (b, _) = d.shuffled_split(0.5, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn k_folds_cover_all_rows_once() {
        let d = small();
        let folds = d.k_folds(2, 3);
        assert_eq!(folds.len(), 2);
        let total_test: usize = folds.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(total_test, d.len());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), d.len());
        }
    }

    #[test]
    #[should_panic(expected = "k must be in [2, len]")]
    fn k_folds_rejects_bad_k() {
        small().k_folds(1, 0);
    }

    #[test]
    fn display_shape() {
        assert_eq!(
            small().to_string(),
            "dataset: 4 rows x 2 features, 2 classes"
        );
    }
}
