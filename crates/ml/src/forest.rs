//! Random forests: bootstrap bagging plus per-tree feature subsampling.

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, FitError, TreeParams};
use crate::Classifier;
use fakeaudit_stats::rng::rng_for_indexed;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters for [`RandomForest::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree CART parameters.
    pub tree: TreeParams,
    /// Features considered per tree; `None` = `ceil(sqrt(arity))`.
    pub features_per_tree: Option<usize>,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self {
            trees: 25,
            tree: TreeParams::default(),
            features_per_tree: None,
        }
    }
}

/// A fitted random forest (majority vote over CART trees).
///
/// ```
/// use fakeaudit_ml::{Classifier, Dataset, RandomForest};
/// use fakeaudit_ml::forest::ForestParams;
///
/// // y = x >= 5, learnable from ten points.
/// let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i)]).collect();
/// let labels: Vec<usize> = (0..10).map(|i| usize::from(i >= 5)).collect();
/// let data = Dataset::new(
///     vec!["x".into()],
///     vec!["low".into(), "high".into()],
///     rows,
///     labels,
/// )?;
/// let forest = RandomForest::fit(&data, ForestParams::default(), 42)?;
/// assert_eq!(forest.predict(&[1.0]), 0);
/// assert_eq!(forest.predict(&[9.0]), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    num_classes: usize,
}

impl RandomForest {
    /// Fits a forest on `data`. Each tree sees a bootstrap resample of the
    /// rows and a random feature subset; both are derived deterministically
    /// from `seed`.
    ///
    /// # Errors
    ///
    /// [`FitError::EmptyTrainingSet`] when `data` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `params.trees == 0` or `features_per_tree` is 0 or exceeds
    /// the arity.
    pub fn fit(data: &Dataset, params: ForestParams, seed: u64) -> Result<Self, FitError> {
        assert!(params.trees > 0, "forest needs at least one tree");
        if data.is_empty() {
            return Err(FitError::EmptyTrainingSet);
        }
        let arity = data.arity();
        let m = params
            .features_per_tree
            .unwrap_or_else(|| (arity as f64).sqrt().ceil() as usize)
            .max(1);
        assert!(m <= arity, "features_per_tree exceeds arity");
        let mut trees = Vec::with_capacity(params.trees);
        for t in 0..params.trees {
            let mut rng = rng_for_indexed(seed, "forest-tree", t as u64);
            let n = data.len();
            let bootstrap: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let sample = data.subset(&bootstrap);
            let mut features: Vec<usize> = (0..arity).collect();
            features.shuffle(&mut rng);
            features.truncate(m);
            trees.push(DecisionTree::fit_on_features(
                &sample,
                &features,
                params.tree,
            )?);
        }
        Ok(Self {
            trees,
            num_classes: data.num_classes(),
        })
    }

    /// Number of trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Per-class vote counts for one feature vector.
    pub fn votes(&self, features: &[f64]) -> Vec<usize> {
        let mut votes = vec![0usize; self.num_classes];
        for t in &self.trees {
            votes[t.predict(features)] += 1;
        }
        votes
    }

    /// Mean-decrease-in-impurity feature importances averaged over the
    /// trees, normalised to sum to 1 (all zeros if no tree ever split).
    pub fn feature_importance(&self) -> Vec<f64> {
        let arity = self
            .trees
            .first()
            .map_or(0, |t| t.feature_importance().len());
        let mut acc = vec![0.0; arity];
        for t in &self.trees {
            for (a, v) in acc.iter_mut().zip(t.feature_importance()) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total <= 0.0 {
            return acc;
        }
        for a in &mut acc {
            *a /= total;
        }
        acc
    }

    /// The fraction of trees voting for the winning class (a crude
    /// confidence signal).
    pub fn confidence(&self, features: &[f64]) -> f64 {
        let votes = self.votes(features);
        let max = votes.iter().copied().max().unwrap_or(0);
        max as f64 / self.trees.len() as f64
    }
}

impl Classifier for RandomForest {
    fn predict(&self, features: &[f64]) -> usize {
        let votes = self.votes(features);
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .map(|(i, _)| i)
            .expect("at least one class")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fakeaudit_stats::rng::rng_for;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// Noisy two-cluster data in 4 dimensions (2 informative, 2 noise).
    fn clusters(n: usize, seed: u64) -> Dataset {
        let mut rng = rng_for(seed, "clusters");
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let centre = if label == 0 { 0.0 } else { 3.0 };
            rows.push(vec![
                centre + rng.gen::<f64>(),
                centre + rng.gen::<f64>(),
                rng.gen::<f64>() * 10.0,
                rng.gen::<f64>() * 10.0,
            ]);
            labels.push(label);
        }
        Dataset::new(
            names(&["a", "b", "n1", "n2"]),
            names(&["c0", "c1"]),
            rows,
            labels,
        )
        .unwrap()
    }

    #[test]
    fn forest_learns_clusters() {
        let train = clusters(200, 1);
        let test = clusters(100, 2);
        let f = RandomForest::fit(&train, ForestParams::default(), 42).unwrap();
        let correct = test
            .rows()
            .iter()
            .zip(test.labels())
            .filter(|(r, &l)| f.predict(r) == l)
            .count();
        assert!(correct >= 95, "accuracy {correct}/100");
    }

    #[test]
    fn fit_is_deterministic() {
        let d = clusters(100, 3);
        let a = RandomForest::fit(&d, ForestParams::default(), 7).unwrap();
        let b = RandomForest::fit(&d, ForestParams::default(), 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let d = clusters(100, 3);
        let a = RandomForest::fit(&d, ForestParams::default(), 7).unwrap();
        let b = RandomForest::fit(&d, ForestParams::default(), 8).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn votes_sum_to_tree_count() {
        let d = clusters(60, 4);
        let f = RandomForest::fit(&d, ForestParams::default(), 1).unwrap();
        let votes = f.votes(&d.rows()[0]);
        assert_eq!(votes.iter().sum::<usize>(), f.tree_count());
    }

    #[test]
    fn confidence_in_unit_interval() {
        let d = clusters(60, 5);
        let f = RandomForest::fit(&d, ForestParams::default(), 1).unwrap();
        for row in d.rows().iter().take(10) {
            let c = f.confidence(row);
            assert!((0.0..=1.0).contains(&c));
            // With two classes the plurality winner holds at least half.
            assert!(c >= 0.5, "confidence {c}");
        }
    }

    #[test]
    fn single_tree_forest_works() {
        let d = clusters(60, 6);
        let f = RandomForest::fit(
            &d,
            ForestParams {
                trees: 1,
                ..ForestParams::default()
            },
            1,
        )
        .unwrap();
        assert_eq!(f.tree_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let d = clusters(10, 7);
        let _ = RandomForest::fit(
            &d,
            ForestParams {
                trees: 0,
                ..ForestParams::default()
            },
            1,
        );
    }

    #[test]
    #[should_panic(expected = "features_per_tree exceeds arity")]
    fn oversize_feature_subset_panics() {
        let d = clusters(10, 8);
        let _ = RandomForest::fit(
            &d,
            ForestParams {
                features_per_tree: Some(10),
                ..ForestParams::default()
            },
            1,
        );
    }

    #[test]
    fn explicit_feature_count_accepted() {
        let d = clusters(80, 9);
        let f = RandomForest::fit(
            &d,
            ForestParams {
                features_per_tree: Some(2),
                ..ForestParams::default()
            },
            1,
        )
        .unwrap();
        assert_eq!(f.tree_count(), 25);
    }
}
