//! Classifier evaluation: confusion matrices, per-class metrics, k-fold
//! cross-validation.
//!
//! The Fake Project methodology ([12], summarised in §III) evaluated
//! literature rule sets and feature sets on a gold standard before picking
//! the classifier; these are the metrics that comparison needs.

use crate::dataset::Dataset;
use crate::Classifier;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A square confusion matrix: `m[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    m: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        Self {
            classes,
            m: vec![vec![0; classes]; classes],
        }
    }

    /// Builds a matrix by running `clf` over a labelled dataset.
    pub fn evaluate<C: Classifier + ?Sized>(clf: &C, data: &Dataset) -> Self {
        let mut cm = Self::new(data.num_classes());
        for (row, &label) in data.rows().iter().zip(data.labels()) {
            cm.record(label, clf.predict(row));
        }
        cm
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(
            actual < self.classes && predicted < self.classes,
            "class out of range"
        );
        self.m[actual][predicted] += 1;
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.m.iter().flatten().sum()
    }

    /// The count at `(actual, predicted)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.m[actual][predicted]
    }

    /// Overall accuracy; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|i| self.m[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Precision for `class`: `TP / (TP + FP)`; 0 when nothing was
    /// predicted as `class`.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.m[class][class];
        let predicted: u64 = (0..self.classes).map(|a| self.m[a][class]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall for `class`: `TP / (TP + FN)`; 0 when the class never occurs.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.m[class][class];
        let actual: u64 = self.m[class].iter().sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 for `class` (harmonic mean of precision and recall).
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 over all classes.
    pub fn macro_f1(&self) -> f64 {
        (0..self.classes).map(|c| self.f1(c)).sum::<f64>() / self.classes as f64
    }

    /// Matthews correlation coefficient for the binary case.
    ///
    /// # Panics
    ///
    /// Panics unless the matrix has exactly 2 classes.
    pub fn mcc(&self) -> f64 {
        assert_eq!(self.classes, 2, "MCC requires a binary matrix");
        let tp = self.m[1][1] as f64;
        let tn = self.m[0][0] as f64;
        let fp = self.m[0][1] as f64;
        let fne = self.m[1][0] as f64;
        let denom = ((tp + fp) * (tp + fne) * (tn + fp) * (tn + fne)).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            (tp * tn - fp * fne) / denom
        }
    }

    /// Merges another matrix into this one (used to pool k-fold results).
    ///
    /// # Panics
    ///
    /// Panics if the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.classes, other.classes, "class count mismatch");
        for (row, orow) in self.m.iter_mut().zip(&other.m) {
            for (c, oc) in row.iter_mut().zip(orow) {
                *c += oc;
            }
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "confusion matrix (rows = actual):")?;
        for row in &self.m {
            for c in row {
                write!(f, "{c:>8}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Result of a k-fold cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidation {
    /// Per-fold accuracies.
    pub fold_accuracies: Vec<f64>,
    /// The pooled confusion matrix over all folds.
    pub pooled: ConfusionMatrix,
}

impl CrossValidation {
    /// Mean of the per-fold accuracies.
    pub fn mean_accuracy(&self) -> f64 {
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len().max(1) as f64
    }
}

/// Runs seeded k-fold cross-validation, fitting with `fit` on each fold's
/// training split.
///
/// # Panics
///
/// Propagates the panics of [`Dataset::k_folds`].
pub fn cross_validate<C, F>(data: &Dataset, k: usize, seed: u64, mut fit: F) -> CrossValidation
where
    C: Classifier,
    F: FnMut(&Dataset) -> C,
{
    let mut pooled = ConfusionMatrix::new(data.num_classes());
    let mut fold_accuracies = Vec::with_capacity(k);
    for (train, test) in data.k_folds(k, seed) {
        let clf = fit(&train);
        let cm = ConfusionMatrix::evaluate(&clf, &test);
        fold_accuracies.push(cm.accuracy());
        pooled.merge(&cm);
    }
    CrossValidation {
        fold_accuracies,
        pooled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DecisionTree, TreeParams};

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn perfect_predictions() {
        let mut cm = ConfusionMatrix::new(2);
        for _ in 0..5 {
            cm.record(0, 0);
            cm.record(1, 1);
        }
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.precision(0), 1.0);
        assert_eq!(cm.recall(1), 1.0);
        assert_eq!(cm.f1(0), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        assert_eq!(cm.mcc(), 1.0);
    }

    #[test]
    fn inverted_predictions() {
        let mut cm = ConfusionMatrix::new(2);
        for _ in 0..5 {
            cm.record(0, 1);
            cm.record(1, 0);
        }
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.mcc(), -1.0);
    }

    #[test]
    fn known_matrix_metrics() {
        // actual 0: 8 correct, 2 as 1; actual 1: 3 as 0, 7 correct.
        let mut cm = ConfusionMatrix::new(2);
        for _ in 0..8 {
            cm.record(0, 0);
        }
        for _ in 0..2 {
            cm.record(0, 1);
        }
        for _ in 0..3 {
            cm.record(1, 0);
        }
        for _ in 0..7 {
            cm.record(1, 1);
        }
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert!((cm.precision(1) - 7.0 / 9.0).abs() < 1e-12);
        assert!((cm.recall(1) - 0.7).abs() < 1e-12);
        assert_eq!(cm.total(), 20);
        assert_eq!(cm.count(1, 0), 3);
    }

    #[test]
    fn degenerate_class_yields_zero_not_nan() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0); // class 1 never occurs nor is predicted
        assert_eq!(cm.precision(1), 0.0);
        assert_eq!(cm.recall(1), 0.0);
        assert_eq!(cm.f1(1), 0.0);
        assert_eq!(cm.mcc(), 0.0);
    }

    #[test]
    fn empty_matrix_accuracy_zero() {
        assert_eq!(ConfusionMatrix::new(3).accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn record_rejects_bad_class() {
        ConfusionMatrix::new(2).record(0, 2);
    }

    #[test]
    #[should_panic(expected = "MCC requires a binary matrix")]
    fn mcc_requires_binary() {
        ConfusionMatrix::new(3).mcc();
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix::new(2);
        a.record(0, 0);
        let mut b = ConfusionMatrix::new(2);
        b.record(1, 1);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.accuracy(), 1.0);
    }

    #[test]
    fn cross_validation_on_separable_data() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let d = Dataset::new(names(&["x"]), names(&["a", "b"]), rows, labels).unwrap();
        let cv = cross_validate(&d, 5, 1, |train| {
            DecisionTree::fit(train, TreeParams::default()).unwrap()
        });
        assert_eq!(cv.fold_accuracies.len(), 5);
        assert!(cv.mean_accuracy() > 0.9, "mean {}", cv.mean_accuracy());
        assert_eq!(cv.pooled.total(), 40);
    }

    #[test]
    fn evaluate_runs_classifier_over_dataset() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..10).map(|i| usize::from(i >= 5)).collect();
        let d = Dataset::new(names(&["x"]), names(&["a", "b"]), rows, labels).unwrap();
        let t = DecisionTree::fit(&d, TreeParams::default()).unwrap();
        let cm = ConfusionMatrix::evaluate(&t, &d);
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn display_contains_rows() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 1);
        let s = cm.to_string();
        assert!(s.contains("confusion matrix"));
        assert!(s.lines().count() >= 3);
    }
}
