//! From-scratch machine learning for the Fake Project classifier (§III).
//!
//! The paper's FC engine is "a machine-learning classifier whose methodology
//! bases on scientific basis and on a sound sampling": trained on a gold
//! standard, built by first testing literature rule sets and feature sets,
//! then selecting the best-performing features. No ML crates exist in the
//! offline dependency set, so the learners are implemented here directly:
//!
//! * [`dataset`] — feature matrices with named columns and class labels;
//! * [`tree`] — CART decision trees (Gini impurity, threshold splits,
//!   mean-decrease-in-impurity feature importances);
//! * [`forest`] — random forests (bootstrap bagging + feature subsampling);
//! * [`naive_bayes`] — Gaussian naive Bayes;
//! * [`knn`] — k-nearest-neighbours with feature standardisation;
//! * [`eval`] — confusion matrices, precision/recall/F1/MCC, k-fold
//!   cross-validation.
//!
//! The [`Classifier`] trait is the seam between learners and the detector
//! layer: anything that maps a feature vector to a class index can back the
//! Fake Project engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod eval;
pub mod forest;
pub mod knn;
pub mod naive_bayes;
pub mod tree;

pub use dataset::Dataset;
pub use eval::ConfusionMatrix;
pub use forest::RandomForest;
pub use knn::KNearestNeighbors;
pub use naive_bayes::GaussianNaiveBayes;
pub use tree::DecisionTree;

/// A trained classifier over dense feature vectors.
pub trait Classifier: std::fmt::Debug {
    /// Predicts the class index for one feature vector.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `features` has the wrong arity.
    fn predict(&self, features: &[f64]) -> usize;

    /// Predicts a batch of rows.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| self.predict(r)).collect()
    }
}
