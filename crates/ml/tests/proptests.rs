//! Property-based tests for the learners' invariants.

use fakeaudit_ml::dataset::Dataset;
use fakeaudit_ml::eval::ConfusionMatrix;
use fakeaudit_ml::forest::ForestParams;
use fakeaudit_ml::tree::TreeParams;
use fakeaudit_ml::{Classifier, DecisionTree, RandomForest};
use proptest::prelude::*;

fn names(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

/// Random (but valid) two-feature, two-class datasets.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(((-100.0f64..100.0, -100.0f64..100.0), 0usize..2), 2..60).prop_map(
        |rows| {
            let (features, labels): (Vec<(f64, f64)>, Vec<usize>) = rows.into_iter().unzip();
            Dataset::new(
                names(&["x", "y"]),
                names(&["a", "b"]),
                features.into_iter().map(|(x, y)| vec![x, y]).collect(),
                labels,
            )
            .unwrap()
        },
    )
}

proptest! {
    #[test]
    fn tree_predictions_are_valid_classes(data in dataset_strategy()) {
        let tree = DecisionTree::fit(&data, TreeParams::default()).unwrap();
        for row in data.rows() {
            prop_assert!(tree.predict(row) < data.num_classes());
        }
    }

    #[test]
    fn tree_fits_training_data_when_unconstrained(data in dataset_strategy()) {
        // With unlimited depth, a CART tree errs on a training row only if
        // an identical feature vector carries conflicting labels.
        let tree = DecisionTree::fit(
            &data,
            TreeParams { max_depth: 64, min_samples_split: 2, min_samples_leaf: 1 },
        )
        .unwrap();
        for (i, (row, &label)) in data.rows().iter().zip(data.labels()).enumerate() {
            let conflicting = data
                .rows()
                .iter()
                .zip(data.labels())
                .any(|(r2, &l2)| r2 == row && l2 != label);
            if !conflicting {
                prop_assert_eq!(tree.predict(row), label, "row {}", i);
            }
        }
    }

    #[test]
    fn forest_fit_is_deterministic_per_seed(data in dataset_strategy(), seed in 0u64..100) {
        let p = ForestParams { trees: 5, ..ForestParams::default() };
        let a = RandomForest::fit(&data, p, seed).unwrap();
        let b = RandomForest::fit(&data, p, seed).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn forest_votes_partition_trees(data in dataset_strategy(), seed in 0u64..50) {
        let p = ForestParams { trees: 7, ..ForestParams::default() };
        let f = RandomForest::fit(&data, p, seed).unwrap();
        for row in data.rows().iter().take(10) {
            let votes = f.votes(row);
            prop_assert_eq!(votes.iter().sum::<usize>(), 7);
            let winner = f.predict(row);
            prop_assert_eq!(votes[winner], *votes.iter().max().unwrap());
        }
    }

    #[test]
    fn confusion_matrix_accuracy_bounds(
        records in prop::collection::vec((0usize..3, 0usize..3), 1..100),
    ) {
        let mut cm = ConfusionMatrix::new(3);
        for (a, p) in &records {
            cm.record(*a, *p);
        }
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        prop_assert!((0.0..=1.0).contains(&cm.macro_f1()));
        prop_assert_eq!(cm.total(), records.len() as u64);
        for c in 0..3 {
            prop_assert!((0.0..=1.0).contains(&cm.precision(c)));
            prop_assert!((0.0..=1.0).contains(&cm.recall(c)));
        }
    }

    #[test]
    fn k_folds_partition_every_row(data in dataset_strategy(), k in 2usize..6) {
        prop_assume!(k <= data.len());
        let folds = data.k_folds(k, 9);
        let total_test: usize = folds.iter().map(|(_, t)| t.len()).sum();
        prop_assert_eq!(total_test, data.len());
        for (train, test) in &folds {
            prop_assert_eq!(train.len() + test.len(), data.len());
            prop_assert!(!test.is_empty());
        }
    }

    #[test]
    fn shuffled_split_preserves_rows(data in dataset_strategy(), frac in 0.1f64..0.9) {
        prop_assume!(data.len() >= 2);
        let (train, test) = data.shuffled_split(frac, 3);
        prop_assert_eq!(train.len() + test.len(), data.len());
        // Multiset of labels is preserved.
        let mut all: Vec<usize> = train.labels().to_vec();
        all.extend_from_slice(test.labels());
        all.sort_unstable();
        let mut orig = data.labels().to_vec();
        orig.sort_unstable();
        prop_assert_eq!(all, orig);
    }
}
