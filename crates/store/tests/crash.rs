//! Deterministic crash-recovery sweep over the fault-injecting
//! filesystem: for every I/O operation index a run can crash at, every
//! crash mode (before the op, torn write, after the op) and every
//! [`FsyncPolicy`], kill the writer mid-run, reboot the simulated disk
//! (dropping everything unsynced), and reopen. The invariants:
//!
//! 1. Recovery never fails and never fabricates rows: what comes back
//!    is always a prefix of the appended stream, in order.
//! 2. `fsync = on-append` never loses an acked row.
//! 3. `fsync = on-flush` never loses a row whose segment flush was
//!    acked.
//! 4. Recovery is idempotent: opening the rebooted directory twice
//!    yields the same rows.
//!
//! The same harness drives E15 (`exp_crash_recovery`); these tests are
//! the fine-grained every-op version of that experiment's sweep.

use fakeaudit_store::{
    compact_with, verify_with, AuditRecord, CrashMode, FaultScript, FsyncPolicy, MemIo, Projection,
    ScanOptions, Store, StoreWriter,
};
use std::path::Path;
use std::sync::Arc;

const DIR: &str = "/history";
const THRESHOLD: usize = 4;
const ROWS: u64 = 25;

/// A distinct, recognisable row: `trace_id` carries the append index.
fn row(i: u64) -> AuditRecord {
    AuditRecord {
        target: 100 + i % 5,
        ts_micros: i as i64 * 45_000_000,
        tool: ["FC", "TA", "SP", "SB"][(i % 4) as usize].to_string(),
        verdict: ["fake", "inactive", "genuine"][(i % 3) as usize].to_string(),
        outcome: "completed".to_string(),
        fake_ratio: i as f64,
        fake_count: i * 3,
        sample_size: 900,
        api_calls: 4,
        trace_id: i,
    }
}

/// Scans the recovered store and returns the `trace_id` sequence.
fn recovered_ids(io: &MemIo) -> Vec<u64> {
    let store = Store::open_with(io, Path::new(DIR)).expect("recovery must never fail open");
    store
        .scan(&ScanOptions {
            projection: Projection::all(),
            ..ScanOptions::default()
        })
        .expect("scan after recovery")
        .rows
        .iter()
        .map(|r| r.trace_id)
        .collect()
}

/// One crashed run: append up to [`ROWS`] rows until the injected crash
/// kills I/O, reboot, recover. Returns (acked appends, rows covered by
/// acked flushes, recovered trace_ids).
fn crashed_run(crash_at: u64, mode: CrashMode, fsync: FsyncPolicy) -> (u64, u64, Vec<u64>) {
    let io = MemIo::shared(FaultScript {
        crash_at_op: Some(crash_at),
        crash_mode: Some(mode),
        ..FaultScript::default()
    });
    let mut acked = 0u64;
    let mut flush_acked = 0u64;
    // Opening an empty directory performs no mutating I/O, so the
    // scripted crash always lands inside the append/flush path.
    let mut writer = StoreWriter::open_with(
        Arc::clone(&io) as Arc<dyn fakeaudit_store::StoreIo>,
        DIR,
        THRESHOLD,
        fsync,
    )
    .expect("open on pristine dir");
    for i in 0..ROWS {
        match writer.append(row(i)) {
            Ok(flush) => {
                acked += 1;
                if let Some(info) = flush {
                    flush_acked += info.rows as u64;
                }
            }
            Err(_) => break,
        }
    }
    drop(writer);
    io.reboot();
    (acked, flush_acked, recovered_ids(&io))
}

fn assert_prefix(recovered: &[u64], label: &str) {
    for (pos, &id) in recovered.iter().enumerate() {
        assert_eq!(
            id, pos as u64,
            "{label}: recovered rows must be the appended prefix, got {recovered:?}"
        );
    }
}

#[test]
fn every_crash_point_recovers_to_an_ordered_prefix() {
    for fsync in [
        FsyncPolicy::Never,
        FsyncPolicy::OnFlush,
        FsyncPolicy::OnAppend,
    ] {
        for mode in [CrashMode::Before, CrashMode::Torn(0.5), CrashMode::After] {
            for crash_at in 1..=60 {
                let label = format!("fsync={} mode={mode:?} crash_at={crash_at}", fsync.as_str());
                let (acked, flush_acked, recovered) = crashed_run(crash_at, mode, fsync);
                assert_prefix(&recovered, &label);
                let n = recovered.len() as u64;
                match fsync {
                    // Every acked row survives; the in-flight row may
                    // too (journaled durably, crash before the ack).
                    FsyncPolicy::OnAppend => assert!(
                        n >= acked,
                        "{label}: lost acked rows (acked {acked}, recovered {n})"
                    ),
                    // Every row whose flush was acked survives.
                    FsyncPolicy::OnFlush => assert!(
                        n >= flush_acked,
                        "{label}: lost flushed rows (flushed {flush_acked}, recovered {n})"
                    ),
                    // No floor, only the prefix property above.
                    FsyncPolicy::Never => {}
                }
            }
        }
    }
}

#[test]
fn recovery_is_idempotent_across_reopens() {
    for crash_at in [3, 9, 17, 33, 49] {
        let (_, _, first) = {
            let io = MemIo::shared(FaultScript {
                crash_at_op: Some(crash_at),
                crash_mode: Some(CrashMode::Torn(0.25)),
                ..FaultScript::default()
            });
            let mut writer = StoreWriter::open_with(
                Arc::clone(&io) as Arc<dyn fakeaudit_store::StoreIo>,
                DIR,
                THRESHOLD,
                FsyncPolicy::OnAppend,
            )
            .expect("open");
            for i in 0..ROWS {
                if writer.append(row(i)).is_err() {
                    break;
                }
            }
            drop(writer);
            io.reboot();
            let a = recovered_ids(&io);
            let b = recovered_ids(&io);
            assert_eq!(a, b, "crash_at={crash_at}: double recovery must agree");
            // After recovery settles the directory, verify is clean.
            let report = verify_with(io.as_ref(), Path::new(DIR)).expect("verify");
            assert!(
                report.issues.is_empty(),
                "crash_at={crash_at}: verify found corruption after recovery: {:?}",
                report.issues
            );
            (0, 0, a)
        };
        assert_prefix(&first, &format!("crash_at={crash_at}"));
    }
}

#[test]
fn dropped_syncs_still_recover_an_ordered_prefix() {
    // A disk that acks fsync but never persists: the durability floor
    // is gone, but recovery must still come up with an ordered prefix.
    for crash_at in [5, 12, 27, 44] {
        let io = MemIo::shared(FaultScript {
            crash_at_op: Some(crash_at),
            crash_mode: Some(CrashMode::After),
            drop_syncs: true,
            ..FaultScript::default()
        });
        let mut writer = StoreWriter::open_with(
            Arc::clone(&io) as Arc<dyn fakeaudit_store::StoreIo>,
            DIR,
            THRESHOLD,
            FsyncPolicy::OnAppend,
        )
        .expect("open");
        for i in 0..ROWS {
            if writer.append(row(i)).is_err() {
                break;
            }
        }
        drop(writer);
        io.reboot();
        assert_prefix(
            &recovered_ids(&io),
            &format!("drop_syncs crash_at={crash_at}"),
        );
    }
}

/// Number of mutating I/O ops a fault-free setup (24 rows, 6 flushed
/// segments) performs, so compact-crash scripts can skip past it.
fn setup_store(io: &Arc<MemIo>) -> u64 {
    let mut writer = StoreWriter::open_with(
        Arc::clone(io) as Arc<dyn fakeaudit_store::StoreIo>,
        DIR,
        THRESHOLD,
        FsyncPolicy::OnFlush,
    )
    .expect("open");
    for i in 0..24 {
        writer.append(row(i)).expect("append");
    }
    assert_eq!(
        writer.health().segments,
        6,
        "setup expects 24 rows to land in 6 full segments"
    );
    drop(writer);
    io.op_count()
}

#[test]
fn compact_crash_at_any_op_never_loses_rows() {
    // Dry run to measure where setup ends and how long compact runs.
    let dry = MemIo::shared(FaultScript::default());
    let setup_ops = setup_store(&dry);
    compact_with(dry.as_ref(), Path::new(DIR)).expect("fault-free compact");
    let compact_ops = dry.op_count() - setup_ops;
    assert!(compact_ops > 0);

    for k in 0..compact_ops {
        for mode in [CrashMode::Before, CrashMode::Torn(0.5), CrashMode::After] {
            let io = MemIo::shared(FaultScript {
                crash_at_op: Some(setup_ops + k),
                crash_mode: Some(mode),
                ..FaultScript::default()
            });
            let ops = setup_store(&io);
            assert_eq!(ops, setup_ops, "setup must be deterministic");
            let crashed = compact_with(io.as_ref(), Path::new(DIR)).is_err();
            assert!(crashed, "k={k} {mode:?}: scripted crash must surface");
            io.reboot();
            let recovered = recovered_ids(&io);
            assert_eq!(
                recovered,
                (0..24).collect::<Vec<u64>>(),
                "k={k} {mode:?}: compact crash lost or reordered rows"
            );
            // The settled directory verifies clean and a retried
            // compact completes.
            let report = verify_with(io.as_ref(), Path::new(DIR)).expect("verify");
            assert!(
                report.issues.is_empty(),
                "k={k} {mode:?}: {:?}",
                report.issues
            );
            let (_, rows) = compact_with(io.as_ref(), Path::new(DIR)).expect("retry compact");
            assert_eq!(rows, 24, "k={k} {mode:?}: retried compact row count");
            assert_eq!(recovered_ids(&io), (0..24).collect::<Vec<u64>>());
        }
    }
}
