//! The golden segment: a fixed, RNG-free record stream whose encoded
//! segment files and query outputs are compared byte-for-byte against
//! committed fixtures. Any change to the dictionary order, delta/varint
//! encoding, zone-map layout, directory arithmetic or the query JSON
//! rendering shows up here as a diff — the repo-level guarantee that a
//! store written today stays readable (and identical) tomorrow.
//!
//! Regenerate after an *intentional* format change with:
//! `cargo test -p fakeaudit-store --test golden -- --ignored regenerate`
//! and commit the diff alongside a format-version note in DESIGN.md §15.
//!
//! Format history: the committed segments are v2 (`FAKSEG2\n`) —
//! per-column CRC32s in the directory plus a whole-file footer CRC
//! (DESIGN.md §17). The v1 fixtures were regenerated at the bump;
//! v1 readability is pinned separately in `segment.rs` unit tests.

use fakeaudit_store::queries::{self, QueryKind, QueryOptions, TopkBy};
use fakeaudit_store::{Store, StoreWriter};
use std::path::PathBuf;

const SEG_1: &[u8] = include_bytes!("golden/seg-00000001.fas");
const SEG_2: &[u8] = include_bytes!("golden/seg-00000002.fas");
const SEG_3: &[u8] = include_bytes!("golden/seg-00000003.fas");

/// 120 synthetic audits in completion order: five targets, all four
/// tools, 45-second spacing starting at the sim epoch (432 000 000 s) —
/// the same clock domain `serve-sim --persist` writes. Arithmetic only;
/// any drift here is a deliberate fixture change.
fn fixture_records() -> Vec<fakeaudit_store::AuditRecord> {
    let tools = ["FC", "TA", "SP", "SB"];
    let verdicts = ["fake", "inactive", "genuine"];
    let outcomes = ["completed", "completed", "completed", "degraded_stale"];
    (0..120usize)
        .map(|i| {
            let fake_count = ((i as u64) * 37) % 400;
            let sample_size = 900 + (i as u64 % 7) * 100;
            fakeaudit_store::AuditRecord {
                target: 100 + (i as u64 % 5) * 111,
                ts_micros: 432_000_000_000_000 + i as i64 * 45_000_000,
                tool: tools[i % 4].to_string(),
                verdict: verdicts[i % 3].to_string(),
                outcome: outcomes[i % 4].to_string(),
                fake_ratio: fake_count as f64 * 100.0 / sample_size as f64,
                fake_count,
                sample_size,
                api_calls: 3 + (i as u64 % 4),
                trace_id: i as u64 + 1,
            }
        })
        .collect()
}

/// Writes the fixture stream at threshold 48 (segments of 48/48/24 rows,
/// disjoint time ranges — so windowed queries must prune) into a scratch
/// store and returns its directory.
fn write_fixture_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fakeaudit-golden-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut writer = StoreWriter::open(&dir, 48).expect("open writer");
    for r in fixture_records() {
        writer.append(r).expect("append");
    }
    writer.flush().expect("final flush");
    dir
}

/// The pinned query set: every kind, defaults, plus the windowed
/// timeseries that exercises zone-map pruning (first 1000 seconds —
/// segment 1 only; segments 2 and 3 must be pruned).
fn pinned_queries() -> Vec<(&'static str, QueryKind, QueryOptions)> {
    vec![
        (
            "timeseries",
            QueryKind::Timeseries,
            QueryOptions {
                bucket_secs: 600,
                ..QueryOptions::default()
            },
        ),
        ("drift", QueryKind::Drift, QueryOptions::default()),
        (
            "retention",
            QueryKind::Retention,
            QueryOptions {
                bucket_secs: 900,
                ..QueryOptions::default()
            },
        ),
        (
            "topk",
            QueryKind::Topk,
            QueryOptions {
                k: 3,
                by: TopkBy::Cost,
                ..QueryOptions::default()
            },
        ),
        (
            "timeseries_windowed",
            QueryKind::Timeseries,
            QueryOptions {
                since_secs: Some(432_000_000),
                until_secs: Some(432_001_000),
                bucket_secs: 600,
                ..QueryOptions::default()
            },
        ),
    ]
}

#[test]
fn segment_bytes_match_the_committed_fixture() {
    let dir = write_fixture_store("bytes");
    for (name, pinned) in [
        ("seg-00000001.fas", SEG_1),
        ("seg-00000002.fas", SEG_2),
        ("seg-00000003.fas", SEG_3),
    ] {
        let written = std::fs::read(dir.join(name)).expect(name);
        assert_eq!(
            written, pinned,
            "{name} drifted from the committed fixture — the segment \
             format changed; see the regeneration note in this file"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn committed_segments_parse_and_query() {
    // Read side of the guarantee: a store made of the *committed* bytes
    // (not freshly encoded ones) still opens, scans and aggregates.
    let dir = std::env::temp_dir().join(format!("fakeaudit-golden-read-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    for (name, bytes) in [
        ("seg-00000001.fas", SEG_1),
        ("seg-00000002.fas", SEG_2),
        ("seg-00000003.fas", SEG_3),
    ] {
        std::fs::write(dir.join(name), bytes).expect(name);
    }
    let store = Store::open(&dir).expect("open committed store");
    assert_eq!(store.total_rows(), 120);
    for (name, kind, opts) in pinned_queries() {
        let report = queries::run(&store, kind, &opts).expect(name);
        let pinned = std::fs::read_to_string(
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("tests/golden")
                .join(format!("query_{name}.json")),
        )
        .unwrap_or_else(|e| panic!("missing pinned output for {name}: {e}"));
        assert_eq!(
            format!("{}\n", report.to_json()),
            pinned,
            "{name} output drifted from the committed fixture"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn windowed_fixture_query_prunes_segments() {
    let dir = write_fixture_store("prune");
    let store = Store::open(&dir).expect("open store");
    let (name, kind, opts) = pinned_queries().pop().expect("windowed query pinned last");
    assert_eq!(name, "timeseries_windowed");
    let report = queries::run(&store, kind, &opts).expect("windowed query");
    assert_eq!(report.stats.segments_total, 3);
    assert_eq!(
        report.stats.segments_pruned, 2,
        "zone maps must skip segments 2 and 3"
    );
    assert_eq!(report.stats.rows_pruned, 72);
    assert_eq!(report.stats.rows_scanned, 48);
    std::fs::remove_dir_all(&dir).ok();
}

/// Rewrites every fixture under `tests/golden/`. Run explicitly (see the
/// module docs) after an intentional format change, then commit the diff.
#[test]
#[ignore = "regenerates the committed fixtures; run only on intentional format changes"]
fn regenerate() {
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    std::fs::create_dir_all(&golden).expect("mkdir golden");
    let dir = write_fixture_store("regen");
    for name in ["seg-00000001.fas", "seg-00000002.fas", "seg-00000003.fas"] {
        std::fs::copy(dir.join(name), golden.join(name)).expect(name);
    }
    let store = Store::open(&dir).expect("open store");
    for (name, kind, opts) in pinned_queries() {
        let report = queries::run(&store, kind, &opts).expect(name);
        std::fs::write(
            golden.join(format!("query_{name}.json")),
            format!("{}\n", report.to_json()),
        )
        .expect(name);
    }
    std::fs::remove_dir_all(&dir).ok();
}
