//! Property tests for the columnar store: whatever the record stream and
//! flush cadence, (1) reading a store back yields exactly the appended
//! records in append order, (2) a time/target-windowed scan returns
//! exactly what filtering a full scan would — zone-map pruning may skip
//! work but never rows — (3) identical record streams produce
//! byte-identical segment files, (4) any prefix truncation or single
//! bit flip of a v2 segment is rejected at parse with a `DecodeError` —
//! never a panic, never silently wrong rows — and (5) WAL replay is
//! idempotent under arbitrary tail damage.

use fakeaudit_store::{
    encode_segment, wal, AuditRecord, Projection, ScanOptions, Segment, Store, StoreWriter,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh scratch directory per proptest case.
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "fakeaudit-store-prop-{}-{tag}-{n}",
        std::process::id()
    ))
}

prop_compose! {
    /// A plausible audit row: small target/label spaces so dictionaries
    /// and zone maps actually get exercised, timestamps wide enough to
    /// cover both sim (epoch-relative) and wall clocks.
    fn record()(
        target in 0u64..40,
        ts_micros in -1_000_000_000i64..1_000_000_000_000_000,
        tool in prop::sample::select(vec!["FC", "TA", "SP", "SB"]),
        verdict in prop::sample::select(vec!["fake", "inactive", "genuine"]),
        outcome in prop::sample::select(vec!["completed", "degraded_stale"]),
        fake_ratio in 0.0f64..100.0,
        fake_count in 0u64..10_000,
        sample_size in 1u64..10_000,
        api_calls in 0u64..500,
        trace_id in 0u64..1_000_000,
    ) -> AuditRecord {
        AuditRecord {
            target,
            ts_micros,
            tool: tool.to_string(),
            verdict: verdict.to_string(),
            outcome: outcome.to_string(),
            fake_ratio,
            fake_count,
            sample_size,
            api_calls,
            trace_id,
        }
    }
}

/// Writes `records` at the given flush threshold and closes the writer
/// with a final flush.
fn write_store(dir: &Path, records: &[AuditRecord], threshold: usize) {
    let mut writer = StoreWriter::open(dir, threshold).expect("open writer");
    for r in records {
        writer.append(r.clone()).expect("append");
    }
    if !records.is_empty() {
        writer.flush().expect("final flush");
    }
}

fn full_scan(store: &Store) -> Vec<AuditRecord> {
    store
        .scan(&ScanOptions {
            projection: Projection::all(),
            ..ScanOptions::default()
        })
        .expect("scan")
        .rows
        .into_iter()
        .map(|row| AuditRecord {
            target: row.target,
            ts_micros: row.ts_micros,
            tool: row.tool,
            verdict: row.verdict,
            outcome: row.outcome,
            fake_ratio: row.fake_ratio,
            fake_count: row.fake_count,
            sample_size: row.sample_size,
            api_calls: row.api_calls,
            trace_id: row.trace_id,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trips_any_flush_cadence(
        records in prop::collection::vec(record(), 0..160),
        threshold in 1usize..64,
    ) {
        let dir = scratch_dir("roundtrip");
        write_store(&dir, &records, threshold);
        let store = Store::open(&dir).expect("open store");
        prop_assert_eq!(store.total_rows(), records.len() as u64);
        prop_assert_eq!(full_scan(&store), records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn windowed_scan_equals_filtered_full_scan(
        records in prop::collection::vec(record(), 1..160),
        threshold in 1usize..48,
        window in (-1_000_000_000i64..1_000_000_000_000_000,
                   -1_000_000_000i64..1_000_000_000_000_000),
        target in prop::option::of(0u64..40),
    ) {
        let (a, b) = window;
        let (since, until) = (a.min(b), a.max(b));
        let dir = scratch_dir("window");
        write_store(&dir, &records, threshold);
        let store = Store::open(&dir).expect("open store");

        let windowed = store
            .scan(&ScanOptions {
                since_micros: Some(since),
                until_micros: Some(until),
                target,
                projection: Projection::all(),
            })
            .expect("windowed scan");
        let expected: Vec<AuditRecord> = records
            .iter()
            .filter(|r| {
                r.ts_micros >= since
                    && r.ts_micros <= until
                    && target.is_none_or(|t| r.target == t)
            })
            .cloned()
            .collect();

        // Pruning may skip whole segments but must never change results.
        let got: Vec<AuditRecord> = windowed
            .rows
            .iter()
            .map(|row| AuditRecord {
                target: row.target,
                ts_micros: row.ts_micros,
                tool: row.tool.clone(),
                verdict: row.verdict.clone(),
                outcome: row.outcome.clone(),
                fake_ratio: row.fake_ratio,
                fake_count: row.fake_count,
                sample_size: row.sample_size,
                api_calls: row.api_calls,
                trace_id: row.trace_id,
            })
            .collect();
        prop_assert_eq!(got, expected);

        // Work accounting conserves rows: every stored row is either
        // scanned or pruned, and selections come only from scanned ones.
        let stats = windowed.stats;
        prop_assert_eq!(stats.rows_scanned + stats.rows_pruned, records.len() as u64);
        prop_assert_eq!(stats.rows_selected, windowed.rows.len() as u64);
        prop_assert!(stats.rows_selected <= stats.rows_scanned);
        prop_assert!(stats.segments_pruned <= stats.segments_total);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identical_streams_write_identical_bytes(
        records in prop::collection::vec(record(), 1..100),
        threshold in 1usize..32,
    ) {
        let (dir_a, dir_b) = (scratch_dir("bytes-a"), scratch_dir("bytes-b"));
        write_store(&dir_a, &records, threshold);
        write_store(&dir_b, &records, threshold);
        let mut names: Vec<String> = std::fs::read_dir(&dir_a)
            .expect("read dir")
            .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
            .collect();
        names.sort();
        prop_assert!(!names.is_empty());
        for name in &names {
            let a = std::fs::read(dir_a.join(name)).expect("read a");
            let b = std::fs::read(dir_b.join(name)).expect("read b");
            prop_assert_eq!(a, b, "{} differs between identical streams", name);
        }
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn truncated_segments_are_rejected_not_misread(
        records in prop::collection::vec(record(), 1..60),
        cut in 0.0f64..1.0,
    ) {
        let bytes = encode_segment(&records);
        // Any strict prefix, from empty to one-byte-short.
        let keep = ((bytes.len() - 1) as f64 * cut) as usize;
        prop_assert!(
            Segment::parse(bytes[..keep].to_vec()).is_err(),
            "a {keep}-byte prefix of a {}-byte segment parsed",
            bytes.len()
        );
    }

    #[test]
    fn bit_flipped_segments_are_rejected_not_misread(
        records in prop::collection::vec(record(), 1..60),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_segment(&records);
        let offset = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[offset] ^= 1 << bit;
        // The footer CRC covers every byte before it and is itself the
        // final word, so any single flipped bit must fail the parse.
        prop_assert!(
            Segment::parse(bytes).is_err(),
            "flipping bit {bit} at offset {offset} went undetected"
        );
    }

    #[test]
    fn wal_replay_is_idempotent_under_tail_damage(
        records in prop::collection::vec(record(), 0..40),
        cut in 0.0f64..=1.0,
        flip in prop::option::of((0.0f64..1.0, 0u8..8)),
    ) {
        let mut buf = wal::encode_entries(&records);
        let keep = (buf.len() as f64 * cut) as usize;
        buf.truncate(keep);
        if let (Some((pos, bit)), false) = (flip, buf.is_empty()) {
            let offset = ((buf.len() - 1) as f64 * pos) as usize;
            buf[offset] ^= 1 << bit;
        }
        let once = wal::replay(&buf);
        // Pure replay: a second pass agrees exactly.
        prop_assert_eq!(&wal::replay(&buf), &once);
        // Consolidation round-trip: re-journaling the recovered prefix
        // and replaying it recovers the same rows with nothing torn —
        // so recovery-after-recovery never changes the store.
        let rewritten = wal::encode_entries(&once.records);
        let twice = wal::replay(&rewritten);
        prop_assert_eq!(&twice.records, &once.records);
        prop_assert_eq!(twice.discarded_bytes, 0);
        // And the recovered rows are a prefix of what was journaled.
        prop_assert_eq!(once.records.as_slice(), &records[..once.records.len()]);
    }
}
