//! The write-ahead journal that makes acked rows survive a crash.
//!
//! One WAL file exists per segment *generation*: rows destined for
//! `seg-%08d.fas` accumulate in `wal-%08d.log` with the same sequence
//! number. A flush writes the segment durably and then discards the
//! WAL — and because the name carries the destination, recovery never
//! needs a truncation barrier to avoid double-replay: if `seg-K`
//! exists, `wal-K` is stale by definition and is deleted; if it does
//! not, `wal-K` is the tail of unflushed acked rows and is replayed.
//!
//! Entry framing (little-endian):
//!
//! ```text
//! u32 payload_len | u32 crc32(payload) | payload
//! ```
//!
//! where the payload is one [`AuditRecord`] in a self-delimiting
//! varint/length-prefixed codec. Replay is torn-tail tolerant: it
//! stops at the first truncated or checksum-failing entry and reports
//! how many bytes it discarded, which is exactly the state a crash
//! mid-append leaves behind.

use crate::encode::{crc32, put_f64, put_varint, put_zigzag, DecodeError, Reader};
use crate::record::AuditRecord;

/// File name of the WAL feeding segment `seq`.
pub fn wal_name(seq: u64) -> String {
    format!("wal-{seq:08}.log")
}

/// Parses `wal-%08d.log`; `None` for anything else in the directory.
pub fn parse_wal_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(r: &mut Reader<'_>, context: &'static str) -> Result<String, DecodeError> {
    let len = r.varint(context)? as usize;
    let bytes = r.bytes(len, context)?;
    std::str::from_utf8(bytes)
        .map(str::to_owned)
        .map_err(|_| DecodeError {
            context,
            offset: r.pos(),
        })
}

fn encode_record(record: &AuditRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_varint(&mut out, record.target);
    put_zigzag(&mut out, record.ts_micros);
    put_str(&mut out, &record.tool);
    put_str(&mut out, &record.verdict);
    put_str(&mut out, &record.outcome);
    put_f64(&mut out, record.fake_ratio);
    put_varint(&mut out, record.fake_count);
    put_varint(&mut out, record.sample_size);
    put_varint(&mut out, record.api_calls);
    put_varint(&mut out, record.trace_id);
    out
}

fn decode_record(payload: &[u8]) -> Result<AuditRecord, DecodeError> {
    let mut r = Reader::new(payload);
    let record = AuditRecord {
        target: r.varint("wal target")?,
        ts_micros: r.zigzag("wal ts")?,
        tool: read_str(&mut r, "wal tool")?,
        verdict: read_str(&mut r, "wal verdict")?,
        outcome: read_str(&mut r, "wal outcome")?,
        fake_ratio: r.f64("wal fake_ratio")?,
        fake_count: r.varint("wal fake_count")?,
        sample_size: r.varint("wal sample_size")?,
        api_calls: r.varint("wal api_calls")?,
        trace_id: r.varint("wal trace_id")?,
    };
    if !r.is_empty() {
        return Err(DecodeError {
            context: "wal entry trailing bytes",
            offset: r.pos(),
        });
    }
    Ok(record)
}

/// Frames one record as a WAL entry ready to append.
pub fn encode_entry(record: &AuditRecord) -> Vec<u8> {
    let payload = encode_record(record);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Frames many records back-to-back — used when recovery rewrites a
/// torn WAL down to its valid prefix.
pub fn encode_entries(records: &[AuditRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for record in records {
        out.extend_from_slice(&encode_entry(record));
    }
    out
}

/// What replaying one WAL image recovered.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WalReplay {
    /// Records recovered from intact entries, in append order.
    pub records: Vec<AuditRecord>,
    /// Bytes past the last intact entry (torn tail), discarded.
    pub discarded_bytes: u64,
}

/// Replays a WAL image: intact prefix entries become records, and the
/// first truncated or checksum-failing entry ends the replay with the
/// remaining bytes counted as discarded. Pure and deterministic, so
/// replaying the same image twice yields the same records — the
/// idempotence the recovery proptests pin.
pub fn replay(buf: &[u8]) -> WalReplay {
    let mut out = WalReplay::default();
    let mut pos = 0usize;
    while pos + 8 <= buf.len() {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let Some(end) = pos.checked_add(8).and_then(|p| p.checked_add(len)) else {
            break;
        };
        if end > buf.len() {
            break;
        }
        let stored_crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let payload = &buf[pos + 8..end];
        if crc32(payload) != stored_crc {
            break;
        }
        let Ok(record) = decode_record(payload) else {
            break;
        };
        out.records.push(record);
        pos = end;
    }
    out.discarded_bytes = (buf.len() - pos) as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> AuditRecord {
        AuditRecord {
            target: 100 + i,
            ts_micros: i as i64 * 1_000_000 - 5,
            tool: "FC".to_owned(),
            verdict: "fake".to_owned(),
            outcome: "completed".to_owned(),
            fake_ratio: i as f64 * 0.5,
            fake_count: i * 7,
            sample_size: 500,
            api_calls: 3,
            trace_id: i,
        }
    }

    #[test]
    fn wal_names_round_trip() {
        assert_eq!(wal_name(7), "wal-00000007.log");
        assert_eq!(parse_wal_name("wal-00000007.log"), Some(7));
        assert_eq!(parse_wal_name("wal-7.log"), None);
        assert_eq!(parse_wal_name("seg-00000007.fas"), None);
    }

    #[test]
    fn entries_round_trip() {
        let records: Vec<AuditRecord> = (0..5).map(sample).collect();
        let buf = encode_entries(&records);
        let replayed = replay(&buf);
        assert_eq!(replayed.records, records);
        assert_eq!(replayed.discarded_bytes, 0);
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let records: Vec<AuditRecord> = (0..5).map(sample).collect();
        let buf = encode_entries(&records);
        let entry_len = encode_entry(&sample(0)).len();
        // Tear every possible number of tail bytes off the last entry.
        for cut in 1..entry_len {
            let torn = &buf[..buf.len() - cut];
            let replayed = replay(torn);
            assert_eq!(replayed.records, records[..4], "cut={cut}");
            assert!(replayed.discarded_bytes > 0, "cut={cut}");
        }
    }

    #[test]
    fn corrupt_entry_stops_replay() {
        let records: Vec<AuditRecord> = (0..3).map(sample).collect();
        let mut buf = encode_entries(&records);
        let first_len = encode_entry(&records[0]).len();
        buf[first_len + 10] ^= 0x40; // damage the second entry
        let replayed = replay(&buf);
        assert_eq!(replayed.records, records[..1]);
        assert_eq!(replayed.discarded_bytes, (buf.len() - first_len) as u64);
    }

    #[test]
    fn garbage_length_prefix_is_safe() {
        let mut buf = encode_entries(&[sample(1)]);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0xAB; 12]);
        let replayed = replay(&buf);
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.discarded_bytes, 16);
    }
}
