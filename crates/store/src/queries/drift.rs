//! `drift`: per-tool disagreement with the per-target majority verdict
//! over time — which detector wanders as purchased followers churn.

use std::collections::BTreeMap;
use std::io;

use super::{Cell, QueryKind, QueryOptions, QueryReport};
use crate::store::{bucket_of, Projection, ScanOptions, Store};

pub(super) fn run(store: &Store, opts: &QueryOptions) -> io::Result<QueryReport> {
    let scan = store.scan(&ScanOptions {
        since_micros: opts.since_micros(),
        until_micros: opts.until_micros(),
        target: None,
        projection: Projection {
            ts: true,
            target: true,
            tool: true,
            verdict: true,
            ..Projection::none()
        },
    })?;

    // Pass 1: majority verdict per (bucket, target). Ties break to the
    // lexicographically smallest verdict, which BTreeMap iteration
    // yields first.
    let mut votes: BTreeMap<(i64, u64), BTreeMap<&str, u64>> = BTreeMap::new();
    for row in &scan.rows {
        let bucket = bucket_of(row.ts_micros, opts.bucket_secs);
        *votes
            .entry((bucket, row.target))
            .or_default()
            .entry(row.verdict.as_str())
            .or_insert(0) += 1;
    }
    let majority: BTreeMap<(i64, u64), &str> = votes
        .iter()
        .map(|(&key, counts)| {
            let mut best = ("", 0u64);
            for (&verdict, &count) in counts {
                if count > best.1 {
                    best = (verdict, count);
                }
            }
            (key, best.0)
        })
        .collect();

    // Pass 2: per (bucket, tool), fraction of audits whose verdict
    // differs from the majority for their (bucket, target).
    let mut per_tool: BTreeMap<(i64, String), (u64, u64)> = BTreeMap::new();
    for row in &scan.rows {
        let bucket = bucket_of(row.ts_micros, opts.bucket_secs);
        let disagrees = majority[&(bucket, row.target)] != row.verdict;
        let entry = per_tool.entry((bucket, row.tool.clone())).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += u64::from(disagrees);
    }

    let bucket_secs = opts.bucket_secs.max(1);
    let rows = per_tool
        .into_iter()
        .map(|((bucket, tool), (audits, disagreements))| {
            vec![
                Cell::Int(bucket * bucket_secs),
                Cell::Str(tool),
                Cell::UInt(audits),
                Cell::Float(disagreements as f64 / audits as f64),
            ]
        })
        .collect();

    Ok(QueryReport {
        kind: QueryKind::Drift,
        columns: vec!["bucket_start_secs", "tool", "audits", "disagree_ratio"],
        rows,
        stats: scan.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{mixed_records, store_with};
    use super::*;

    #[test]
    fn disagreement_measured_against_per_target_majority() {
        let (store, dir) = store_with(&mixed_records(), 4, "drift");
        let report = run(&store, &QueryOptions::default()).unwrap();
        // Bucket 0: target 1 majority "fake" (2 votes); target 2 splits
        // 1–1 between "fake"/"genuine" => tie breaks to "fake"
        // (lexicographically smallest). So FC's genuine verdict on
        // target 2 disagrees: FC = 1/2, TA = 0/2.
        assert_eq!(
            report.rows[0],
            vec![
                Cell::Int(0),
                Cell::Str("FC".into()),
                Cell::UInt(2),
                Cell::Float(0.5)
            ]
        );
        assert_eq!(
            report.rows[1],
            vec![
                Cell::Int(0),
                Cell::Str("TA".into()),
                Cell::UInt(2),
                Cell::Float(0.0)
            ]
        );
        // Bucket 2: a single audit always agrees with itself.
        assert_eq!(
            *report.rows.last().unwrap(),
            vec![
                Cell::Int(120),
                Cell::Str("TA".into()),
                Cell::UInt(1),
                Cell::Float(0.0)
            ]
        );
        std::fs::remove_dir_all(dir).unwrap();
    }
}
