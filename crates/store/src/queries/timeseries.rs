//! `timeseries`: mean fake-ratio per target over fixed time buckets —
//! the longitudinal view of follower churn the one-shot paper tables
//! cannot show.

use std::io;

use super::{Cell, QueryKind, QueryOptions, QueryReport};
use crate::store::{bucket_of, Grouped, Projection, ScanOptions, Store};

pub(super) fn run(store: &Store, opts: &QueryOptions) -> io::Result<QueryReport> {
    let scan = store.scan(&ScanOptions {
        since_micros: opts.since_micros(),
        until_micros: opts.until_micros(),
        target: None,
        projection: Projection {
            ts: true,
            target: true,
            fake_ratio: true,
            ..Projection::none()
        },
    })?;

    // (bucket, target) -> (ratio sum, audit count); BTreeMap keeps
    // output order deterministic.
    let mut groups: Grouped<u64, (f64, u64)> = Grouped::new();
    for row in &scan.rows {
        let bucket = bucket_of(row.ts_micros, opts.bucket_secs);
        let entry = groups.entry((bucket, row.target)).or_insert((0.0, 0));
        entry.0 += row.fake_ratio;
        entry.1 += 1;
    }

    let bucket_secs = opts.bucket_secs.max(1);
    let rows = groups
        .into_iter()
        .map(|((bucket, target), (sum, count))| {
            vec![
                Cell::Int(bucket * bucket_secs),
                Cell::UInt(target),
                Cell::UInt(count),
                Cell::Float(sum / count as f64),
            ]
        })
        .collect();

    Ok(QueryReport {
        kind: QueryKind::Timeseries,
        columns: vec!["bucket_start_secs", "target", "audits", "mean_fake_ratio"],
        rows,
        stats: scan.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{mixed_records, store_with};
    use super::*;

    #[test]
    fn buckets_and_means_are_exact() {
        let (store, dir) = store_with(&mixed_records(), 3, "ts");
        let report = run(&store, &QueryOptions::default()).unwrap();
        // bucket 0: target 1 mean (80+70)/2, target 2 mean (10+60)/2.
        assert_eq!(
            report.rows[0],
            vec![
                Cell::Int(0),
                Cell::UInt(1),
                Cell::UInt(2),
                Cell::Float(75.0)
            ]
        );
        assert_eq!(
            report.rows[1],
            vec![
                Cell::Int(0),
                Cell::UInt(2),
                Cell::UInt(2),
                Cell::Float(35.0)
            ]
        );
        // bucket 2: the decayed solo audit of target 1.
        assert_eq!(
            *report.rows.last().unwrap(),
            vec![
                Cell::Int(120),
                Cell::UInt(1),
                Cell::UInt(1),
                Cell::Float(40.0)
            ]
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn window_restricts_buckets() {
        let (store, dir) = store_with(&mixed_records(), 3, "tsw");
        let report = run(
            &store,
            &QueryOptions {
                since_secs: Some(60),
                until_secs: Some(119),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.rows.iter().all(|r| r[0] == Cell::Int(60)));
        std::fs::remove_dir_all(dir).unwrap();
    }
}
