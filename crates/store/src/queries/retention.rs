//! `retention`: cohort view of flagged targets — of the targets first
//! seen flagged in bucket B, how many still audit as flagged N buckets
//! later. The "Followers or Phantoms?" dropoff curve, computed from
//! audit history instead of follower crawls.

use std::collections::{BTreeMap, BTreeSet};
use std::io;

use super::{Cell, QueryKind, QueryOptions, QueryReport};
use crate::store::{bucket_of, Projection, ScanOptions, Store};

pub(super) fn run(store: &Store, opts: &QueryOptions) -> io::Result<QueryReport> {
    let scan = store.scan(&ScanOptions {
        since_micros: opts.since_micros(),
        until_micros: opts.until_micros(),
        target: None,
        projection: Projection {
            ts: true,
            target: true,
            fake_count: true,
            ..Projection::none()
        },
    })?;

    // Buckets where each target audited flagged (fake_count > 0), and
    // each target's first-seen bucket (flagged or not) as its cohort.
    let mut flagged_in: BTreeMap<u64, BTreeSet<i64>> = BTreeMap::new();
    let mut first_seen: BTreeMap<u64, i64> = BTreeMap::new();
    let mut max_bucket = i64::MIN;
    for row in &scan.rows {
        let bucket = bucket_of(row.ts_micros, opts.bucket_secs);
        max_bucket = max_bucket.max(bucket);
        first_seen
            .entry(row.target)
            .and_modify(|b| *b = (*b).min(bucket))
            .or_insert(bucket);
        if row.fake_count > 0 {
            flagged_in.entry(row.target).or_default().insert(bucket);
        }
    }

    // Cohort B = targets first seen in B that were flagged in B.
    let mut cohorts: BTreeMap<i64, Vec<u64>> = BTreeMap::new();
    for (&target, &bucket) in &first_seen {
        if flagged_in.get(&target).is_some_and(|b| b.contains(&bucket)) {
            cohorts.entry(bucket).or_default().push(target);
        }
    }

    let bucket_secs = opts.bucket_secs.max(1);
    let max_steps = opts.k.max(1) as i64;
    let mut rows = Vec::new();
    for (cohort_bucket, members) in &cohorts {
        let size = members.len() as u64;
        let horizon = (max_bucket - cohort_bucket).min(max_steps);
        for step in 0..=horizon {
            let at = cohort_bucket + step;
            let still = members
                .iter()
                .filter(|t| flagged_in.get(t).is_some_and(|b| b.contains(&at)))
                .count() as u64;
            rows.push(vec![
                Cell::Int(cohort_bucket * bucket_secs),
                Cell::UInt(size),
                Cell::Int(step),
                Cell::UInt(still),
                Cell::Float(still as f64 / size as f64),
            ]);
        }
    }

    Ok(QueryReport {
        kind: QueryKind::Retention,
        columns: vec![
            "cohort_start_secs",
            "cohort_size",
            "step",
            "still_flagged",
            "retained_ratio",
        ],
        rows,
        stats: scan.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{mixed_records, store_with};
    use super::*;

    #[test]
    fn cohort_retention_tracks_flag_dropoff() {
        let (store, dir) = store_with(&mixed_records(), 4, "ret");
        let report = run(&store, &QueryOptions::default()).unwrap();
        // Both targets first appear flagged in bucket 0 => one cohort of
        // size 2. Bucket 1: target 1 flagged, target 2 clean (fakes 0).
        // Bucket 2: only target 1 audits, still flagged.
        assert_eq!(
            report.rows,
            vec![
                vec![
                    Cell::Int(0),
                    Cell::UInt(2),
                    Cell::Int(0),
                    Cell::UInt(2),
                    Cell::Float(1.0)
                ],
                vec![
                    Cell::Int(0),
                    Cell::UInt(2),
                    Cell::Int(1),
                    Cell::UInt(1),
                    Cell::Float(0.5)
                ],
                vec![
                    Cell::Int(0),
                    Cell::UInt(2),
                    Cell::Int(2),
                    Cell::UInt(1),
                    Cell::Float(0.5)
                ],
            ]
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn k_caps_steps() {
        let (store, dir) = store_with(&mixed_records(), 4, "retk");
        let report = run(
            &store,
            &QueryOptions {
                k: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.rows.len(), 2); // steps 0 and 1 only
        std::fs::remove_dir_all(dir).unwrap();
    }
}
