//! `topk`: targets ranked by mean fake-ratio or total crawl cost.

use std::collections::BTreeMap;
use std::io;

use super::{Cell, QueryKind, QueryOptions, QueryReport, TopkBy};
use crate::store::{Projection, ScanOptions, Store};

pub(super) fn run(store: &Store, opts: &QueryOptions) -> io::Result<QueryReport> {
    let scan = store.scan(&ScanOptions {
        since_micros: opts.since_micros(),
        until_micros: opts.until_micros(),
        target: None,
        projection: Projection {
            ts: true,
            target: true,
            fake_ratio: true,
            api_calls: true,
            ..Projection::none()
        },
    })?;

    // target -> (ratio sum, audits, total api calls)
    let mut per_target: BTreeMap<u64, (f64, u64, u64)> = BTreeMap::new();
    for row in &scan.rows {
        let entry = per_target.entry(row.target).or_insert((0.0, 0, 0));
        entry.0 += row.fake_ratio;
        entry.1 += 1;
        entry.2 += row.api_calls;
    }

    let mut ranked: Vec<(u64, f64, u64, u64)> = per_target
        .into_iter()
        .map(|(target, (sum, audits, cost))| (target, sum / audits as f64, audits, cost))
        .collect();
    // Sort by the chosen key descending; ties break by target id
    // ascending so equal scores order deterministically.
    ranked.sort_by(|a, b| {
        let key = match opts.by {
            TopkBy::Ratio => b.1.total_cmp(&a.1),
            TopkBy::Cost => b.3.cmp(&a.3),
        };
        key.then(a.0.cmp(&b.0))
    });
    ranked.truncate(opts.k.max(1));

    let rows = ranked
        .into_iter()
        .enumerate()
        .map(|(i, (target, mean, audits, cost))| {
            vec![
                Cell::UInt(i as u64 + 1),
                Cell::UInt(target),
                Cell::UInt(audits),
                Cell::Float(mean),
                Cell::UInt(cost),
            ]
        })
        .collect();

    Ok(QueryReport {
        kind: QueryKind::Topk,
        columns: vec![
            "rank",
            "target",
            "audits",
            "mean_fake_ratio",
            "total_api_calls",
        ],
        rows,
        stats: scan.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{mixed_records, store_with};
    use super::*;

    #[test]
    fn ranks_by_mean_ratio_descending() {
        let (store, dir) = store_with(&mixed_records(), 3, "topk");
        let report = run(&store, &QueryOptions::default()).unwrap();
        // target 1: (80+70+75+40)/4 = 66.25; target 2: (10+60+5)/3 = 25.
        assert_eq!(
            report.rows,
            vec![
                vec![
                    Cell::UInt(1),
                    Cell::UInt(1),
                    Cell::UInt(4),
                    Cell::Float(66.25),
                    Cell::UInt(10)
                ],
                vec![
                    Cell::UInt(2),
                    Cell::UInt(2),
                    Cell::UInt(3),
                    Cell::Float(25.0),
                    Cell::UInt(8)
                ],
            ]
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn cost_key_and_k_cap() {
        let (store, dir) = store_with(&mixed_records(), 3, "topkc");
        let report = run(
            &store,
            &QueryOptions {
                by: TopkBy::Cost,
                k: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0][1], Cell::UInt(1)); // 10 calls > 8
        std::fs::remove_dir_all(dir).unwrap();
    }
}
