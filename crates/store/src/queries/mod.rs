//! Analytical queries over a [`Store`](crate::Store).
//!
//! Each kind lives in its own module and declares the minimal
//! [`Projection`](crate::Projection) it needs, so scans only decode the
//! columns a query actually consumes. Results are deterministic: group
//! keys are BTreeMap-ordered and every tie-break is explicit, so a fixed
//! store yields byte-identical JSON and table renderings.

mod drift;
mod retention;
mod timeseries;
mod topk;

use std::fmt;
use std::io;
use std::str::FromStr;

use crate::store::{ScanStats, Store};

/// The available query kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Mean fake-ratio per target over time buckets.
    Timeseries,
    /// Per-tool disagreement with the per-target majority verdict.
    Drift,
    /// Cohorts of flagged targets still flagged N buckets later.
    Retention,
    /// Targets ranked by fake ratio or crawl cost.
    Topk,
}

impl QueryKind {
    /// Every kind, in CLI listing order.
    pub const ALL: [QueryKind; 4] = [
        QueryKind::Timeseries,
        QueryKind::Drift,
        QueryKind::Retention,
        QueryKind::Topk,
    ];

    /// The CLI / URL name.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryKind::Timeseries => "timeseries",
            QueryKind::Drift => "drift",
            QueryKind::Retention => "retention",
            QueryKind::Topk => "topk",
        }
    }
}

impl fmt::Display for QueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for QueryKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "timeseries" => Ok(QueryKind::Timeseries),
            "drift" => Ok(QueryKind::Drift),
            "retention" => Ok(QueryKind::Retention),
            "topk" => Ok(QueryKind::Topk),
            other => Err(format!(
                "unknown query kind '{other}' (expected timeseries|drift|retention|topk)"
            )),
        }
    }
}

/// Ranking key for [`QueryKind::Topk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopkBy {
    /// Mean fake-follower ratio (default).
    #[default]
    Ratio,
    /// Total crawl cost in API calls.
    Cost,
}

impl FromStr for TopkBy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ratio" => Ok(TopkBy::Ratio),
            "cost" => Ok(TopkBy::Cost),
            other => Err(format!("unknown topk key '{other}' (expected ratio|cost)")),
        }
    }
}

/// Shared query parameters. Time bounds are inclusive whole seconds on
/// the store clock.
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Keep rows at or after this second.
    pub since_secs: Option<i64>,
    /// Keep rows at or before this second.
    pub until_secs: Option<i64>,
    /// Time-bucket width in seconds for timeseries/drift/retention.
    pub bucket_secs: i64,
    /// Result cap for topk; maximum cohort steps for retention.
    pub k: usize,
    /// Ranking key for topk.
    pub by: TopkBy,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            since_secs: None,
            until_secs: None,
            bucket_secs: 60,
            k: 10,
            by: TopkBy::Ratio,
        }
    }
}

impl QueryOptions {
    pub(crate) fn since_micros(&self) -> Option<i64> {
        self.since_secs.map(|s| s.saturating_mul(1_000_000))
    }

    pub(crate) fn until_micros(&self) -> Option<i64> {
        // Inclusive second bound => include every micro inside it.
        self.until_secs
            .map(|s| s.saturating_mul(1_000_000).saturating_add(999_999))
    }
}

/// One typed cell of a query result, with a deterministic rendering
/// shared by the JSON and table outputs (floats fixed to 4 decimals).
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A signed integer (bucket starts, cohort ids).
    Int(i64),
    /// An unsigned integer (targets, counts).
    UInt(u64),
    /// A ratio or mean, rendered `%.4f`.
    Float(f64),
    /// A label.
    Str(String),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Int(v) => v.to_string(),
            Cell::UInt(v) => v.to_string(),
            Cell::Float(v) => format!("{v:.4}"),
            Cell::Str(s) => s.clone(),
        }
    }

    fn render_json(&self) -> String {
        match self {
            Cell::Int(v) => v.to_string(),
            Cell::UInt(v) => v.to_string(),
            Cell::Float(v) => {
                if v.is_finite() {
                    format!("{v:.4}")
                } else {
                    "null".to_string()
                }
            }
            Cell::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
                out
            }
        }
    }
}

/// A finished query: column names, rows of cells, and the scan work it
/// took to produce them.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// Which query ran.
    pub kind: QueryKind,
    /// Column names, in row-cell order.
    pub columns: Vec<&'static str>,
    /// Result rows.
    pub rows: Vec<Vec<Cell>>,
    /// Scan accounting (segments pruned, rows scanned, ...).
    pub stats: ScanStats,
}

impl QueryReport {
    /// Renders the report as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"rows\":[");
        for (ri, row) in self.rows.iter().enumerate() {
            if ri > 0 {
                out.push(',');
            }
            out.push('{');
            for (ci, cell) in row.iter().enumerate() {
                if ci > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(self.columns[ci]);
                out.push_str("\":");
                out.push_str(&cell.render_json());
            }
            out.push('}');
        }
        out.push_str("],\"stats\":{");
        out.push_str(&format!(
            "\"segments_total\":{},\"segments_pruned\":{},\"rows_scanned\":{},\"rows_pruned\":{},\"rows_selected\":{}",
            self.stats.segments_total,
            self.stats.segments_pruned,
            self.stats.rows_scanned,
            self.stats.rows_pruned,
            self.stats.rows_selected
        ));
        out.push_str("}}");
        out
    }

    /// Renders the report as an aligned plain-text table followed by a
    /// one-line scan summary.
    pub fn to_table(&self) -> String {
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(Cell::render).collect())
            .collect();
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, col) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{col:>width$}", width = widths[i]));
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "# {} rows · scanned {} rows in {}/{} segments ({} rows pruned)\n",
            self.rows.len(),
            self.stats.rows_scanned,
            self.stats.segments_total - self.stats.segments_pruned,
            self.stats.segments_total,
            self.stats.rows_pruned
        ));
        out
    }
}

/// Runs `kind` against `store` with `opts`.
///
/// # Errors
///
/// I/O or `InvalidData` errors from the underlying scan.
pub fn run(store: &Store, kind: QueryKind, opts: &QueryOptions) -> io::Result<QueryReport> {
    match kind {
        QueryKind::Timeseries => timeseries::run(store, opts),
        QueryKind::Drift => drift::run(store, opts),
        QueryKind::Retention => retention::run(store, opts),
        QueryKind::Topk => topk::run(store, opts),
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::record::AuditRecord;
    use crate::store::{Store, StoreWriter};
    use std::path::PathBuf;

    /// Writes `records` into a throwaway store dir with the given flush
    /// threshold and opens it for reading. Caller removes the dir.
    pub fn store_with(records: &[AuditRecord], threshold: usize, tag: &str) -> (Store, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("fakeaudit-query-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = StoreWriter::open(&dir, threshold).unwrap();
        for r in records {
            w.append(r.clone()).unwrap();
        }
        w.flush().unwrap();
        (Store::open(&dir).unwrap(), dir)
    }

    /// A small mixed-history fixture: two targets, two tools, three time
    /// buckets at 60 s width.
    pub fn mixed_records() -> Vec<AuditRecord> {
        let mut out = Vec::new();
        // bucket 0 (0..60 s): both targets flagged.
        for (target, tool, verdict, ratio, fakes) in [
            (1u64, "FC", "fake", 80.0, 400u64),
            (1, "TA", "fake", 70.0, 350),
            (2, "FC", "genuine", 10.0, 50),
            (2, "TA", "fake", 60.0, 300),
        ] {
            out.push(AuditRecord {
                target,
                ts_micros: (out.len() as i64) * 1_000_000,
                tool: tool.into(),
                verdict: verdict.into(),
                outcome: "completed".into(),
                fake_ratio: ratio,
                fake_count: fakes,
                sample_size: 500,
                api_calls: 3,
                trace_id: out.len() as u64,
            });
        }
        // bucket 1 (60..120 s): target 1 still flagged, target 2 clean.
        for (target, tool, verdict, ratio, fakes) in [
            (1u64, "FC", "fake", 75.0, 375u64),
            (2, "FC", "genuine", 5.0, 0),
        ] {
            out.push(AuditRecord {
                target,
                ts_micros: 60_000_000 + (out.len() as i64) * 1_000_000,
                tool: tool.into(),
                verdict: verdict.into(),
                outcome: "completed".into(),
                fake_ratio: ratio,
                fake_count: fakes,
                sample_size: 500,
                api_calls: 2,
                trace_id: out.len() as u64,
            });
        }
        // bucket 2 (120..180 s): only target 1, ratio decayed.
        out.push(AuditRecord {
            target: 1,
            ts_micros: 121_000_000,
            tool: "TA".into(),
            verdict: "inactive".into(),
            outcome: "completed".into(),
            fake_ratio: 40.0,
            fake_count: 200,
            sample_size: 500,
            api_calls: 2,
            trace_id: 99,
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parses_and_rejects() {
        assert_eq!(
            "timeseries".parse::<QueryKind>().unwrap(),
            QueryKind::Timeseries
        );
        assert_eq!("topk".parse::<QueryKind>().unwrap(), QueryKind::Topk);
        assert!("bogus".parse::<QueryKind>().is_err());
    }

    #[test]
    fn json_escapes_strings() {
        let cell = Cell::Str("a\"b\\c\nd".into());
        assert_eq!(cell.render_json(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_renders_json_and_table_deterministically() {
        let report = QueryReport {
            kind: QueryKind::Topk,
            columns: vec!["rank", "target", "mean_fake_ratio"],
            rows: vec![
                vec![Cell::UInt(1), Cell::UInt(42), Cell::Float(87.5)],
                vec![Cell::UInt(2), Cell::UInt(7), Cell::Float(12.25)],
            ],
            stats: ScanStats {
                segments_total: 4,
                segments_pruned: 1,
                rows_scanned: 30,
                rows_pruned: 10,
                rows_selected: 25,
            },
        };
        assert_eq!(
            report.to_json(),
            "{\"kind\":\"topk\",\"rows\":[{\"rank\":1,\"target\":42,\"mean_fake_ratio\":87.5000},{\"rank\":2,\"target\":7,\"mean_fake_ratio\":12.2500}],\"stats\":{\"segments_total\":4,\"segments_pruned\":1,\"rows_scanned\":30,\"rows_pruned\":10,\"rows_selected\":25}}"
        );
        let table = report.to_table();
        assert!(table.contains("rank"));
        assert!(table.ends_with("# 2 rows · scanned 30 rows in 3/4 segments (10 rows pruned)\n"));
        assert_eq!(report.to_table(), table);
    }

    #[test]
    fn until_bound_is_inclusive_to_the_second() {
        let opts = QueryOptions {
            until_secs: Some(10),
            ..Default::default()
        };
        assert_eq!(opts.until_micros(), Some(10_999_999));
    }
}
