//! Directory-level store: the WAL-backed segment writer, startup
//! recovery with quarantine, crash-safe compaction, and the scanning
//! reader with zone-map pruning and late materialization.
//!
//! Every byte that reaches disk goes through the [`StoreIo`] seam, so
//! the whole durability protocol is exercised under deterministic
//! fault injection (see `crates/store/src/io.rs`).

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::encode::crc32;
use crate::io::{RealIo, SharedIo, StoreIo};
use crate::record::AuditRecord;
use crate::segment::{encode_segment, Column, Segment};
use crate::wal;

/// Marker file carrying a CRC'd plan of an in-flight compaction.
const COMPACT_INTENT: &str = "compact.intent";
/// Staging file a compaction writes before renaming into place.
const COMPACT_TMP: &str = "seg-compact.tmp";
/// Staging file recovery uses to rewrite a torn WAL atomically.
const WAL_CONSOLIDATE_TMP: &str = "wal-consolidate.tmp";
/// Suffix appended when recovery quarantines a corrupt segment.
const QUARANTINE_SUFFIX: &str = ".bad";

/// File name of segment `seq` (1-based).
fn segment_name(seq: u64) -> String {
    format!("seg-{seq:08}.fas")
}

/// Parses `seg-%08d.fas`; `None` for anything else in the directory.
fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".fas")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn data_err(err: impl std::error::Error) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

/// When the writer calls fsync — the durability/latency trade the
/// operator picks (`--fsync`).
///
/// | policy      | guaranteed after a crash                         |
/// |-------------|--------------------------------------------------|
/// | `on-append` | every acked row (WAL entry synced before ack)    |
/// | `on-flush`  | every flushed segment; buffered rows best-effort |
/// | `never`     | nothing — whatever the OS happened to write back |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// No fsync at all: fastest, no durability floor.
    Never,
    /// Fsync segment data + directory at flush; WAL appends unsynced.
    #[default]
    OnFlush,
    /// Additionally fsync the WAL on every append, before acking.
    OnAppend,
}

impl FsyncPolicy {
    /// Parses the CLI spelling (`never` / `on-flush` / `on-append`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "never" => Some(Self::Never),
            "on-flush" => Some(Self::OnFlush),
            "on-append" => Some(Self::OnAppend),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Never => "never",
            Self::OnFlush => "on-flush",
            Self::OnAppend => "on-append",
        }
    }
}

/// One segment set aside by recovery instead of failing the open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedSegment {
    /// Original file name (now renamed with a `.bad` suffix).
    pub name: String,
    /// Why it failed to parse.
    pub error: String,
}

/// What startup recovery found and did. Surfaced through
/// [`StoreHealth`], `/healthz`, `/debug/vars`, and `store verify`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Segments that parsed cleanly.
    pub segments_ok: u64,
    /// Segments quarantined (renamed `*.bad`, skipped, still served
    /// around).
    pub quarantined: Vec<QuarantinedSegment>,
    /// Acked rows replayed from the WAL tail.
    pub wal_rows_recovered: u64,
    /// Torn-tail WAL bytes discarded during replay.
    pub wal_bytes_discarded: u64,
    /// WALs whose segment already existed (deleted as stale).
    pub stale_wals_removed: u64,
    /// Leftover `*.tmp` staging files deleted.
    pub tmp_files_removed: u64,
    /// Whether an interrupted compaction was completed or rolled back.
    pub compact_resumed: bool,
}

impl RecoveryReport {
    /// True when recovery found a pristine directory: nothing
    /// quarantined, replayed, discarded, or cleaned up.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
            && self.wal_rows_recovered == 0
            && self.wal_bytes_discarded == 0
            && self.stale_wals_removed == 0
            && self.tmp_files_removed == 0
            && !self.compact_resumed
    }
}

/// Serializes a compaction plan: CRC32 header, then `dest <name>` and
/// one `rm <name>` per victim. The CRC makes a torn intent detectably
/// invalid, which recovery treats as "the compact never committed".
fn intent_payload(dest: &str, victims: &[String]) -> Vec<u8> {
    let mut text = String::new();
    text.push_str("dest ");
    text.push_str(dest);
    text.push('\n');
    for v in victims {
        text.push_str("rm ");
        text.push_str(v);
        text.push('\n');
    }
    let mut out = Vec::with_capacity(4 + text.len());
    out.extend_from_slice(&crc32(text.as_bytes()).to_le_bytes());
    out.extend_from_slice(text.as_bytes());
    out
}

fn parse_intent(buf: &[u8]) -> Option<(String, Vec<String>)> {
    if buf.len() < 4 {
        return None;
    }
    let stored = u32::from_le_bytes(buf[..4].try_into().ok()?);
    let text = std::str::from_utf8(&buf[4..]).ok()?;
    if crc32(text.as_bytes()) != stored {
        return None;
    }
    let mut dest = None;
    let mut victims = Vec::new();
    for line in text.lines() {
        if let Some(d) = line.strip_prefix("dest ") {
            dest = Some(d.to_owned());
        } else if let Some(v) = line.strip_prefix("rm ") {
            victims.push(v.to_owned());
        } else if !line.is_empty() {
            return None;
        }
    }
    Some((dest?, victims))
}

/// Settles an interrupted compaction, idempotently. A valid durable
/// intent means the merged segment was already fully written and
/// synced, so the compact is rolled *forward* (rename if still staged,
/// then delete victims). A torn or missing-output intent rolls back —
/// every victim is still intact because victims are only deleted after
/// the destination is durable.
fn resume_compact(io: &dyn StoreIo, dir: &Path) -> io::Result<()> {
    let intent_path = dir.join(COMPACT_INTENT);
    let tmp = dir.join(COMPACT_TMP);
    match io.read(&intent_path).ok().and_then(|b| parse_intent(&b)) {
        None => {
            let _ = io.remove(&intent_path);
            if io.exists(&tmp) {
                let _ = io.remove(&tmp);
            }
        }
        Some((dest, victims)) => {
            let dest_path = dir.join(&dest);
            if io.exists(&tmp) {
                io.rename(&tmp, &dest_path)?;
            }
            if io.exists(&dest_path) {
                for v in &victims {
                    if *v == dest {
                        continue;
                    }
                    let p = dir.join(v);
                    if io.exists(&p) {
                        io.remove(&p)?;
                    }
                }
            }
            io.remove(&intent_path)?;
        }
    }
    io.sync_dir(dir)
}

/// Everything startup recovery hands back to an opener.
struct Recovered {
    report: RecoveryReport,
    /// Healthy segments, sorted by sequence.
    healthy: Vec<(u64, Segment)>,
    /// Acked rows replayed from live WALs, in append order.
    wal_records: Vec<AuditRecord>,
    /// Sequence numbers of the live WAL files those rows came from.
    live_wals: Vec<u64>,
    /// One past the highest segment name seen (healthy or quarantined).
    next_seq: u64,
}

/// The shared startup recovery routine: resume/roll back compaction,
/// sweep staging files, quarantine corrupt segments, drop stale WALs,
/// and replay the live WAL tail. Never fails because of corruption —
/// only on real I/O errors.
fn recover_dir(io: &dyn StoreIo, dir: &Path) -> io::Result<Recovered> {
    let mut report = RecoveryReport::default();
    let mut names = io.list(dir)?;
    if names.iter().any(|n| n == COMPACT_INTENT) {
        resume_compact(io, dir)?;
        report.compact_resumed = true;
        names = io.list(dir)?;
    }
    let mut dirty = false;
    for name in names.iter().filter(|n| n.ends_with(".tmp")) {
        if io.remove(&dir.join(name)).is_ok() {
            report.tmp_files_removed += 1;
            dirty = true;
        }
    }

    let mut seg_names: Vec<(u64, String)> = names
        .iter()
        .filter_map(|n| parse_segment_name(n).map(|s| (s, n.clone())))
        .collect();
    seg_names.sort();
    let mut wal_names: Vec<(u64, String)> = names
        .iter()
        .filter_map(|n| wal::parse_wal_name(n).map(|s| (s, n.clone())))
        .collect();
    wal_names.sort();

    let mut max_seg_seq = 0u64;
    let mut healthy = Vec::new();
    let mut healthy_seqs = BTreeSet::new();
    for (seq, name) in seg_names {
        max_seg_seq = max_seg_seq.max(seq);
        let path = dir.join(&name);
        match Segment::parse(io.read(&path)?) {
            Ok(seg) => {
                healthy.push((seq, seg));
                healthy_seqs.insert(seq);
                report.segments_ok += 1;
            }
            Err(err) => {
                // Quarantine instead of failing open: move the corpse
                // aside (best effort) and serve everything else.
                let bad = dir.join(format!("{name}{QUARANTINE_SUFFIX}"));
                let _ = io.remove(&bad);
                let _ = io.rename(&path, &bad);
                dirty = true;
                report.quarantined.push(QuarantinedSegment {
                    name,
                    error: err.to_string(),
                });
            }
        }
    }

    let mut wal_records = Vec::new();
    let mut live_wals = Vec::new();
    for (seq, name) in wal_names {
        let path = dir.join(&name);
        if healthy_seqs.contains(&seq) {
            // Its segment landed durably: every row is already in the
            // segment, so the journal is stale by construction.
            if io.remove(&path).is_ok() {
                report.stale_wals_removed += 1;
                dirty = true;
            }
        } else {
            let replayed = wal::replay(&io.read(&path)?);
            report.wal_rows_recovered += replayed.records.len() as u64;
            report.wal_bytes_discarded += replayed.discarded_bytes;
            wal_records.extend(replayed.records);
            live_wals.push(seq);
        }
    }

    if dirty {
        let _ = io.sync_dir(dir);
    }
    Ok(Recovered {
        report,
        healthy,
        wal_records,
        live_wals,
        next_seq: max_seg_seq + 1,
    })
}

/// Summary of one buffer flush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushInfo {
    /// Path of the segment just written.
    pub path: PathBuf,
    /// Its 1-based sequence number.
    pub seq: u64,
    /// Rows it holds.
    pub rows: usize,
    /// Its encoded size in bytes.
    pub bytes: usize,
}

/// Writer-side view of store state, for health endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreHealth {
    /// Segments written by this writer plus any found at open.
    pub segments: u64,
    /// Rows sitting in the in-memory buffer, journaled but not yet in
    /// a segment.
    pub buffered_rows: u64,
    /// Rows flushed into segments over this writer's lifetime.
    pub flushed_rows: u64,
    /// Sequence number of the most recent flush (0 = none yet).
    pub last_flush_seq: u64,
    /// Whether persistence gave up after repeated I/O errors. The
    /// writer keeps accepting (and dropping) rows so serving survives
    /// a sick disk; a successful explicit flush revives it.
    pub degraded: bool,
    /// Rows dropped to errors or degraded mode, never journaled.
    pub dropped_rows: u64,
    /// Corrupt segments quarantined at open.
    pub quarantined_segments: u64,
    /// Acked rows recovered from the WAL at open.
    pub wal_recovered_rows: u64,
}

/// Appends audit records: each row is journaled to the write-ahead log
/// before it is acked, buffered in memory, and flushed into an
/// immutable columnar segment once the buffer reaches the threshold.
///
/// Flushes are atomic and (per [`FsyncPolicy`]) durable: the segment
/// is staged as `<name>.tmp`, synced, renamed into place, and the
/// directory synced before the journal is discarded. Opening runs the
/// shared recovery routine, so a writer pointed at a crashed directory
/// starts with every acked row back in its buffer.
#[derive(Debug)]
pub struct StoreWriter {
    io: SharedIo,
    dir: PathBuf,
    flush_threshold: usize,
    fsync: FsyncPolicy,
    buffer: Vec<AuditRecord>,
    next_seq: u64,
    segments: u64,
    flushed_rows: u64,
    last_flush_seq: u64,
    /// Whether the current WAL file's *name* has been made durable via
    /// a directory sync (needed once per generation under `on-append`).
    wal_name_durable: bool,
    recovery: RecoveryReport,
    consecutive_io_errors: u32,
    degraded: bool,
    dropped_rows: u64,
}

impl StoreWriter {
    /// Default rows-per-segment flush threshold.
    pub const DEFAULT_FLUSH_THRESHOLD: usize = 1024;

    /// Consecutive I/O failures before the writer degrades (stops
    /// persisting, keeps serving).
    pub const MAX_CONSECUTIVE_IO_ERRORS: u32 = 8;

    /// Opens (creating if needed) a store directory for appending,
    /// with the real filesystem and the default fsync policy.
    ///
    /// # Errors
    ///
    /// As [`StoreWriter::open_with`].
    pub fn open(dir: impl Into<PathBuf>, flush_threshold: usize) -> io::Result<Self> {
        Self::open_with(
            RealIo::shared(),
            dir,
            flush_threshold,
            FsyncPolicy::default(),
        )
    }

    /// Opens a store directory over an explicit [`StoreIo`] with an
    /// explicit fsync policy. Runs startup recovery: an interrupted
    /// compaction is settled, corrupt segments are quarantined,
    /// leftover staging files are swept, and acked rows are replayed
    /// from the WAL into the buffer (flushing immediately if they
    /// already exceed the threshold). Numbering continues after any
    /// existing segments.
    ///
    /// # Errors
    ///
    /// I/O errors creating, listing, or reading the directory — never
    /// corruption, which is quarantined instead.
    pub fn open_with(
        io: SharedIo,
        dir: impl Into<PathBuf>,
        flush_threshold: usize,
        fsync: FsyncPolicy,
    ) -> io::Result<Self> {
        let dir = dir.into();
        io.create_dir_all(&dir)?;
        let rec = recover_dir(io.as_ref(), &dir)?;
        let next_seq = rec.next_seq;

        // Consolidate the recovered tail into this writer's journal.
        // Fast path: the one live WAL is already ours and intact.
        let aligned = rec.live_wals == [next_seq] && rec.report.wal_bytes_discarded == 0;
        let mut wal_name_durable = false;
        if aligned {
            wal_name_durable = true; // it was listed, so its name survived
        } else if !rec.wal_records.is_empty() {
            // Rewrite atomically: torn tails must not be appended past.
            let tmp = dir.join(WAL_CONSOLIDATE_TMP);
            io.write(&tmp, &wal::encode_entries(&rec.wal_records))?;
            io.sync_file(&tmp)?;
            io.rename(&tmp, &dir.join(wal::wal_name(next_seq)))?;
            for &seq in &rec.live_wals {
                if seq != next_seq {
                    let _ = io.remove(&dir.join(wal::wal_name(seq)));
                }
            }
            io.sync_dir(&dir)?;
            wal_name_durable = true;
        } else if !rec.live_wals.is_empty() {
            // Live WALs that replayed to nothing: just garbage tails.
            for &seq in &rec.live_wals {
                let _ = io.remove(&dir.join(wal::wal_name(seq)));
            }
            let _ = io.sync_dir(&dir);
        }

        let mut writer = Self {
            io,
            dir,
            flush_threshold: flush_threshold.max(1),
            fsync,
            buffer: rec.wal_records,
            next_seq,
            segments: rec.report.segments_ok,
            flushed_rows: 0,
            last_flush_seq: 0,
            wal_name_durable,
            recovery: rec.report,
            consecutive_io_errors: 0,
            degraded: false,
            dropped_rows: 0,
        };
        if writer.buffer.len() >= writer.flush_threshold {
            writer.flush()?;
        }
        Ok(writer)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fsync policy this writer runs under.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    /// What startup recovery found when this writer opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Journals one record ahead of the ack. Under `on-append` this
    /// syncs the WAL (and, once per generation, the directory) before
    /// returning — the row is crash-durable when this returns `Ok`.
    fn wal_append(&mut self, record: &AuditRecord) -> io::Result<()> {
        let path = self.dir.join(wal::wal_name(self.next_seq));
        self.io.append(&path, &wal::encode_entry(record))?;
        if self.fsync == FsyncPolicy::OnAppend {
            self.io.sync_file(&path)?;
            if !self.wal_name_durable {
                self.io.sync_dir(&self.dir)?;
                self.wal_name_durable = true;
            }
        }
        Ok(())
    }

    fn note_io_error(&mut self) {
        self.consecutive_io_errors += 1;
        if self.consecutive_io_errors >= Self::MAX_CONSECUTIVE_IO_ERRORS {
            self.degraded = true;
        }
    }

    /// Appends one record; flushes a segment when the buffer reaches
    /// the threshold, returning its [`FlushInfo`]. While degraded the
    /// row is counted as dropped and `Ok(None)` is returned so serving
    /// continues.
    ///
    /// # Errors
    ///
    /// I/O errors journaling or flushing. A journaling error means the
    /// row was dropped; a flush error means it is buffered and
    /// journaled, and the flush will be retried.
    pub fn append(&mut self, record: AuditRecord) -> io::Result<Option<FlushInfo>> {
        if self.degraded {
            self.dropped_rows += 1;
            return Ok(None);
        }
        if let Err(err) = self.wal_append(&record) {
            self.dropped_rows += 1;
            self.note_io_error();
            return Err(err);
        }
        self.buffer.push(record);
        if self.buffer.len() >= self.flush_threshold {
            return self.flush().map(Some);
        }
        self.consecutive_io_errors = 0;
        Ok(None)
    }

    /// Flushes the buffer into one segment, atomically and durably per
    /// the fsync policy. No-op result when empty. A successful flush
    /// also revives a degraded writer.
    ///
    /// # Errors
    ///
    /// I/O errors staging, syncing, or renaming the segment; the
    /// buffer is kept so the flush can be retried.
    pub fn flush(&mut self) -> io::Result<FlushInfo> {
        if self.buffer.is_empty() {
            return Ok(FlushInfo {
                path: self.dir.clone(),
                seq: self.last_flush_seq,
                rows: 0,
                bytes: 0,
            });
        }
        match self.flush_inner() {
            Ok(info) => {
                self.degraded = false;
                self.consecutive_io_errors = 0;
                Ok(info)
            }
            Err(err) => {
                self.note_io_error();
                Err(err)
            }
        }
    }

    fn flush_inner(&mut self) -> io::Result<FlushInfo> {
        let bytes = encode_segment(&self.buffer);
        let seq = self.next_seq;
        let name = segment_name(seq);
        let path = self.dir.join(&name);
        let tmp = self.dir.join(format!("{name}.tmp"));
        self.io.write(&tmp, &bytes)?;
        if self.fsync != FsyncPolicy::Never {
            self.io.sync_file(&tmp)?;
        }
        self.io.rename(&tmp, &path)?;
        if self.fsync != FsyncPolicy::Never {
            self.io.sync_dir(&self.dir)?;
        }
        // The segment is in place: the journal is now stale by the
        // naming rule, so even a failed delete here is harmless.
        let wal_path = self.dir.join(wal::wal_name(seq));
        if self.io.exists(&wal_path) {
            let _ = self.io.remove(&wal_path);
        }
        let rows = self.buffer.len();
        self.buffer.clear();
        self.next_seq += 1;
        self.segments += 1;
        self.flushed_rows += rows as u64;
        self.last_flush_seq = seq;
        self.wal_name_durable = false;
        Ok(FlushInfo {
            path,
            seq,
            rows,
            bytes: bytes.len(),
        })
    }

    /// Current writer-side health counters.
    pub fn health(&self) -> StoreHealth {
        StoreHealth {
            segments: self.segments,
            buffered_rows: self.buffer.len() as u64,
            flushed_rows: self.flushed_rows,
            last_flush_seq: self.last_flush_seq,
            degraded: self.degraded,
            dropped_rows: self.dropped_rows,
            quarantined_segments: self.recovery.quarantined.len() as u64,
            wal_recovered_rows: self.recovery.wal_rows_recovered,
        }
    }
}

/// A writer handle shareable across gateway worker threads.
pub type SharedWriter = Arc<Mutex<StoreWriter>>;

/// Creates a [`SharedWriter`] with the default flush threshold and
/// fsync policy.
///
/// # Errors
///
/// As [`StoreWriter::open`].
pub fn open_shared(dir: impl Into<PathBuf>) -> io::Result<SharedWriter> {
    open_shared_with(dir, FsyncPolicy::default())
}

/// Creates a [`SharedWriter`] with the default flush threshold and an
/// explicit fsync policy.
///
/// # Errors
///
/// As [`StoreWriter::open_with`].
pub fn open_shared_with(dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> io::Result<SharedWriter> {
    Ok(Arc::new(Mutex::new(StoreWriter::open_with(
        RealIo::shared(),
        dir,
        StoreWriter::DEFAULT_FLUSH_THRESHOLD,
        fsync,
    )?)))
}

/// Which columns a scan materializes. Start from [`Projection::none`]
/// and enable only what the query consumes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Projection {
    /// Materialize timestamps.
    pub ts: bool,
    /// Materialize target ids.
    pub target: bool,
    /// Materialize tool labels.
    pub tool: bool,
    /// Materialize verdict labels.
    pub verdict: bool,
    /// Materialize outcome labels.
    pub outcome: bool,
    /// Materialize fake ratios.
    pub fake_ratio: bool,
    /// Materialize fake counts.
    pub fake_count: bool,
    /// Materialize sample sizes.
    pub sample_size: bool,
    /// Materialize API-call counts.
    pub api_calls: bool,
    /// Materialize trace ids.
    pub trace_id: bool,
}

impl Projection {
    /// Nothing projected (row selection only).
    pub fn none() -> Self {
        Self::default()
    }

    /// Every column projected.
    pub fn all() -> Self {
        Self {
            ts: true,
            target: true,
            tool: true,
            verdict: true,
            outcome: true,
            fake_ratio: true,
            fake_count: true,
            sample_size: true,
            api_calls: true,
            trace_id: true,
        }
    }
}

/// Scan filter + projection. Bounds are inclusive microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanOptions {
    /// Keep rows with `ts >= since_micros`.
    pub since_micros: Option<i64>,
    /// Keep rows with `ts <= until_micros`.
    pub until_micros: Option<i64>,
    /// Keep rows for exactly this target.
    pub target: Option<u64>,
    /// Columns to materialize for selected rows.
    pub projection: Projection,
}

/// One materialized row. Unprojected columns hold defaults — callers
/// read only what they projected.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScanRow {
    /// Timestamp (micros) when projected.
    pub ts_micros: i64,
    /// Target id when projected.
    pub target: u64,
    /// Tool label when projected.
    pub tool: String,
    /// Verdict label when projected.
    pub verdict: String,
    /// Outcome label when projected.
    pub outcome: String,
    /// Fake ratio when projected.
    pub fake_ratio: f64,
    /// Fake count when projected.
    pub fake_count: u64,
    /// Sample size when projected.
    pub sample_size: u64,
    /// API calls when projected.
    pub api_calls: u64,
    /// Trace id when projected.
    pub trace_id: u64,
}

/// Work accounting for one scan — the numbers E13 plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanStats {
    /// Segments in the store.
    pub segments_total: u64,
    /// Segments skipped entirely via zone maps.
    pub segments_pruned: u64,
    /// Rows in segments that were opened.
    pub rows_scanned: u64,
    /// Rows in segments that were never opened.
    pub rows_pruned: u64,
    /// Rows that passed the filters.
    pub rows_selected: u64,
}

/// Rows plus the work it took to find them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScanResult {
    /// Selected rows in `(ts, segment, row)` order.
    pub rows: Vec<ScanRow>,
    /// Scan work accounting.
    pub stats: ScanStats,
}

/// Store-wide size summary (`fakeaudit store stats`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Segment count.
    pub segments: u64,
    /// Total rows across segments.
    pub rows: u64,
    /// Total encoded bytes.
    pub bytes: u64,
    /// Per-segment `(seq, rows, bytes)` in sequence order.
    pub per_segment: Vec<(u64, u64, u64)>,
}

/// Read-side handle over a store directory. Opening runs startup
/// recovery — corrupt segments are quarantined rather than failing the
/// open, and acked rows in the WAL tail are materialized as an
/// in-memory segment so scans see them.
#[derive(Debug)]
pub struct Store {
    segments: Vec<(u64, Segment)>,
    recovery: RecoveryReport,
}

impl Store {
    /// Opens every segment in `dir` on the real filesystem.
    ///
    /// # Errors
    ///
    /// As [`Store::open_with`].
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with(&RealIo, dir.as_ref())
    }

    /// Opens every segment in `dir` over an explicit [`StoreIo`],
    /// running the shared recovery routine first.
    ///
    /// # Errors
    ///
    /// `NotFound` when the directory does not exist; other I/O errors
    /// reading files. Corruption never fails the open — it is
    /// quarantined and reported via [`Store::recovery`].
    pub fn open_with(io: &dyn StoreIo, dir: &Path) -> io::Result<Self> {
        if !io.dir_exists(dir) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("store directory not found: {}", dir.display()),
            ));
        }
        let rec = recover_dir(io, dir)?;
        let mut segments = rec.healthy;
        if !rec.wal_records.is_empty() {
            // The unflushed tail becomes a synthetic trailing segment,
            // so every scan path (pruning, projection) applies to it.
            let seg = Segment::parse(encode_segment(&rec.wal_records))
                .expect("fresh encoding always parses");
            segments.push((rec.next_seq, seg));
        }
        Ok(Self {
            segments,
            recovery: rec.report,
        })
    }

    /// What startup recovery found when this store opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total rows across all segments.
    pub fn total_rows(&self) -> u64 {
        self.segments.iter().map(|(_, s)| s.rows() as u64).sum()
    }

    /// Timestamp span `(min, max)` in microseconds across every
    /// segment's zone map, or `None` for an empty store. Header-only —
    /// no column block is decoded.
    pub fn ts_bounds(&self) -> Option<(i64, i64)> {
        self.segments
            .iter()
            .map(|(_, s)| (s.zone().ts_min, s.zone().ts_max))
            .reduce(|(lo, hi), (a, b)| (lo.min(a), hi.max(b)))
    }

    /// Size summary for `store stats`.
    pub fn stats(&self) -> StoreStats {
        let per_segment: Vec<(u64, u64, u64)> = self
            .segments
            .iter()
            .map(|(seq, s)| (*seq, s.rows() as u64, s.byte_len() as u64))
            .collect();
        StoreStats {
            segments: per_segment.len() as u64,
            rows: per_segment.iter().map(|&(_, r, _)| r).sum(),
            bytes: per_segment.iter().map(|&(_, _, b)| b).sum(),
            per_segment,
        }
    }

    /// Scans the store: zone-map pruning first, then per-segment late
    /// materialization — timestamps (and targets if filtered) decode
    /// first to build the selection; projected columns decode only for
    /// segments with survivors, and only selected rows materialize.
    ///
    /// # Errors
    ///
    /// `InvalidData` for malformed column blocks.
    pub fn scan(&self, opts: &ScanOptions) -> io::Result<ScanResult> {
        let mut result = ScanResult::default();
        result.stats.segments_total = self.segments.len() as u64;
        for (_, seg) in &self.segments {
            let zone = seg.zone();
            let pruned = !zone.overlaps_window(opts.since_micros, opts.until_micros)
                || opts.target.is_some_and(|t| !zone.may_contain_target(t));
            if pruned {
                result.stats.segments_pruned += 1;
                result.stats.rows_pruned += seg.rows() as u64;
                continue;
            }
            result.stats.rows_scanned += seg.rows() as u64;

            let ts = seg.decode_ts().map_err(data_err)?;
            let targets_for_filter = if opts.target.is_some() {
                Some(seg.decode_targets().map_err(data_err)?)
            } else {
                None
            };
            let selected: Vec<usize> = (0..seg.rows())
                .filter(|&i| {
                    opts.since_micros.is_none_or(|s| ts[i] >= s)
                        && opts.until_micros.is_none_or(|u| ts[i] <= u)
                        && targets_for_filter
                            .as_ref()
                            .is_none_or(|t| Some(t[i]) == opts.target)
                })
                .collect();
            if selected.is_empty() {
                continue;
            }
            result.stats.rows_selected += selected.len() as u64;

            let p = opts.projection;
            let targets = if p.target {
                match targets_for_filter {
                    Some(t) => Some(t),
                    None => Some(seg.decode_targets().map_err(data_err)?),
                }
            } else {
                None
            };
            let tools = if p.tool {
                Some(seg.decode_strings(Column::Tool).map_err(data_err)?)
            } else {
                None
            };
            let verdicts = if p.verdict {
                Some(seg.decode_strings(Column::Verdict).map_err(data_err)?)
            } else {
                None
            };
            let outcomes = if p.outcome {
                Some(seg.decode_strings(Column::Outcome).map_err(data_err)?)
            } else {
                None
            };
            let ratios = if p.fake_ratio {
                Some(seg.decode_ratios().map_err(data_err)?)
            } else {
                None
            };
            let fake_counts = if p.fake_count {
                Some(seg.decode_counts(Column::FakeCount).map_err(data_err)?)
            } else {
                None
            };
            let samples = if p.sample_size {
                Some(seg.decode_counts(Column::SampleSize).map_err(data_err)?)
            } else {
                None
            };
            let api_calls = if p.api_calls {
                Some(seg.decode_counts(Column::ApiCalls).map_err(data_err)?)
            } else {
                None
            };
            let trace_ids = if p.trace_id {
                Some(seg.decode_counts(Column::TraceId).map_err(data_err)?)
            } else {
                None
            };

            for &i in &selected {
                let mut row = ScanRow::default();
                if p.ts {
                    row.ts_micros = ts[i];
                }
                if let Some(t) = &targets {
                    row.target = t[i];
                }
                if let Some((dict, idx)) = &tools {
                    row.tool = dict[idx[i] as usize].clone();
                }
                if let Some((dict, idx)) = &verdicts {
                    row.verdict = dict[idx[i] as usize].clone();
                }
                if let Some((dict, idx)) = &outcomes {
                    row.outcome = dict[idx[i] as usize].clone();
                }
                if let Some(r) = &ratios {
                    row.fake_ratio = r[i];
                }
                if let Some(c) = &fake_counts {
                    row.fake_count = c[i];
                }
                if let Some(s) = &samples {
                    row.sample_size = s[i];
                }
                if let Some(a) = &api_calls {
                    row.api_calls = a[i];
                }
                if let Some(t) = &trace_ids {
                    row.trace_id = t[i];
                }
                result.rows.push(row);
            }
        }
        Ok(result)
    }
}

/// Merges every healthy segment in `dir` (plus any live WAL tail) into
/// a single segment numbered 1, in `(seq, row)` order — deterministic
/// for a fixed store. Returns `(segments_before, rows)`.
///
/// Crash-safe via an intent file: the merged segment is staged and
/// synced, a CRC'd `compact.intent` naming the destination and every
/// victim is made durable, and only then is the staging file renamed
/// and the victims deleted. Recovery rolls an interrupted compact
/// forward (intent durable) or back (intent torn) — never losing rows
/// and never leaving duplicates.
///
/// # Errors
///
/// I/O errors, or `InvalidData` if a healthy-looking segment fails to
/// decode.
pub fn compact(dir: impl AsRef<Path>) -> io::Result<(u64, u64)> {
    compact_with(&RealIo, dir.as_ref())
}

/// [`compact`] over an explicit [`StoreIo`].
///
/// # Errors
///
/// As [`compact`].
pub fn compact_with(io: &dyn StoreIo, dir: &Path) -> io::Result<(u64, u64)> {
    // Settle any interrupted prior compact and quarantine corruption
    // first, so the merge only sees healthy rows.
    let rec = recover_dir(io, dir)?;
    let segments_before = rec.healthy.len() as u64;
    let mut all: Vec<AuditRecord> = Vec::new();
    let mut victims: Vec<String> = Vec::new();
    let dest = segment_name(1);
    for (seq, seg) in &rec.healthy {
        all.extend(seg.decode_all().map_err(data_err)?);
        let name = segment_name(*seq);
        if name != dest {
            victims.push(name);
        }
    }
    all.extend(rec.wal_records);
    for &seq in &rec.live_wals {
        victims.push(wal::wal_name(seq));
    }
    if all.is_empty() {
        return Ok((segments_before, 0));
    }

    let bytes = encode_segment(&all);
    let tmp = dir.join(COMPACT_TMP);
    io.write(&tmp, &bytes)?;
    io.sync_file(&tmp)?;
    let intent = dir.join(COMPACT_INTENT);
    io.write(&intent, &intent_payload(&dest, &victims))?;
    io.sync_file(&intent)?;
    io.sync_dir(dir)?; // commit point: staged bytes + plan are durable
    io.rename(&tmp, &dir.join(&dest))?;
    io.sync_dir(dir)?;
    for v in &victims {
        let p = dir.join(v);
        if io.exists(&p) {
            io.remove(&p)?;
        }
    }
    io.remove(&intent)?;
    io.sync_dir(dir)?;
    Ok((segments_before, all.len() as u64))
}

/// Read-only integrity check of a store directory — what `fakeaudit
/// store verify` prints. Unlike opening, this mutates nothing: it
/// deep-verifies every segment (footer, per-column CRCs, full decode)
/// and classifies WALs and recovery leftovers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerifyReport {
    /// Segments that deep-verified cleanly.
    pub segments_ok: u64,
    /// Rows across healthy segments.
    pub segment_rows: u64,
    /// Acked rows waiting in live WALs.
    pub wal_rows: u64,
    /// Hard problems: corrupt segments. Non-empty ⇒ verification
    /// fails (the CLI exits nonzero).
    pub issues: Vec<String>,
    /// Recoverable leftovers (stale WALs, torn tails, staging files,
    /// an interrupted compact, quarantined corpses) that the next open
    /// will settle.
    pub notes: Vec<String>,
}

impl VerifyReport {
    /// Whether every segment verified cleanly.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Deep-verifies `dir` on the real filesystem without mutating it.
///
/// # Errors
///
/// `NotFound` when the directory does not exist; other I/O errors
/// reading files.
pub fn verify(dir: impl AsRef<Path>) -> io::Result<VerifyReport> {
    verify_with(&RealIo, dir.as_ref())
}

/// [`verify`] over an explicit [`StoreIo`].
///
/// # Errors
///
/// As [`verify`].
pub fn verify_with(io: &dyn StoreIo, dir: &Path) -> io::Result<VerifyReport> {
    if !io.dir_exists(dir) {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("store directory not found: {}", dir.display()),
        ));
    }
    let names = io.list(dir)?;
    let mut report = VerifyReport::default();
    let mut healthy_seqs = BTreeSet::new();
    for name in &names {
        let Some(seq) = parse_segment_name(name) else {
            continue;
        };
        let deep = Segment::parse(io.read(&dir.join(name))?)
            .and_then(|seg| seg.verify_columns().and_then(|()| seg.decode_all()));
        match deep {
            Ok(rows) => {
                report.segments_ok += 1;
                report.segment_rows += rows.len() as u64;
                healthy_seqs.insert(seq);
            }
            Err(err) => report.issues.push(format!("{name}: {err}")),
        }
    }
    for name in &names {
        if let Some(seq) = wal::parse_wal_name(name) {
            let replayed = wal::replay(&io.read(&dir.join(name))?);
            if healthy_seqs.contains(&seq) {
                report.notes.push(format!(
                    "{name}: stale (segment {seq} exists); removed on next open"
                ));
            } else {
                report.wal_rows += replayed.records.len() as u64;
                if replayed.discarded_bytes > 0 {
                    report.notes.push(format!(
                        "{name}: torn tail, {} byte(s) discarded on replay",
                        replayed.discarded_bytes
                    ));
                }
            }
        } else if name.ends_with(".tmp") {
            report.notes.push(format!(
                "{name}: leftover staging file; removed on next open"
            ));
        } else if name == COMPACT_INTENT {
            report.notes.push(format!(
                "{name}: interrupted compaction; settled on next open"
            ));
        } else if name.ends_with(QUARANTINE_SUFFIX) {
            report
                .notes
                .push(format!("{name}: quarantined by an earlier recovery"));
        }
    }
    Ok(report)
}

/// Runs startup recovery on `dir` without keeping the store open —
/// what `fakeaudit store repair` does: settles interrupted compacts,
/// quarantines corrupt segments, sweeps staging files and stale WALs.
/// The WAL tail itself is left in place for the next writer.
///
/// # Errors
///
/// `NotFound` when the directory does not exist; other I/O errors.
pub fn repair(dir: impl AsRef<Path>) -> io::Result<RecoveryReport> {
    repair_with(&RealIo, dir.as_ref())
}

/// [`repair`] over an explicit [`StoreIo`].
///
/// # Errors
///
/// As [`repair`].
pub fn repair_with(io: &dyn StoreIo, dir: &Path) -> io::Result<RecoveryReport> {
    if !io.dir_exists(dir) {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("store directory not found: {}", dir.display()),
        ));
    }
    Ok(recover_dir(io, dir)?.report)
}

/// Groups rows into fixed-width time buckets keyed by floor-division of
/// the row's whole-second timestamp — shared by the query kinds.
pub fn bucket_of(ts_micros: i64, bucket_secs: i64) -> i64 {
    ts_micros
        .div_euclid(1_000_000)
        .div_euclid(bucket_secs.max(1))
}

/// Deterministic `(bucket, key) -> values` grouping helper.
pub type Grouped<K, V> = BTreeMap<(i64, K), V>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    /// Sorted segment sequence numbers on the real filesystem.
    fn seg_seqs(dir: &Path) -> Vec<u64> {
        let mut out: Vec<u64> = fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.unwrap().file_name().to_str().and_then(parse_segment_name))
            .collect();
        out.sort_unstable();
        out
    }

    fn records(n: usize, base_target: u64) -> Vec<AuditRecord> {
        (0..n)
            .map(|i| AuditRecord {
                target: base_target + (i as u64 % 3),
                ts_micros: i as i64 * 2_000_000,
                tool: ["FC", "TA"][i % 2].to_string(),
                verdict: "fake".to_string(),
                outcome: "completed".to_string(),
                fake_ratio: i as f64,
                fake_count: i as u64,
                sample_size: 100,
                api_calls: 2,
                trace_id: i as u64,
            })
            .collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fakeaudit-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writer_flushes_at_threshold_and_reader_round_trips() {
        let dir = temp_dir("rt");
        let mut w = StoreWriter::open(&dir, 4).unwrap();
        let recs = records(10, 100);
        let mut flushes = 0;
        for r in &recs {
            if w.append(r.clone()).unwrap().is_some() {
                flushes += 1;
            }
        }
        assert_eq!(flushes, 2); // 10 rows / threshold 4 => 2 full segments
        let tail = w.flush().unwrap();
        assert_eq!(tail.rows, 2);
        assert_eq!(w.health().segments, 3);
        assert_eq!(w.health().buffered_rows, 0);
        assert_eq!(w.health().flushed_rows, 10);

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.segment_count(), 3);
        let result = store
            .scan(&ScanOptions {
                projection: Projection::all(),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(result.rows.len(), 10);
        // Scan order is (segment, row) order == append order here.
        for (i, row) in result.rows.iter().enumerate() {
            assert_eq!(row.ts_micros, recs[i].ts_micros);
            assert_eq!(row.target, recs[i].target);
            assert_eq!(row.tool, recs[i].tool);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopened_writer_continues_numbering() {
        let dir = temp_dir("reopen");
        let mut w = StoreWriter::open(&dir, 2).unwrap();
        for r in records(2, 1) {
            w.append(r).unwrap();
        }
        drop(w);
        let mut w2 = StoreWriter::open(&dir, 2).unwrap();
        assert_eq!(w2.health().segments, 1);
        for r in records(2, 1) {
            w2.append(r).unwrap();
        }
        assert_eq!(seg_seqs(&dir), vec![1, 2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unflushed_rows_survive_writer_drop_via_wal() {
        let dir = temp_dir("waltail");
        let recs = records(7, 9);
        {
            let mut w = StoreWriter::open(&dir, 100).unwrap();
            for r in &recs {
                w.append(r.clone()).unwrap();
            }
            // No flush: the writer dies with everything buffered.
        }
        assert_eq!(seg_seqs(&dir), Vec::<u64>::new());

        // A reader sees the journaled tail as a synthetic segment.
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.recovery().wal_rows_recovered, 7);
        let rows = store
            .scan(&ScanOptions {
                projection: Projection::all(),
                ..Default::default()
            })
            .unwrap()
            .rows;
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[3].ts_micros, recs[3].ts_micros);

        // A reopened writer gets the rows back in its buffer and a
        // flush makes them a real segment, discarding the journal.
        let mut w = StoreWriter::open(&dir, 100).unwrap();
        assert_eq!(w.health().wal_recovered_rows, 7);
        assert_eq!(w.health().buffered_rows, 7);
        let info = w.flush().unwrap();
        assert_eq!(info.rows, 7);
        assert!(!fs::read_dir(&dir).unwrap().any(|e| {
            e.unwrap()
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("wal-"))
        }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_segment_is_quarantined_not_fatal() {
        let dir = temp_dir("quarantine");
        let mut w = StoreWriter::open(&dir, 3).unwrap();
        for r in records(9, 5) {
            w.append(r).unwrap();
        }
        w.flush().unwrap();
        drop(w);

        // Flip one bit in the middle of segment 2.
        let victim = dir.join(segment_name(2));
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&victim, &bytes).unwrap();

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.recovery().quarantined.len(), 1);
        assert_eq!(store.recovery().quarantined[0].name, segment_name(2));
        assert_eq!(store.segment_count(), 2);
        assert_eq!(store.total_rows(), 6);
        assert!(dir.join(format!("{}.bad", segment_name(2))).exists());
        assert!(!victim.exists());

        // The writer skips the freed number: new data never collides
        // with the quarantined corpse.
        let mut w = StoreWriter::open(&dir, 3).unwrap();
        assert_eq!(w.health().quarantined_segments, 0); // already moved
        for r in records(3, 5) {
            w.append(r).unwrap();
        }
        assert_eq!(seg_seqs(&dir), vec![1, 3, 4]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_leaves_no_staging_or_intent_files() {
        let dir = temp_dir("compactclean");
        let mut w = StoreWriter::open(&dir, 2).unwrap();
        for r in records(5, 3) {
            w.append(r).unwrap();
        }
        drop(w); // one row still journaled

        let (was, rows) = compact(&dir).unwrap();
        assert_eq!(was, 2);
        assert_eq!(rows, 5); // the WAL tail row is folded in
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec![segment_name(1)]);
        assert_eq!(Store::open(&dir).unwrap().total_rows(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_flags_corruption_and_stays_read_only() {
        let dir = temp_dir("verify");
        let mut w = StoreWriter::open(&dir, 2).unwrap();
        for r in records(5, 3) {
            w.append(r).unwrap();
        }
        drop(w);

        let clean = verify(&dir).unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.segments_ok, 2);
        assert_eq!(clean.segment_rows, 4);
        assert_eq!(clean.wal_rows, 1);

        let victim = dir.join(segment_name(1));
        let mut bytes = fs::read(&victim).unwrap();
        bytes[200] ^= 0x01;
        fs::write(&victim, &bytes).unwrap();
        let dirty = verify(&dir).unwrap();
        assert!(!dirty.is_clean());
        assert_eq!(dirty.issues.len(), 1);
        // verify must not have touched the corrupt file.
        assert!(victim.exists());

        // repair quarantines it.
        let report = repair(&dir).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert!(!victim.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policy_parses_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("on-flush"), Some(FsyncPolicy::OnFlush));
        assert_eq!(FsyncPolicy::parse("on-append"), Some(FsyncPolicy::OnAppend));
        assert_eq!(FsyncPolicy::parse("always"), None);
        assert_eq!(FsyncPolicy::OnAppend.as_str(), "on-append");
    }

    #[test]
    fn time_window_prunes_segments_and_matches_full_scan() {
        let dir = temp_dir("prune");
        let mut w = StoreWriter::open(&dir, 5).unwrap();
        for r in records(20, 7) {
            w.append(r).unwrap();
        }
        w.flush().unwrap();
        let store = Store::open(&dir).unwrap();

        // Window covering rows 0..=4 (ts 0..=8s) hits only segment 1.
        let windowed = store
            .scan(&ScanOptions {
                since_micros: Some(0),
                until_micros: Some(8_000_000),
                projection: Projection::all(),
                ..Default::default()
            })
            .unwrap();
        assert!(windowed.stats.segments_pruned >= 3);
        assert!(windowed.stats.rows_pruned > 0);

        // Pruned scan must equal a brute-force filter of the full scan.
        let full = store
            .scan(&ScanOptions {
                projection: Projection::all(),
                ..Default::default()
            })
            .unwrap();
        let expected: Vec<&ScanRow> = full
            .rows
            .iter()
            .filter(|r| r.ts_micros <= 8_000_000)
            .collect();
        assert_eq!(windowed.rows.len(), expected.len());
        for (got, want) in windowed.rows.iter().zip(expected) {
            assert_eq!(got, want);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn target_filter_uses_zone_map() {
        let dir = temp_dir("target");
        let mut w = StoreWriter::open(&dir, 5).unwrap();
        for r in records(5, 10) {
            w.append(r).unwrap();
        }
        for r in records(5, 500) {
            w.append(r).unwrap();
        }
        w.flush().unwrap();
        let store = Store::open(&dir).unwrap();
        let result = store
            .scan(&ScanOptions {
                target: Some(501),
                projection: Projection::all(),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(result.stats.segments_pruned, 1);
        assert!(result.rows.iter().all(|r| r.target == 501));
        assert!(!result.rows.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_merges_to_one_segment_preserving_rows() {
        let dir = temp_dir("compact");
        let mut w = StoreWriter::open(&dir, 3).unwrap();
        for r in records(9, 42) {
            w.append(r).unwrap();
        }
        w.flush().unwrap();
        let before = Store::open(&dir).unwrap();
        let full_before = before
            .scan(&ScanOptions {
                projection: Projection::all(),
                ..Default::default()
            })
            .unwrap();
        let (was, rows) = compact(&dir).unwrap();
        assert_eq!(was, 3);
        assert_eq!(rows, 9);
        let after = Store::open(&dir).unwrap();
        assert_eq!(after.segment_count(), 1);
        let full_after = after
            .scan(&ScanOptions {
                projection: Projection::all(),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(full_before.rows, full_after.rows);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_dir_is_not_found() {
        let err = Store::open("/nonexistent/fakeaudit-store-xyz").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn bucket_of_floors_negatives() {
        assert_eq!(bucket_of(0, 60), 0);
        assert_eq!(bucket_of(59_999_999, 60), 0);
        assert_eq!(bucket_of(60_000_000, 60), 1);
        assert_eq!(bucket_of(-1, 60), -1);
    }
}
