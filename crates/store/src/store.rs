//! Directory-level store: the WAL-less segment writer and the scanning
//! reader with zone-map pruning and late materialization.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::record::AuditRecord;
use crate::segment::{encode_segment, Column, Segment};

/// File name of segment `seq` (1-based).
fn segment_name(seq: u64) -> String {
    format!("seg-{seq:08}.fas")
}

/// Parses `seg-%08d.fas`; `None` for anything else in the directory.
fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".fas")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Sorted `(seq, path)` list of segment files under `dir`.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|&(seq, _)| seq);
    Ok(out)
}

fn data_err(err: impl std::error::Error) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

/// Summary of one buffer flush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushInfo {
    /// Path of the segment just written.
    pub path: PathBuf,
    /// Its 1-based sequence number.
    pub seq: u64,
    /// Rows it holds.
    pub rows: usize,
    /// Its encoded size in bytes.
    pub bytes: usize,
}

/// Writer-side view of store state, for health endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreHealth {
    /// Segments written by this writer plus any found at open.
    pub segments: u64,
    /// Rows sitting in the in-memory buffer, not yet durable.
    pub buffered_rows: u64,
    /// Rows flushed into segments over this writer's lifetime.
    pub flushed_rows: u64,
    /// Sequence number of the most recent flush (0 = none yet).
    pub last_flush_seq: u64,
}

/// Appends audit records, buffering in memory and flushing immutable
/// columnar segments once the buffer reaches the flush threshold.
///
/// WAL-less by design: rows in the buffer are lost on crash, which is
/// acceptable for replayable audit history; callers flush explicitly at
/// shutdown (the gateway does so during its two-phase drain).
#[derive(Debug)]
pub struct StoreWriter {
    dir: PathBuf,
    flush_threshold: usize,
    buffer: Vec<AuditRecord>,
    next_seq: u64,
    segments: u64,
    flushed_rows: u64,
    last_flush_seq: u64,
}

impl StoreWriter {
    /// Default rows-per-segment flush threshold.
    pub const DEFAULT_FLUSH_THRESHOLD: usize = 1024;

    /// Opens (creating if needed) a store directory for appending.
    /// Numbering continues after any existing segments.
    ///
    /// # Errors
    ///
    /// I/O errors creating or listing the directory.
    pub fn open(dir: impl Into<PathBuf>, flush_threshold: usize) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let existing = list_segments(&dir)?;
        let next_seq = existing.last().map_or(1, |&(seq, _)| seq + 1);
        Ok(Self {
            dir,
            flush_threshold: flush_threshold.max(1),
            buffer: Vec::new(),
            next_seq,
            segments: existing.len() as u64,
            flushed_rows: 0,
            last_flush_seq: 0,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one record; flushes a segment when the buffer reaches the
    /// threshold, returning its [`FlushInfo`].
    ///
    /// # Errors
    ///
    /// I/O errors writing the segment file.
    pub fn append(&mut self, record: AuditRecord) -> io::Result<Option<FlushInfo>> {
        self.buffer.push(record);
        if self.buffer.len() >= self.flush_threshold {
            return self.flush().map(Some);
        }
        Ok(None)
    }

    /// Flushes the buffer into one segment. No-op result when empty.
    ///
    /// # Errors
    ///
    /// I/O errors writing the segment file.
    pub fn flush(&mut self) -> io::Result<FlushInfo> {
        if self.buffer.is_empty() {
            return Ok(FlushInfo {
                path: self.dir.clone(),
                seq: self.last_flush_seq,
                rows: 0,
                bytes: 0,
            });
        }
        let bytes = encode_segment(&self.buffer);
        let seq = self.next_seq;
        let path = self.dir.join(segment_name(seq));
        fs::write(&path, &bytes)?;
        let rows = self.buffer.len();
        self.buffer.clear();
        self.next_seq += 1;
        self.segments += 1;
        self.flushed_rows += rows as u64;
        self.last_flush_seq = seq;
        Ok(FlushInfo {
            path,
            seq,
            rows,
            bytes: bytes.len(),
        })
    }

    /// Current writer-side health counters.
    pub fn health(&self) -> StoreHealth {
        StoreHealth {
            segments: self.segments,
            buffered_rows: self.buffer.len() as u64,
            flushed_rows: self.flushed_rows,
            last_flush_seq: self.last_flush_seq,
        }
    }
}

/// A writer handle shareable across gateway worker threads.
pub type SharedWriter = Arc<Mutex<StoreWriter>>;

/// Creates a [`SharedWriter`] with the default flush threshold.
///
/// # Errors
///
/// As [`StoreWriter::open`].
pub fn open_shared(dir: impl Into<PathBuf>) -> io::Result<SharedWriter> {
    Ok(Arc::new(Mutex::new(StoreWriter::open(
        dir,
        StoreWriter::DEFAULT_FLUSH_THRESHOLD,
    )?)))
}

/// Which columns a scan materializes. Start from [`Projection::none`]
/// and enable only what the query consumes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Projection {
    /// Materialize timestamps.
    pub ts: bool,
    /// Materialize target ids.
    pub target: bool,
    /// Materialize tool labels.
    pub tool: bool,
    /// Materialize verdict labels.
    pub verdict: bool,
    /// Materialize outcome labels.
    pub outcome: bool,
    /// Materialize fake ratios.
    pub fake_ratio: bool,
    /// Materialize fake counts.
    pub fake_count: bool,
    /// Materialize sample sizes.
    pub sample_size: bool,
    /// Materialize API-call counts.
    pub api_calls: bool,
    /// Materialize trace ids.
    pub trace_id: bool,
}

impl Projection {
    /// Nothing projected (row selection only).
    pub fn none() -> Self {
        Self::default()
    }

    /// Every column projected.
    pub fn all() -> Self {
        Self {
            ts: true,
            target: true,
            tool: true,
            verdict: true,
            outcome: true,
            fake_ratio: true,
            fake_count: true,
            sample_size: true,
            api_calls: true,
            trace_id: true,
        }
    }
}

/// Scan filter + projection. Bounds are inclusive microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanOptions {
    /// Keep rows with `ts >= since_micros`.
    pub since_micros: Option<i64>,
    /// Keep rows with `ts <= until_micros`.
    pub until_micros: Option<i64>,
    /// Keep rows for exactly this target.
    pub target: Option<u64>,
    /// Columns to materialize for selected rows.
    pub projection: Projection,
}

/// One materialized row. Unprojected columns hold defaults — callers
/// read only what they projected.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScanRow {
    /// Timestamp (micros) when projected.
    pub ts_micros: i64,
    /// Target id when projected.
    pub target: u64,
    /// Tool label when projected.
    pub tool: String,
    /// Verdict label when projected.
    pub verdict: String,
    /// Outcome label when projected.
    pub outcome: String,
    /// Fake ratio when projected.
    pub fake_ratio: f64,
    /// Fake count when projected.
    pub fake_count: u64,
    /// Sample size when projected.
    pub sample_size: u64,
    /// API calls when projected.
    pub api_calls: u64,
    /// Trace id when projected.
    pub trace_id: u64,
}

/// Work accounting for one scan — the numbers E13 plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanStats {
    /// Segments in the store.
    pub segments_total: u64,
    /// Segments skipped entirely via zone maps.
    pub segments_pruned: u64,
    /// Rows in segments that were opened.
    pub rows_scanned: u64,
    /// Rows in segments that were never opened.
    pub rows_pruned: u64,
    /// Rows that passed the filters.
    pub rows_selected: u64,
}

/// Rows plus the work it took to find them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScanResult {
    /// Selected rows in `(ts, segment, row)` order.
    pub rows: Vec<ScanRow>,
    /// Scan work accounting.
    pub stats: ScanStats,
}

/// Store-wide size summary (`fakeaudit store stats`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Segment count.
    pub segments: u64,
    /// Total rows across segments.
    pub rows: u64,
    /// Total encoded bytes.
    pub bytes: u64,
    /// Per-segment `(seq, rows, bytes)` in sequence order.
    pub per_segment: Vec<(u64, u64, u64)>,
}

/// Read-side handle over a store directory. Opens segment headers
/// eagerly (cheap) and column blocks lazily per scan.
#[derive(Debug)]
pub struct Store {
    segments: Vec<(u64, Segment)>,
}

impl Store {
    /// Opens every segment header in `dir`.
    ///
    /// # Errors
    ///
    /// `NotFound` when the directory does not exist; `InvalidData` for a
    /// malformed segment; other I/O errors reading files.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref();
        if !dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("store directory not found: {}", dir.display()),
            ));
        }
        let mut segments = Vec::new();
        for (seq, path) in list_segments(dir)? {
            let seg = Segment::parse(fs::read(&path)?).map_err(data_err)?;
            segments.push((seq, seg));
        }
        Ok(Self { segments })
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total rows across all segments.
    pub fn total_rows(&self) -> u64 {
        self.segments.iter().map(|(_, s)| s.rows() as u64).sum()
    }

    /// Timestamp span `(min, max)` in microseconds across every
    /// segment's zone map, or `None` for an empty store. Header-only —
    /// no column block is decoded.
    pub fn ts_bounds(&self) -> Option<(i64, i64)> {
        self.segments
            .iter()
            .map(|(_, s)| (s.zone().ts_min, s.zone().ts_max))
            .reduce(|(lo, hi), (a, b)| (lo.min(a), hi.max(b)))
    }

    /// Size summary for `store stats`.
    pub fn stats(&self) -> StoreStats {
        let per_segment: Vec<(u64, u64, u64)> = self
            .segments
            .iter()
            .map(|(seq, s)| (*seq, s.rows() as u64, s.byte_len() as u64))
            .collect();
        StoreStats {
            segments: per_segment.len() as u64,
            rows: per_segment.iter().map(|&(_, r, _)| r).sum(),
            bytes: per_segment.iter().map(|&(_, _, b)| b).sum(),
            per_segment,
        }
    }

    /// Scans the store: zone-map pruning first, then per-segment late
    /// materialization — timestamps (and targets if filtered) decode
    /// first to build the selection; projected columns decode only for
    /// segments with survivors, and only selected rows materialize.
    ///
    /// # Errors
    ///
    /// `InvalidData` for malformed column blocks.
    pub fn scan(&self, opts: &ScanOptions) -> io::Result<ScanResult> {
        let mut result = ScanResult::default();
        result.stats.segments_total = self.segments.len() as u64;
        for (_, seg) in &self.segments {
            let zone = seg.zone();
            let pruned = !zone.overlaps_window(opts.since_micros, opts.until_micros)
                || opts.target.is_some_and(|t| !zone.may_contain_target(t));
            if pruned {
                result.stats.segments_pruned += 1;
                result.stats.rows_pruned += seg.rows() as u64;
                continue;
            }
            result.stats.rows_scanned += seg.rows() as u64;

            let ts = seg.decode_ts().map_err(data_err)?;
            let targets_for_filter = if opts.target.is_some() {
                Some(seg.decode_targets().map_err(data_err)?)
            } else {
                None
            };
            let selected: Vec<usize> = (0..seg.rows())
                .filter(|&i| {
                    opts.since_micros.is_none_or(|s| ts[i] >= s)
                        && opts.until_micros.is_none_or(|u| ts[i] <= u)
                        && targets_for_filter
                            .as_ref()
                            .is_none_or(|t| Some(t[i]) == opts.target)
                })
                .collect();
            if selected.is_empty() {
                continue;
            }
            result.stats.rows_selected += selected.len() as u64;

            let p = opts.projection;
            let targets = if p.target {
                match targets_for_filter {
                    Some(t) => Some(t),
                    None => Some(seg.decode_targets().map_err(data_err)?),
                }
            } else {
                None
            };
            let tools = if p.tool {
                Some(seg.decode_strings(Column::Tool).map_err(data_err)?)
            } else {
                None
            };
            let verdicts = if p.verdict {
                Some(seg.decode_strings(Column::Verdict).map_err(data_err)?)
            } else {
                None
            };
            let outcomes = if p.outcome {
                Some(seg.decode_strings(Column::Outcome).map_err(data_err)?)
            } else {
                None
            };
            let ratios = if p.fake_ratio {
                Some(seg.decode_ratios().map_err(data_err)?)
            } else {
                None
            };
            let fake_counts = if p.fake_count {
                Some(seg.decode_counts(Column::FakeCount).map_err(data_err)?)
            } else {
                None
            };
            let samples = if p.sample_size {
                Some(seg.decode_counts(Column::SampleSize).map_err(data_err)?)
            } else {
                None
            };
            let api_calls = if p.api_calls {
                Some(seg.decode_counts(Column::ApiCalls).map_err(data_err)?)
            } else {
                None
            };
            let trace_ids = if p.trace_id {
                Some(seg.decode_counts(Column::TraceId).map_err(data_err)?)
            } else {
                None
            };

            for &i in &selected {
                let mut row = ScanRow::default();
                if p.ts {
                    row.ts_micros = ts[i];
                }
                if let Some(t) = &targets {
                    row.target = t[i];
                }
                if let Some((dict, idx)) = &tools {
                    row.tool = dict[idx[i] as usize].clone();
                }
                if let Some((dict, idx)) = &verdicts {
                    row.verdict = dict[idx[i] as usize].clone();
                }
                if let Some((dict, idx)) = &outcomes {
                    row.outcome = dict[idx[i] as usize].clone();
                }
                if let Some(r) = &ratios {
                    row.fake_ratio = r[i];
                }
                if let Some(c) = &fake_counts {
                    row.fake_count = c[i];
                }
                if let Some(s) = &samples {
                    row.sample_size = s[i];
                }
                if let Some(a) = &api_calls {
                    row.api_calls = a[i];
                }
                if let Some(t) = &trace_ids {
                    row.trace_id = t[i];
                }
                result.rows.push(row);
            }
        }
        Ok(result)
    }
}

/// Merges every segment in `dir` into a single segment numbered 1, in
/// `(seq, row)` order — deterministic for a fixed store. Returns
/// `(segments_before, rows)`.
///
/// # Errors
///
/// I/O or `InvalidData` errors reading segments, or writing the merged
/// one.
pub fn compact(dir: impl AsRef<Path>) -> io::Result<(u64, u64)> {
    let dir = dir.as_ref();
    let entries = list_segments(dir)?;
    let mut all: Vec<AuditRecord> = Vec::new();
    for (_, path) in &entries {
        let seg = Segment::parse(fs::read(path)?).map_err(data_err)?;
        all.extend(seg.decode_all().map_err(data_err)?);
    }
    if all.is_empty() {
        return Ok((entries.len() as u64, 0));
    }
    let bytes = encode_segment(&all);
    let tmp = dir.join("seg-compact.tmp");
    fs::write(&tmp, &bytes)?;
    for (_, path) in &entries {
        fs::remove_file(path)?;
    }
    fs::rename(&tmp, dir.join(segment_name(1)))?;
    Ok((entries.len() as u64, all.len() as u64))
}

/// Groups rows into fixed-width time buckets keyed by floor-division of
/// the row's whole-second timestamp — shared by the query kinds.
pub fn bucket_of(ts_micros: i64, bucket_secs: i64) -> i64 {
    ts_micros
        .div_euclid(1_000_000)
        .div_euclid(bucket_secs.max(1))
}

/// Deterministic `(bucket, key) -> values` grouping helper.
pub type Grouped<K, V> = BTreeMap<(i64, K), V>;

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: usize, base_target: u64) -> Vec<AuditRecord> {
        (0..n)
            .map(|i| AuditRecord {
                target: base_target + (i as u64 % 3),
                ts_micros: i as i64 * 2_000_000,
                tool: ["FC", "TA"][i % 2].to_string(),
                verdict: "fake".to_string(),
                outcome: "completed".to_string(),
                fake_ratio: i as f64,
                fake_count: i as u64,
                sample_size: 100,
                api_calls: 2,
                trace_id: i as u64,
            })
            .collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fakeaudit-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writer_flushes_at_threshold_and_reader_round_trips() {
        let dir = temp_dir("rt");
        let mut w = StoreWriter::open(&dir, 4).unwrap();
        let recs = records(10, 100);
        let mut flushes = 0;
        for r in &recs {
            if w.append(r.clone()).unwrap().is_some() {
                flushes += 1;
            }
        }
        assert_eq!(flushes, 2); // 10 rows / threshold 4 => 2 full segments
        let tail = w.flush().unwrap();
        assert_eq!(tail.rows, 2);
        assert_eq!(w.health().segments, 3);
        assert_eq!(w.health().buffered_rows, 0);
        assert_eq!(w.health().flushed_rows, 10);

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.segment_count(), 3);
        let result = store
            .scan(&ScanOptions {
                projection: Projection::all(),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(result.rows.len(), 10);
        // Scan order is (segment, row) order == append order here.
        for (i, row) in result.rows.iter().enumerate() {
            assert_eq!(row.ts_micros, recs[i].ts_micros);
            assert_eq!(row.target, recs[i].target);
            assert_eq!(row.tool, recs[i].tool);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopened_writer_continues_numbering() {
        let dir = temp_dir("reopen");
        let mut w = StoreWriter::open(&dir, 2).unwrap();
        for r in records(2, 1) {
            w.append(r).unwrap();
        }
        drop(w);
        let mut w2 = StoreWriter::open(&dir, 2).unwrap();
        assert_eq!(w2.health().segments, 1);
        for r in records(2, 1) {
            w2.append(r).unwrap();
        }
        let names: Vec<u64> = list_segments(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(names, vec![1, 2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn time_window_prunes_segments_and_matches_full_scan() {
        let dir = temp_dir("prune");
        let mut w = StoreWriter::open(&dir, 5).unwrap();
        for r in records(20, 7) {
            w.append(r).unwrap();
        }
        w.flush().unwrap();
        let store = Store::open(&dir).unwrap();

        // Window covering rows 0..=4 (ts 0..=8s) hits only segment 1.
        let windowed = store
            .scan(&ScanOptions {
                since_micros: Some(0),
                until_micros: Some(8_000_000),
                projection: Projection::all(),
                ..Default::default()
            })
            .unwrap();
        assert!(windowed.stats.segments_pruned >= 3);
        assert!(windowed.stats.rows_pruned > 0);

        // Pruned scan must equal a brute-force filter of the full scan.
        let full = store
            .scan(&ScanOptions {
                projection: Projection::all(),
                ..Default::default()
            })
            .unwrap();
        let expected: Vec<&ScanRow> = full
            .rows
            .iter()
            .filter(|r| r.ts_micros <= 8_000_000)
            .collect();
        assert_eq!(windowed.rows.len(), expected.len());
        for (got, want) in windowed.rows.iter().zip(expected) {
            assert_eq!(got, want);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn target_filter_uses_zone_map() {
        let dir = temp_dir("target");
        let mut w = StoreWriter::open(&dir, 5).unwrap();
        for r in records(5, 10) {
            w.append(r).unwrap();
        }
        for r in records(5, 500) {
            w.append(r).unwrap();
        }
        w.flush().unwrap();
        let store = Store::open(&dir).unwrap();
        let result = store
            .scan(&ScanOptions {
                target: Some(501),
                projection: Projection::all(),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(result.stats.segments_pruned, 1);
        assert!(result.rows.iter().all(|r| r.target == 501));
        assert!(!result.rows.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_merges_to_one_segment_preserving_rows() {
        let dir = temp_dir("compact");
        let mut w = StoreWriter::open(&dir, 3).unwrap();
        for r in records(9, 42) {
            w.append(r).unwrap();
        }
        w.flush().unwrap();
        let before = Store::open(&dir).unwrap();
        let full_before = before
            .scan(&ScanOptions {
                projection: Projection::all(),
                ..Default::default()
            })
            .unwrap();
        let (was, rows) = compact(&dir).unwrap();
        assert_eq!(was, 3);
        assert_eq!(rows, 9);
        let after = Store::open(&dir).unwrap();
        assert_eq!(after.segment_count(), 1);
        let full_after = after
            .scan(&ScanOptions {
                projection: Projection::all(),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(full_before.rows, full_after.rows);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_dir_is_not_found() {
        let err = Store::open("/nonexistent/fakeaudit-store-xyz").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn bucket_of_floors_negatives() {
        assert_eq!(bucket_of(0, 60), 0);
        assert_eq!(bucket_of(59_999_999, 60), 0);
        assert_eq!(bucket_of(60_000_000, 60), 1);
        assert_eq!(bucket_of(-1, 60), -1);
    }
}
