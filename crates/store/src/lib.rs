//! Embedded columnar audit-history store.
//!
//! The paper's verdict tables are one-shot snapshots; this crate keeps
//! the longitudinal record — every completed audit appended as an
//! [`AuditRecord`] through a WAL-less [`StoreWriter`] that flushes
//! immutable columnar segments (dictionary-encoded labels and targets,
//! delta-encoded timestamps, zone-map min/max footers), byte-
//! deterministic for a fixed record stream. The read side ([`Store`])
//! scans with zone-map segment pruning and late materialization, and
//! [`queries`] layers the analytical kinds (`timeseries`, `drift`,
//! `retention`, `topk`) on top.
//!
//! Dependency-free by design: no serde, no allocator tricks, std only —
//! callers (server sim, gateway, CLI, bench) wire the returned
//! [`FlushInfo`]/[`ScanStats`] into telemetry themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
pub mod queries;
mod record;
mod segment;
mod store;

pub use encode::DecodeError;
pub use record::{dominant_verdict, AuditRecord};
pub use segment::{encode_segment, Column, Segment, ZoneMap, COLUMN_COUNT, DATA_START, MAGIC};
pub use store::{
    bucket_of, compact, open_shared, FlushInfo, Projection, ScanOptions, ScanResult, ScanRow,
    ScanStats, SharedWriter, Store, StoreHealth, StoreStats, StoreWriter,
};
