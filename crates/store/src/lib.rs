//! Embedded columnar audit-history store.
//!
//! The paper's verdict tables are one-shot snapshots; this crate keeps
//! the longitudinal record — every completed audit appended as an
//! [`AuditRecord`] through a [`StoreWriter`] that journals each row to
//! a checksummed write-ahead log before acking, then flushes immutable
//! columnar segments (dictionary-encoded labels and targets,
//! delta-encoded timestamps, zone-map min/max footers, per-column and
//! whole-file CRC32s), byte-deterministic for a fixed record stream.
//! Flushes and compactions are atomic and crash-safe (stage → sync →
//! rename → sync), the ack-time durability floor is an [`FsyncPolicy`]
//! knob, and opening either side runs a recovery routine that replays
//! the WAL tail and quarantines corrupt segments instead of failing —
//! all of it provable in-process against the deterministic
//! fault-injecting filesystem in [`io`]. The read side ([`Store`])
//! scans with zone-map segment pruning and late materialization, and
//! [`queries`] layers the analytical kinds (`timeseries`, `drift`,
//! `retention`, `topk`) on top.
//!
//! Dependency-free by design: no serde, no allocator tricks, std only —
//! callers (server sim, gateway, CLI, bench) wire the returned
//! [`FlushInfo`]/[`ScanStats`]/[`RecoveryReport`] into telemetry
//! themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
pub mod io;
pub mod queries;
mod record;
mod segment;
mod store;
pub mod wal;

pub use encode::{crc32, DecodeError};
pub use io::{CrashMode, FaultScript, MemIo, RealIo, SharedIo, StoreIo};
pub use record::{dominant_verdict, AuditRecord};
pub use segment::{
    encode_segment, Column, Segment, SegmentVersion, ZoneMap, COLUMN_COUNT, DATA_START,
    DATA_START_V1, FOOTER_LEN, MAGIC, MAGIC_V1,
};
pub use store::{
    bucket_of, compact, compact_with, open_shared, open_shared_with, repair, repair_with, verify,
    verify_with, FlushInfo, FsyncPolicy, Projection, QuarantinedSegment, RecoveryReport,
    ScanOptions, ScanResult, ScanRow, ScanStats, SharedWriter, Store, StoreHealth, StoreStats,
    StoreWriter, VerifyReport,
};
