//! Primitive byte-level codecs: LEB128 varints, zigzag for signed
//! deltas, fixed-width little-endian floats, and the two dictionary
//! shapes (u64 values, strings) the segment columns build on.
//!
//! Every encoder is a pure function of its input, appending to a caller
//! buffer — identical input always produces identical bytes, which is
//! what makes whole segments byte-deterministic.

use std::fmt;

/// IEEE CRC-32 lookup table (reflected polynomial 0xEDB88320), built at
/// compile time so the store crate stays dependency-free.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/gzip/PNG polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// A malformed byte stream: truncated input, an over-long varint, or an
/// out-of-range dictionary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What the decoder was reading when it failed.
    pub context: &'static str,
    /// Byte offset (within the block being decoded) of the failure.
    pub offset: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed {} at byte {}", self.context, self.offset)
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over an immutable byte slice with decode helpers.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// The current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn err(&self, context: &'static str) -> DecodeError {
        DecodeError {
            context,
            offset: self.pos,
        }
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] when fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.err(context))?;
        if end > self.buf.len() {
            return Err(self.err(context));
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation or a varint longer than 10 bytes.
    pub fn varint(&mut self, context: &'static str) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self.buf.get(self.pos).ok_or_else(|| self.err(context))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(self.err(context));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag-encoded signed varint.
    ///
    /// # Errors
    ///
    /// As [`Reader::varint`].
    pub fn zigzag(&mut self, context: &'static str) -> Result<i64, DecodeError> {
        let raw = self.varint(context)?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }

    /// Reads a little-endian u32.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, DecodeError> {
        let b = self.bytes(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, DecodeError> {
        let b = self.bytes(8, context)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a little-endian f64 (bit-exact round trip).
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64(context)?))
    }
}

/// Appends one LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends one zigzag-encoded signed varint.
pub fn put_zigzag(out: &mut Vec<u8>, value: i64) {
    put_varint(out, ((value << 1) ^ (value >> 63)) as u64);
}

/// Appends a little-endian u32.
pub fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian u64.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian f64 by bit pattern.
pub fn put_f64(out: &mut Vec<u8>, value: f64) {
    put_u64(out, value.to_bits());
}

/// Dictionary-encodes a u64 column: distinct values in first-seen order,
/// then one index per row. First-seen order makes the dictionary (and so
/// the bytes) a pure function of the row stream.
pub fn put_u64_dict(out: &mut Vec<u8>, values: &[u64]) {
    let mut dict: Vec<u64> = Vec::new();
    let mut indices: Vec<u64> = Vec::with_capacity(values.len());
    for &v in values {
        let idx = match dict.iter().position(|&d| d == v) {
            Some(i) => i,
            None => {
                dict.push(v);
                dict.len() - 1
            }
        };
        indices.push(idx as u64);
    }
    put_u32(out, dict.len() as u32);
    for &v in &dict {
        put_varint(out, v);
    }
    for &i in &indices {
        put_varint(out, i);
    }
}

/// Decodes a [`put_u64_dict`] block: the dictionary plus the per-row
/// index stream (indices validated against the dictionary length).
///
/// # Errors
///
/// [`DecodeError`] on truncation or an index past the dictionary.
pub fn read_u64_dict(
    r: &mut Reader<'_>,
    rows: usize,
    context: &'static str,
) -> Result<(Vec<u64>, Vec<u32>), DecodeError> {
    let n = r.u32(context)? as usize;
    let mut dict = Vec::with_capacity(n);
    for _ in 0..n {
        dict.push(r.varint(context)?);
    }
    let mut indices = Vec::with_capacity(rows);
    for _ in 0..rows {
        let idx = r.varint(context)?;
        if idx as usize >= n {
            return Err(DecodeError {
                context,
                offset: r.pos(),
            });
        }
        indices.push(idx as u32);
    }
    Ok((dict, indices))
}

/// Dictionary-encodes a string column (first-seen order, like
/// [`put_u64_dict`]).
pub fn put_str_dict(out: &mut Vec<u8>, values: &[&str]) {
    let mut dict: Vec<&str> = Vec::new();
    let mut indices: Vec<u64> = Vec::with_capacity(values.len());
    for &v in values {
        let idx = match dict.iter().position(|&d| d == v) {
            Some(i) => i,
            None => {
                dict.push(v);
                dict.len() - 1
            }
        };
        indices.push(idx as u64);
    }
    put_u32(out, dict.len() as u32);
    for &v in &dict {
        put_varint(out, v.len() as u64);
        out.extend_from_slice(v.as_bytes());
    }
    for &i in &indices {
        put_varint(out, i);
    }
}

/// Decodes a [`put_str_dict`] block.
///
/// # Errors
///
/// [`DecodeError`] on truncation, invalid UTF-8, or an index past the
/// dictionary.
pub fn read_str_dict(
    r: &mut Reader<'_>,
    rows: usize,
    context: &'static str,
) -> Result<(Vec<String>, Vec<u32>), DecodeError> {
    let n = r.u32(context)? as usize;
    let mut dict = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.varint(context)? as usize;
        let bytes = r.bytes(len, context)?;
        let s = std::str::from_utf8(bytes).map_err(|_| DecodeError {
            context,
            offset: r.pos(),
        })?;
        dict.push(s.to_owned());
    }
    let mut indices = Vec::with_capacity(rows);
    for _ in 0..rows {
        let idx = r.varint(context)?;
        if idx as usize >= n {
            return Err(DecodeError {
                context,
                offset: r.pos(),
            });
        }
        indices.push(idx as u32);
    }
    Ok((dict, indices))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"the audit history must survive the machine".to_vec();
        let base = crc32(&data);
        for offset in 0..data.len() {
            for bit in 0..8 {
                let mut copy = data.clone();
                copy[offset] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at {offset}:{bit} undetected");
            }
        }
    }

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint("t").unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn zigzag_round_trips_signed() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_zigzag(&mut buf, v);
            assert_eq!(Reader::new(&buf).zigzag("t").unwrap(), v);
        }
    }

    #[test]
    fn truncated_varint_errors() {
        let buf = [0x80u8, 0x80];
        assert!(Reader::new(&buf).varint("t").is_err());
    }

    #[test]
    fn overlong_varint_errors() {
        let buf = [0xffu8; 11];
        assert!(Reader::new(&buf).varint("t").is_err());
    }

    #[test]
    fn f64_is_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, f64::MAX, f64::NAN] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let back = Reader::new(&buf).f64("t").unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn u64_dict_round_trips_and_is_first_seen_ordered() {
        let values = [7u64, 3, 7, 9, 3, 7];
        let mut buf = Vec::new();
        put_u64_dict(&mut buf, &values);
        let mut r = Reader::new(&buf);
        let (dict, idx) = read_u64_dict(&mut r, values.len(), "t").unwrap();
        assert_eq!(dict, vec![7, 3, 9]);
        let back: Vec<u64> = idx.iter().map(|&i| dict[i as usize]).collect();
        assert_eq!(back, values);
        assert!(r.is_empty());
    }

    #[test]
    fn str_dict_round_trips() {
        let values = ["TA", "FC", "TA", "SB"];
        let mut buf = Vec::new();
        put_str_dict(&mut buf, &values);
        let mut r = Reader::new(&buf);
        let (dict, idx) = read_str_dict(&mut r, values.len(), "t").unwrap();
        let back: Vec<&str> = idx.iter().map(|&i| dict[i as usize].as_str()).collect();
        assert_eq!(back, values);
    }

    #[test]
    fn dict_index_out_of_range_errors() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1); // dict of one value
        put_varint(&mut buf, 5);
        put_varint(&mut buf, 3); // index 3 into a 1-entry dict
        let mut r = Reader::new(&buf);
        assert!(read_u64_dict(&mut r, 1, "t").is_err());
    }
}
