//! Immutable columnar segment files.
//!
//! Current layout — v2, checksummed (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"FAKSEG2\n"
//!      8     4  row_count                u32
//!     12    48  zone map: ts_min/ts_max  i64 ×2
//!               target_min/target_max    u64 ×2
//!               ratio_min/ratio_max      f64 ×2 (bit pattern)
//!     60   120  directory: 10 × (offset u32, len u32, crc32 u32),
//!               offsets relative to the data area at byte 180
//!    180     —  column blocks, contiguous, in directory order
//!   last     4  footer: CRC-32 of every preceding byte
//! ```
//!
//! [`Segment::parse`] verifies the footer CRC and requires the
//! directory to tile the data area exactly (contiguous, no gaps), so
//! any single flipped bit or truncated tail is a [`DecodeError`] —
//! never a panic, never silently wrong rows. The per-column CRCs are
//! re-checked lazily when a column is decoded, which localizes damage
//! for `store verify` diagnostics. v1 files (`FAKSEG1\n`, no
//! checksums, data at byte 140) are still readable.
//!
//! Column order: `0 ts` (zigzag-varint deltas off ts_min), `1 target`
//! (u64 dict), `2 tool` / `3 verdict` / `4 outcome` (string dicts),
//! `5 fake_ratio` (raw f64), `6 fake_count` / `7 sample_size` /
//! `8 api_calls` / `9 trace_id` (varints).
//!
//! Encoding is a pure function of the record slice, so a fixed record
//! stream produces byte-identical segments — the determinism invariant
//! the golden fixture and the CI double-run `cmp` pin.

use crate::encode::{
    crc32, put_f64, put_str_dict, put_u32, put_u64, put_u64_dict, put_varint, put_zigzag,
    read_str_dict, read_u64_dict, DecodeError, Reader,
};
use crate::record::AuditRecord;

/// File magic for the current segment version (v2).
pub const MAGIC: &[u8; 8] = b"FAKSEG2\n";
/// File magic for legacy v1 segments (readable, no longer written).
pub const MAGIC_V1: &[u8; 8] = b"FAKSEG1\n";
/// Number of column blocks in a segment.
pub const COLUMN_COUNT: usize = 10;
/// Byte offset where column data begins in a v2 segment.
pub const DATA_START: usize = 180;
/// Byte offset where column data begins in a legacy v1 segment.
pub const DATA_START_V1: usize = 140;
/// Size of the v2 trailing whole-file CRC.
pub const FOOTER_LEN: usize = 4;

/// On-disk format revision of a parsed segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentVersion {
    /// Legacy: no checksums, 8-byte directory entries, data at 140.
    V1,
    /// Current: per-column + footer CRC-32, data at 180.
    V2,
}

/// Columns a scan can project. Decoding is per-column, so asking for
/// fewer columns skips real work (late materialization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Column {
    /// Timestamp in microseconds.
    Ts,
    /// Target account id.
    Target,
    /// Tool label.
    Tool,
    /// Verdict label.
    Verdict,
    /// Request outcome label.
    Outcome,
    /// Fake-follower percentage.
    FakeRatio,
    /// Fake-follower count.
    FakeCount,
    /// Assessed sample size.
    SampleSize,
    /// Crawl cost in API calls.
    ApiCalls,
    /// Serving trace id.
    TraceId,
}

impl Column {
    fn slot(self) -> usize {
        match self {
            Column::Ts => 0,
            Column::Target => 1,
            Column::Tool => 2,
            Column::Verdict => 3,
            Column::Outcome => 4,
            Column::FakeRatio => 5,
            Column::FakeCount => 6,
            Column::SampleSize => 7,
            Column::ApiCalls => 8,
            Column::TraceId => 9,
        }
    }
}

/// Min/max footer used to skip whole segments without decoding columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneMap {
    /// Smallest timestamp in the segment (micros).
    pub ts_min: i64,
    /// Largest timestamp in the segment (micros).
    pub ts_max: i64,
    /// Smallest target id.
    pub target_min: u64,
    /// Largest target id.
    pub target_max: u64,
    /// Smallest fake ratio.
    pub ratio_min: f64,
    /// Largest fake ratio.
    pub ratio_max: f64,
}

impl ZoneMap {
    fn from_records(records: &[AuditRecord]) -> Self {
        let mut zm = ZoneMap {
            ts_min: i64::MAX,
            ts_max: i64::MIN,
            target_min: u64::MAX,
            target_max: u64::MIN,
            ratio_min: f64::INFINITY,
            ratio_max: f64::NEG_INFINITY,
        };
        for r in records {
            zm.ts_min = zm.ts_min.min(r.ts_micros);
            zm.ts_max = zm.ts_max.max(r.ts_micros);
            zm.target_min = zm.target_min.min(r.target);
            zm.target_max = zm.target_max.max(r.target);
            zm.ratio_min = zm.ratio_min.min(r.fake_ratio);
            zm.ratio_max = zm.ratio_max.max(r.fake_ratio);
        }
        zm
    }

    /// Whether any row could fall inside `[since, until]` (inclusive,
    /// micros). `None` bounds are open.
    pub fn overlaps_window(&self, since: Option<i64>, until: Option<i64>) -> bool {
        if let Some(s) = since {
            if self.ts_max < s {
                return false;
            }
        }
        if let Some(u) = until {
            if self.ts_min > u {
                return false;
            }
        }
        true
    }

    /// Whether the segment could contain `target`.
    pub fn may_contain_target(&self, target: u64) -> bool {
        target >= self.target_min && target <= self.target_max
    }
}

/// Encodes a non-empty record slice into one segment file image.
///
/// # Panics
///
/// Panics if `records` is empty — the writer never flushes an empty
/// buffer, and an empty segment would have no defined zone map.
pub fn encode_segment(records: &[AuditRecord]) -> Vec<u8> {
    assert!(!records.is_empty(), "segments must hold at least one row");
    let zm = ZoneMap::from_records(records);

    let mut blocks: [Vec<u8>; COLUMN_COUNT] = Default::default();
    for r in records {
        put_zigzag(&mut blocks[0], r.ts_micros - zm.ts_min);
    }
    put_u64_dict(
        &mut blocks[1],
        &records.iter().map(|r| r.target).collect::<Vec<_>>(),
    );
    put_str_dict(
        &mut blocks[2],
        &records.iter().map(|r| r.tool.as_str()).collect::<Vec<_>>(),
    );
    put_str_dict(
        &mut blocks[3],
        &records
            .iter()
            .map(|r| r.verdict.as_str())
            .collect::<Vec<_>>(),
    );
    put_str_dict(
        &mut blocks[4],
        &records
            .iter()
            .map(|r| r.outcome.as_str())
            .collect::<Vec<_>>(),
    );
    for r in records {
        put_f64(&mut blocks[5], r.fake_ratio);
    }
    for r in records {
        put_varint(&mut blocks[6], r.fake_count);
    }
    for r in records {
        put_varint(&mut blocks[7], r.sample_size);
    }
    for r in records {
        put_varint(&mut blocks[8], r.api_calls);
    }
    for r in records {
        put_varint(&mut blocks[9], r.trace_id);
    }

    let mut out =
        Vec::with_capacity(DATA_START + blocks.iter().map(Vec::len).sum::<usize>() + FOOTER_LEN);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, records.len() as u32);
    out.extend_from_slice(&zm.ts_min.to_le_bytes());
    out.extend_from_slice(&zm.ts_max.to_le_bytes());
    put_u64(&mut out, zm.target_min);
    put_u64(&mut out, zm.target_max);
    put_f64(&mut out, zm.ratio_min);
    put_f64(&mut out, zm.ratio_max);
    let mut offset = 0u32;
    for block in &blocks {
        put_u32(&mut out, offset);
        put_u32(&mut out, block.len() as u32);
        put_u32(&mut out, crc32(block));
        offset += block.len() as u32;
    }
    debug_assert_eq!(out.len(), DATA_START);
    for block in &blocks {
        out.extend_from_slice(block);
    }
    let footer = crc32(&out);
    put_u32(&mut out, footer);
    out
}

/// A parsed segment: header and zone map decoded eagerly, column blocks
/// decoded on demand (their CRCs re-checked at decode time on v2).
#[derive(Debug)]
pub struct Segment {
    buf: Vec<u8>,
    version: SegmentVersion,
    rows: usize,
    zone: ZoneMap,
    directory: [(u32, u32); COLUMN_COUNT],
    column_crcs: [u32; COLUMN_COUNT],
}

impl Segment {
    /// Parses a segment file image, validating magic, header, directory
    /// tiling, and (v2) the trailing whole-file CRC. Any truncation or
    /// bit flip of a v2 image is reported here, before a single column
    /// is decoded.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] for a bad magic, truncated header, a directory
    /// that does not exactly tile the data area, or a footer CRC
    /// mismatch.
    pub fn parse(buf: Vec<u8>) -> Result<Self, DecodeError> {
        let mut r = Reader::new(&buf);
        let magic = r.bytes(8, "segment magic")?;
        let version = if magic == MAGIC {
            SegmentVersion::V2
        } else if magic == MAGIC_V1 {
            SegmentVersion::V1
        } else {
            return Err(DecodeError {
                context: "segment magic",
                offset: 0,
            });
        };
        let (data_start, footer_len) = match version {
            SegmentVersion::V2 => (DATA_START, FOOTER_LEN),
            SegmentVersion::V1 => (DATA_START_V1, 0),
        };
        if version == SegmentVersion::V2 {
            if buf.len() < DATA_START + FOOTER_LEN {
                return Err(DecodeError {
                    context: "segment footer crc",
                    offset: buf.len(),
                });
            }
            let body = &buf[..buf.len() - FOOTER_LEN];
            let stored =
                u32::from_le_bytes(buf[buf.len() - FOOTER_LEN..].try_into().expect("4 bytes"));
            if crc32(body) != stored {
                return Err(DecodeError {
                    context: "segment footer crc",
                    offset: buf.len() - FOOTER_LEN,
                });
            }
        }
        let rows = r.u32("segment row count")? as usize;
        if rows == 0 {
            return Err(DecodeError {
                context: "segment row count",
                offset: 8,
            });
        }
        let zone = ZoneMap {
            ts_min: r.u64("zone map")? as i64,
            ts_max: r.u64("zone map")? as i64,
            target_min: r.u64("zone map")?,
            target_max: r.u64("zone map")?,
            ratio_min: r.f64("zone map")?,
            ratio_max: r.f64("zone map")?,
        };
        let mut directory = [(0u32, 0u32); COLUMN_COUNT];
        let mut column_crcs = [0u32; COLUMN_COUNT];
        for (entry, crc) in directory.iter_mut().zip(column_crcs.iter_mut()) {
            *entry = (r.u32("directory")?, r.u32("directory")?);
            if version == SegmentVersion::V2 {
                *crc = r.u32("directory")?;
            }
        }
        let data_len = buf.len().saturating_sub(data_start + footer_len);
        match version {
            SegmentVersion::V2 => {
                // v2 directories must tile the data area exactly: any
                // gap, overlap, or over/under-run (e.g. truncation) is
                // structural corruption, independent of the CRCs.
                let mut expected = 0usize;
                for &(off, len) in &directory {
                    if off as usize != expected {
                        return Err(DecodeError {
                            context: "directory",
                            offset: data_start,
                        });
                    }
                    expected += len as usize;
                }
                if expected != data_len {
                    return Err(DecodeError {
                        context: "directory",
                        offset: data_start,
                    });
                }
            }
            SegmentVersion::V1 => {
                for &(off, len) in &directory {
                    if off as usize + len as usize > data_len {
                        return Err(DecodeError {
                            context: "directory",
                            offset: data_start,
                        });
                    }
                }
            }
        }
        Ok(Self {
            buf,
            version,
            rows,
            zone,
            directory,
            column_crcs,
        })
    }

    /// Number of rows in the segment.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The on-disk format revision this segment was parsed from.
    pub fn version(&self) -> SegmentVersion {
        self.version
    }

    /// The segment's min/max footer.
    pub fn zone(&self) -> &ZoneMap {
        &self.zone
    }

    /// Total encoded size in bytes.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Encoded size of one column block in bytes.
    pub fn column_bytes(&self, col: Column) -> usize {
        self.directory[col.slot()].1 as usize
    }

    fn data_start(&self) -> usize {
        match self.version {
            SegmentVersion::V2 => DATA_START,
            SegmentVersion::V1 => DATA_START_V1,
        }
    }

    fn block(&self, slot: usize) -> &[u8] {
        let (off, len) = self.directory[slot];
        let start = self.data_start();
        &self.buf[start + off as usize..start + (off + len) as usize]
    }

    /// A column block with its v2 CRC re-verified, localizing any
    /// damage for diagnostics.
    fn checked_block(&self, slot: usize, context: &'static str) -> Result<&[u8], DecodeError> {
        let block = self.block(slot);
        if self.version == SegmentVersion::V2 && crc32(block) != self.column_crcs[slot] {
            return Err(DecodeError { context, offset: 0 });
        }
        Ok(block)
    }

    /// Re-verifies every column CRC (v2; a no-op success on v1),
    /// without decoding. Used by `store verify` to localize corruption.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] naming the first column whose block bytes do not
    /// match their directory CRC.
    pub fn verify_columns(&self) -> Result<(), DecodeError> {
        const CONTEXTS: [&str; COLUMN_COUNT] = [
            "ts column",
            "target column",
            "tool column",
            "verdict column",
            "outcome column",
            "fake_ratio column",
            "fake_count column",
            "sample_size column",
            "api_calls column",
            "trace_id column",
        ];
        for (slot, context) in CONTEXTS.iter().enumerate() {
            self.checked_block(slot, context)?;
        }
        Ok(())
    }

    /// Decodes the timestamp column (micros).
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on a malformed block.
    pub fn decode_ts(&self) -> Result<Vec<i64>, DecodeError> {
        let mut r = Reader::new(self.checked_block(0, "ts column")?);
        let mut out = Vec::with_capacity(self.rows);
        for _ in 0..self.rows {
            out.push(self.zone.ts_min + r.zigzag("ts column")?);
        }
        Ok(out)
    }

    /// Decodes the target column.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on a malformed block.
    pub fn decode_targets(&self) -> Result<Vec<u64>, DecodeError> {
        let mut r = Reader::new(self.checked_block(1, "target column")?);
        let (dict, idx) = read_u64_dict(&mut r, self.rows, "target column")?;
        Ok(idx.iter().map(|&i| dict[i as usize]).collect())
    }

    /// Decodes one of the string columns (tool / verdict / outcome),
    /// returning the dictionary and per-row indices so callers can group
    /// without materializing one `String` per row.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on a malformed block, or if `col` is not a string
    /// column (reported as that block's context).
    pub fn decode_strings(&self, col: Column) -> Result<(Vec<String>, Vec<u32>), DecodeError> {
        let (slot, context) = match col {
            Column::Tool => (2, "tool column"),
            Column::Verdict => (3, "verdict column"),
            Column::Outcome => (4, "outcome column"),
            _ => {
                return Err(DecodeError {
                    context: "string column selector",
                    offset: 0,
                })
            }
        };
        let mut r = Reader::new(self.checked_block(slot, context)?);
        read_str_dict(&mut r, self.rows, context)
    }

    /// Decodes the fake-ratio column.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on a malformed block.
    pub fn decode_ratios(&self) -> Result<Vec<f64>, DecodeError> {
        let mut r = Reader::new(self.checked_block(5, "fake_ratio column")?);
        let mut out = Vec::with_capacity(self.rows);
        for _ in 0..self.rows {
            out.push(r.f64("fake_ratio column")?);
        }
        Ok(out)
    }

    /// Decodes one of the varint count columns (fake_count, sample_size,
    /// api_calls, trace_id).
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on a malformed block, or if `col` is not a count
    /// column.
    pub fn decode_counts(&self, col: Column) -> Result<Vec<u64>, DecodeError> {
        let (slot, context) = match col {
            Column::FakeCount => (6, "fake_count column"),
            Column::SampleSize => (7, "sample_size column"),
            Column::ApiCalls => (8, "api_calls column"),
            Column::TraceId => (9, "trace_id column"),
            _ => {
                return Err(DecodeError {
                    context: "count column selector",
                    offset: 0,
                })
            }
        };
        let mut r = Reader::new(self.checked_block(slot, context)?);
        let mut out = Vec::with_capacity(self.rows);
        for _ in 0..self.rows {
            out.push(r.varint(context)?);
        }
        Ok(out)
    }

    /// Fully materializes every row — the round-trip inverse of
    /// [`encode_segment`].
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on any malformed column block.
    pub fn decode_all(&self) -> Result<Vec<AuditRecord>, DecodeError> {
        let ts = self.decode_ts()?;
        let targets = self.decode_targets()?;
        let (tool_dict, tool_idx) = self.decode_strings(Column::Tool)?;
        let (verdict_dict, verdict_idx) = self.decode_strings(Column::Verdict)?;
        let (outcome_dict, outcome_idx) = self.decode_strings(Column::Outcome)?;
        let ratios = self.decode_ratios()?;
        let fake_counts = self.decode_counts(Column::FakeCount)?;
        let samples = self.decode_counts(Column::SampleSize)?;
        let api_calls = self.decode_counts(Column::ApiCalls)?;
        let trace_ids = self.decode_counts(Column::TraceId)?;
        let mut out = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            out.push(AuditRecord {
                target: targets[i],
                ts_micros: ts[i],
                tool: tool_dict[tool_idx[i] as usize].clone(),
                verdict: verdict_dict[verdict_idx[i] as usize].clone(),
                outcome: outcome_dict[outcome_idx[i] as usize].clone(),
                fake_ratio: ratios[i],
                fake_count: fake_counts[i],
                sample_size: samples[i],
                api_calls: api_calls[i],
                trace_id: trace_ids[i],
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<AuditRecord> {
        let tools = ["FC", "TA", "SP", "SB"];
        let verdicts = ["fake", "inactive", "genuine"];
        (0..25)
            .map(|i: usize| AuditRecord {
                target: 100 + (i as u64 % 5),
                ts_micros: 1_000_000 * i as i64 + (i as i64 * 137) % 999,
                tool: tools[i % 4].to_string(),
                verdict: verdicts[i % 3].to_string(),
                outcome: if i % 7 == 0 {
                    "degraded_stale"
                } else {
                    "completed"
                }
                .to_string(),
                fake_ratio: (i as f64 * 3.7) % 100.0,
                fake_count: (i as u64 * 13) % 500,
                sample_size: 500,
                api_calls: 1 + (i as u64 % 6),
                trace_id: i as u64 * 31,
            })
            .collect()
    }

    #[test]
    fn encode_decode_round_trips() {
        let records = sample_records();
        let seg = Segment::parse(encode_segment(&records)).unwrap();
        assert_eq!(seg.rows(), records.len());
        assert_eq!(seg.decode_all().unwrap(), records);
    }

    #[test]
    fn encoding_is_deterministic() {
        let records = sample_records();
        assert_eq!(encode_segment(&records), encode_segment(&records));
    }

    #[test]
    fn zone_map_matches_extremes() {
        let records = sample_records();
        let seg = Segment::parse(encode_segment(&records)).unwrap();
        let zm = seg.zone();
        let ts: Vec<i64> = records.iter().map(|r| r.ts_micros).collect();
        assert_eq!(zm.ts_min, *ts.iter().min().unwrap());
        assert_eq!(zm.ts_max, *ts.iter().max().unwrap());
        assert_eq!(zm.target_min, 100);
        assert_eq!(zm.target_max, 104);
    }

    #[test]
    fn zone_map_window_overlap() {
        let zm = ZoneMap {
            ts_min: 10,
            ts_max: 20,
            target_min: 0,
            target_max: 0,
            ratio_min: 0.0,
            ratio_max: 0.0,
        };
        assert!(zm.overlaps_window(None, None));
        assert!(zm.overlaps_window(Some(20), None));
        assert!(zm.overlaps_window(None, Some(10)));
        assert!(!zm.overlaps_window(Some(21), None));
        assert!(!zm.overlaps_window(None, Some(9)));
        assert!(zm.overlaps_window(Some(5), Some(15)));
    }

    #[test]
    fn bad_magic_rejected() {
        let records = sample_records();
        let mut buf = encode_segment(&records);
        buf[0] = b'X';
        assert!(Segment::parse(buf).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let records = sample_records();
        let buf = encode_segment(&records);
        assert!(Segment::parse(buf[..DATA_START + 3].to_vec()).is_err());
    }

    #[test]
    fn single_row_segment_round_trips() {
        let records = vec![sample_records().remove(0)];
        let seg = Segment::parse(encode_segment(&records)).unwrap();
        assert_eq!(seg.decode_all().unwrap(), records);
    }

    #[test]
    fn any_single_bit_flip_is_rejected_at_parse() {
        let buf = encode_segment(&sample_records()[..4]);
        for offset in 0..buf.len() {
            for bit in 0..8u8 {
                let mut copy = buf.clone();
                copy[offset] ^= 1 << bit;
                assert!(
                    Segment::parse(copy).is_err(),
                    "flip at {offset}:{bit} parsed cleanly"
                );
            }
        }
    }

    #[test]
    fn every_prefix_truncation_is_rejected() {
        let buf = encode_segment(&sample_records()[..4]);
        for k in 0..buf.len() {
            assert!(
                Segment::parse(buf[..k].to_vec()).is_err(),
                "prefix of {k} bytes parsed cleanly"
            );
        }
    }

    #[test]
    fn v1_segments_remain_readable() {
        // Hand-build a v1 image from the v2 encoder output: v1 magic,
        // 8-byte directory entries, no CRCs, data at byte 140.
        let records = sample_records();
        let v2 = encode_segment(&records);
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC_V1);
        v1.extend_from_slice(&v2[8..60]); // row count + zone map
        for slot in 0..COLUMN_COUNT {
            let entry = 60 + slot * 12;
            v1.extend_from_slice(&v2[entry..entry + 8]); // offset + len
        }
        assert_eq!(v1.len(), DATA_START_V1);
        v1.extend_from_slice(&v2[DATA_START..v2.len() - FOOTER_LEN]);
        let seg = Segment::parse(v1).unwrap();
        assert_eq!(seg.version(), SegmentVersion::V1);
        assert_eq!(seg.decode_all().unwrap(), records);
    }

    #[test]
    fn verify_columns_passes_on_sound_segment() {
        let seg = Segment::parse(encode_segment(&sample_records())).unwrap();
        assert_eq!(seg.version(), SegmentVersion::V2);
        seg.verify_columns().unwrap();
    }

    #[test]
    fn column_bytes_reflect_projection_savings() {
        let records = sample_records();
        let seg = Segment::parse(encode_segment(&records)).unwrap();
        let ts_bytes = seg.column_bytes(Column::Ts);
        assert!(ts_bytes > 0);
        assert!(ts_bytes < seg.byte_len());
    }
}
