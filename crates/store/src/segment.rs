//! Immutable columnar segment files.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"FAKSEG1\n"
//!      8     4  row_count                u32
//!     12    48  zone map: ts_min/ts_max  i64 ×2
//!               target_min/target_max    u64 ×2
//!               ratio_min/ratio_max      f64 ×2 (bit pattern)
//!     60    80  directory: 10 × (offset u32, len u32), offsets
//!               relative to the data area starting at byte 140
//!    140     —  column blocks, in directory order
//! ```
//!
//! Column order: `0 ts` (zigzag-varint deltas off ts_min), `1 target`
//! (u64 dict), `2 tool` / `3 verdict` / `4 outcome` (string dicts),
//! `5 fake_ratio` (raw f64), `6 fake_count` / `7 sample_size` /
//! `8 api_calls` / `9 trace_id` (varints).
//!
//! Encoding is a pure function of the record slice, so a fixed record
//! stream produces byte-identical segments — the determinism invariant
//! the golden fixture and the CI double-run `cmp` pin.

use crate::encode::{
    put_f64, put_str_dict, put_u32, put_u64, put_u64_dict, put_varint, put_zigzag, read_str_dict,
    read_u64_dict, DecodeError, Reader,
};
use crate::record::AuditRecord;

/// File magic for segment v1.
pub const MAGIC: &[u8; 8] = b"FAKSEG1\n";
/// Number of column blocks in a segment.
pub const COLUMN_COUNT: usize = 10;
/// Byte offset where column data begins.
pub const DATA_START: usize = 140;

/// Columns a scan can project. Decoding is per-column, so asking for
/// fewer columns skips real work (late materialization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Column {
    /// Timestamp in microseconds.
    Ts,
    /// Target account id.
    Target,
    /// Tool label.
    Tool,
    /// Verdict label.
    Verdict,
    /// Request outcome label.
    Outcome,
    /// Fake-follower percentage.
    FakeRatio,
    /// Fake-follower count.
    FakeCount,
    /// Assessed sample size.
    SampleSize,
    /// Crawl cost in API calls.
    ApiCalls,
    /// Serving trace id.
    TraceId,
}

impl Column {
    fn slot(self) -> usize {
        match self {
            Column::Ts => 0,
            Column::Target => 1,
            Column::Tool => 2,
            Column::Verdict => 3,
            Column::Outcome => 4,
            Column::FakeRatio => 5,
            Column::FakeCount => 6,
            Column::SampleSize => 7,
            Column::ApiCalls => 8,
            Column::TraceId => 9,
        }
    }
}

/// Min/max footer used to skip whole segments without decoding columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneMap {
    /// Smallest timestamp in the segment (micros).
    pub ts_min: i64,
    /// Largest timestamp in the segment (micros).
    pub ts_max: i64,
    /// Smallest target id.
    pub target_min: u64,
    /// Largest target id.
    pub target_max: u64,
    /// Smallest fake ratio.
    pub ratio_min: f64,
    /// Largest fake ratio.
    pub ratio_max: f64,
}

impl ZoneMap {
    fn from_records(records: &[AuditRecord]) -> Self {
        let mut zm = ZoneMap {
            ts_min: i64::MAX,
            ts_max: i64::MIN,
            target_min: u64::MAX,
            target_max: u64::MIN,
            ratio_min: f64::INFINITY,
            ratio_max: f64::NEG_INFINITY,
        };
        for r in records {
            zm.ts_min = zm.ts_min.min(r.ts_micros);
            zm.ts_max = zm.ts_max.max(r.ts_micros);
            zm.target_min = zm.target_min.min(r.target);
            zm.target_max = zm.target_max.max(r.target);
            zm.ratio_min = zm.ratio_min.min(r.fake_ratio);
            zm.ratio_max = zm.ratio_max.max(r.fake_ratio);
        }
        zm
    }

    /// Whether any row could fall inside `[since, until]` (inclusive,
    /// micros). `None` bounds are open.
    pub fn overlaps_window(&self, since: Option<i64>, until: Option<i64>) -> bool {
        if let Some(s) = since {
            if self.ts_max < s {
                return false;
            }
        }
        if let Some(u) = until {
            if self.ts_min > u {
                return false;
            }
        }
        true
    }

    /// Whether the segment could contain `target`.
    pub fn may_contain_target(&self, target: u64) -> bool {
        target >= self.target_min && target <= self.target_max
    }
}

/// Encodes a non-empty record slice into one segment file image.
///
/// # Panics
///
/// Panics if `records` is empty — the writer never flushes an empty
/// buffer, and an empty segment would have no defined zone map.
pub fn encode_segment(records: &[AuditRecord]) -> Vec<u8> {
    assert!(!records.is_empty(), "segments must hold at least one row");
    let zm = ZoneMap::from_records(records);

    let mut blocks: [Vec<u8>; COLUMN_COUNT] = Default::default();
    for r in records {
        put_zigzag(&mut blocks[0], r.ts_micros - zm.ts_min);
    }
    put_u64_dict(
        &mut blocks[1],
        &records.iter().map(|r| r.target).collect::<Vec<_>>(),
    );
    put_str_dict(
        &mut blocks[2],
        &records.iter().map(|r| r.tool.as_str()).collect::<Vec<_>>(),
    );
    put_str_dict(
        &mut blocks[3],
        &records
            .iter()
            .map(|r| r.verdict.as_str())
            .collect::<Vec<_>>(),
    );
    put_str_dict(
        &mut blocks[4],
        &records
            .iter()
            .map(|r| r.outcome.as_str())
            .collect::<Vec<_>>(),
    );
    for r in records {
        put_f64(&mut blocks[5], r.fake_ratio);
    }
    for r in records {
        put_varint(&mut blocks[6], r.fake_count);
    }
    for r in records {
        put_varint(&mut blocks[7], r.sample_size);
    }
    for r in records {
        put_varint(&mut blocks[8], r.api_calls);
    }
    for r in records {
        put_varint(&mut blocks[9], r.trace_id);
    }

    let mut out = Vec::with_capacity(DATA_START + blocks.iter().map(Vec::len).sum::<usize>());
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, records.len() as u32);
    out.extend_from_slice(&zm.ts_min.to_le_bytes());
    out.extend_from_slice(&zm.ts_max.to_le_bytes());
    put_u64(&mut out, zm.target_min);
    put_u64(&mut out, zm.target_max);
    put_f64(&mut out, zm.ratio_min);
    put_f64(&mut out, zm.ratio_max);
    let mut offset = 0u32;
    for block in &blocks {
        put_u32(&mut out, offset);
        put_u32(&mut out, block.len() as u32);
        offset += block.len() as u32;
    }
    debug_assert_eq!(out.len(), DATA_START);
    for block in &blocks {
        out.extend_from_slice(block);
    }
    out
}

/// A parsed segment: header and zone map decoded eagerly, column blocks
/// decoded on demand.
#[derive(Debug)]
pub struct Segment {
    buf: Vec<u8>,
    rows: usize,
    zone: ZoneMap,
    directory: [(u32, u32); COLUMN_COUNT],
}

impl Segment {
    /// Parses a segment file image, validating magic, header, and that
    /// every directory entry stays inside the buffer.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] for a bad magic, truncated header, or a directory
    /// entry pointing past the end of the file.
    pub fn parse(buf: Vec<u8>) -> Result<Self, DecodeError> {
        let mut r = Reader::new(&buf);
        let magic = r.bytes(8, "segment magic")?;
        if magic != MAGIC {
            return Err(DecodeError {
                context: "segment magic",
                offset: 0,
            });
        }
        let rows = r.u32("segment row count")? as usize;
        if rows == 0 {
            return Err(DecodeError {
                context: "segment row count",
                offset: 8,
            });
        }
        let zone = ZoneMap {
            ts_min: r.u64("zone map")? as i64,
            ts_max: r.u64("zone map")? as i64,
            target_min: r.u64("zone map")?,
            target_max: r.u64("zone map")?,
            ratio_min: r.f64("zone map")?,
            ratio_max: r.f64("zone map")?,
        };
        let mut directory = [(0u32, 0u32); COLUMN_COUNT];
        for entry in &mut directory {
            *entry = (r.u32("directory")?, r.u32("directory")?);
        }
        let data_len = buf.len().saturating_sub(DATA_START);
        for &(off, len) in &directory {
            let end = off as usize + len as usize;
            if end > data_len {
                return Err(DecodeError {
                    context: "directory",
                    offset: DATA_START,
                });
            }
        }
        Ok(Self {
            buf,
            rows,
            zone,
            directory,
        })
    }

    /// Number of rows in the segment.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The segment's min/max footer.
    pub fn zone(&self) -> &ZoneMap {
        &self.zone
    }

    /// Total encoded size in bytes.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Encoded size of one column block in bytes.
    pub fn column_bytes(&self, col: Column) -> usize {
        self.directory[col.slot()].1 as usize
    }

    fn block(&self, slot: usize) -> &[u8] {
        let (off, len) = self.directory[slot];
        &self.buf[DATA_START + off as usize..DATA_START + (off + len) as usize]
    }

    /// Decodes the timestamp column (micros).
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on a malformed block.
    pub fn decode_ts(&self) -> Result<Vec<i64>, DecodeError> {
        let mut r = Reader::new(self.block(0));
        let mut out = Vec::with_capacity(self.rows);
        for _ in 0..self.rows {
            out.push(self.zone.ts_min + r.zigzag("ts column")?);
        }
        Ok(out)
    }

    /// Decodes the target column.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on a malformed block.
    pub fn decode_targets(&self) -> Result<Vec<u64>, DecodeError> {
        let mut r = Reader::new(self.block(1));
        let (dict, idx) = read_u64_dict(&mut r, self.rows, "target column")?;
        Ok(idx.iter().map(|&i| dict[i as usize]).collect())
    }

    /// Decodes one of the string columns (tool / verdict / outcome),
    /// returning the dictionary and per-row indices so callers can group
    /// without materializing one `String` per row.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on a malformed block, or if `col` is not a string
    /// column (reported as that block's context).
    pub fn decode_strings(&self, col: Column) -> Result<(Vec<String>, Vec<u32>), DecodeError> {
        let (slot, context) = match col {
            Column::Tool => (2, "tool column"),
            Column::Verdict => (3, "verdict column"),
            Column::Outcome => (4, "outcome column"),
            _ => {
                return Err(DecodeError {
                    context: "string column selector",
                    offset: 0,
                })
            }
        };
        let mut r = Reader::new(self.block(slot));
        read_str_dict(&mut r, self.rows, context)
    }

    /// Decodes the fake-ratio column.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on a malformed block.
    pub fn decode_ratios(&self) -> Result<Vec<f64>, DecodeError> {
        let mut r = Reader::new(self.block(5));
        let mut out = Vec::with_capacity(self.rows);
        for _ in 0..self.rows {
            out.push(r.f64("fake_ratio column")?);
        }
        Ok(out)
    }

    /// Decodes one of the varint count columns (fake_count, sample_size,
    /// api_calls, trace_id).
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on a malformed block, or if `col` is not a count
    /// column.
    pub fn decode_counts(&self, col: Column) -> Result<Vec<u64>, DecodeError> {
        let (slot, context) = match col {
            Column::FakeCount => (6, "fake_count column"),
            Column::SampleSize => (7, "sample_size column"),
            Column::ApiCalls => (8, "api_calls column"),
            Column::TraceId => (9, "trace_id column"),
            _ => {
                return Err(DecodeError {
                    context: "count column selector",
                    offset: 0,
                })
            }
        };
        let mut r = Reader::new(self.block(slot));
        let mut out = Vec::with_capacity(self.rows);
        for _ in 0..self.rows {
            out.push(r.varint(context)?);
        }
        Ok(out)
    }

    /// Fully materializes every row — the round-trip inverse of
    /// [`encode_segment`].
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on any malformed column block.
    pub fn decode_all(&self) -> Result<Vec<AuditRecord>, DecodeError> {
        let ts = self.decode_ts()?;
        let targets = self.decode_targets()?;
        let (tool_dict, tool_idx) = self.decode_strings(Column::Tool)?;
        let (verdict_dict, verdict_idx) = self.decode_strings(Column::Verdict)?;
        let (outcome_dict, outcome_idx) = self.decode_strings(Column::Outcome)?;
        let ratios = self.decode_ratios()?;
        let fake_counts = self.decode_counts(Column::FakeCount)?;
        let samples = self.decode_counts(Column::SampleSize)?;
        let api_calls = self.decode_counts(Column::ApiCalls)?;
        let trace_ids = self.decode_counts(Column::TraceId)?;
        let mut out = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            out.push(AuditRecord {
                target: targets[i],
                ts_micros: ts[i],
                tool: tool_dict[tool_idx[i] as usize].clone(),
                verdict: verdict_dict[verdict_idx[i] as usize].clone(),
                outcome: outcome_dict[outcome_idx[i] as usize].clone(),
                fake_ratio: ratios[i],
                fake_count: fake_counts[i],
                sample_size: samples[i],
                api_calls: api_calls[i],
                trace_id: trace_ids[i],
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<AuditRecord> {
        let tools = ["FC", "TA", "SP", "SB"];
        let verdicts = ["fake", "inactive", "genuine"];
        (0..25)
            .map(|i: usize| AuditRecord {
                target: 100 + (i as u64 % 5),
                ts_micros: 1_000_000 * i as i64 + (i as i64 * 137) % 999,
                tool: tools[i % 4].to_string(),
                verdict: verdicts[i % 3].to_string(),
                outcome: if i % 7 == 0 {
                    "degraded_stale"
                } else {
                    "completed"
                }
                .to_string(),
                fake_ratio: (i as f64 * 3.7) % 100.0,
                fake_count: (i as u64 * 13) % 500,
                sample_size: 500,
                api_calls: 1 + (i as u64 % 6),
                trace_id: i as u64 * 31,
            })
            .collect()
    }

    #[test]
    fn encode_decode_round_trips() {
        let records = sample_records();
        let seg = Segment::parse(encode_segment(&records)).unwrap();
        assert_eq!(seg.rows(), records.len());
        assert_eq!(seg.decode_all().unwrap(), records);
    }

    #[test]
    fn encoding_is_deterministic() {
        let records = sample_records();
        assert_eq!(encode_segment(&records), encode_segment(&records));
    }

    #[test]
    fn zone_map_matches_extremes() {
        let records = sample_records();
        let seg = Segment::parse(encode_segment(&records)).unwrap();
        let zm = seg.zone();
        let ts: Vec<i64> = records.iter().map(|r| r.ts_micros).collect();
        assert_eq!(zm.ts_min, *ts.iter().min().unwrap());
        assert_eq!(zm.ts_max, *ts.iter().max().unwrap());
        assert_eq!(zm.target_min, 100);
        assert_eq!(zm.target_max, 104);
    }

    #[test]
    fn zone_map_window_overlap() {
        let zm = ZoneMap {
            ts_min: 10,
            ts_max: 20,
            target_min: 0,
            target_max: 0,
            ratio_min: 0.0,
            ratio_max: 0.0,
        };
        assert!(zm.overlaps_window(None, None));
        assert!(zm.overlaps_window(Some(20), None));
        assert!(zm.overlaps_window(None, Some(10)));
        assert!(!zm.overlaps_window(Some(21), None));
        assert!(!zm.overlaps_window(None, Some(9)));
        assert!(zm.overlaps_window(Some(5), Some(15)));
    }

    #[test]
    fn bad_magic_rejected() {
        let records = sample_records();
        let mut buf = encode_segment(&records);
        buf[0] = b'X';
        assert!(Segment::parse(buf).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let records = sample_records();
        let buf = encode_segment(&records);
        assert!(Segment::parse(buf[..DATA_START + 3].to_vec()).is_err());
    }

    #[test]
    fn single_row_segment_round_trips() {
        let records = vec![sample_records().remove(0)];
        let seg = Segment::parse(encode_segment(&records)).unwrap();
        assert_eq!(seg.decode_all().unwrap(), records);
    }

    #[test]
    fn column_bytes_reflect_projection_savings() {
        let records = sample_records();
        let seg = Segment::parse(encode_segment(&records)).unwrap();
        let ts_bytes = seg.column_bytes(Column::Ts);
        assert!(ts_bytes > 0);
        assert!(ts_bytes < seg.byte_len());
    }
}
