//! The I/O seam between store logic and the filesystem.
//!
//! Everything that touches bytes-on-disk — the segment writer, the WAL,
//! compaction and recovery — goes through [`StoreIo`], so durability
//! logic can be exercised against a deterministic in-memory filesystem
//! ([`MemIo`]) with scripted faults (torn writes, dropped syncs,
//! crash-at-step) instead of hoping a real `kill -9` lands somewhere
//! interesting. Production uses [`RealIo`], a thin `std::fs` wrapper
//! that adds the directory-fsync discipline `std` leaves implicit.
//!
//! [`MemIo`] models POSIX durability pessimistically:
//!
//! * written/appended bytes survive a crash only up to the file's last
//!   `sync_file` watermark (a rewrite resets the watermark to zero);
//! * created, renamed and removed names survive a crash only after a
//!   `sync_dir` of their directory;
//! * a crash ([`MemIo::reboot`]) discards everything volatile and
//!   fails every in-flight operation with an error.
//!
//! Any recovery path that survives this model survives a kinder real
//! filesystem too.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::sync::Mutex;

/// File operations the store needs, in the shape recovery reasoning
/// wants: whole-file reads/writes, appends, explicit file and directory
/// syncs, and atomic renames.
pub trait StoreIo: Send + Sync + std::fmt::Debug {
    /// Creates `dir` and any missing parents.
    ///
    /// # Errors
    ///
    /// I/O errors creating directories.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// File names (not paths) directly under `dir`, sorted.
    ///
    /// # Errors
    ///
    /// I/O errors listing the directory (including it not existing).
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Whether `dir` exists as a directory.
    fn dir_exists(&self, dir: &Path) -> bool;

    /// Whether `path` exists as a file.
    fn exists(&self, path: &Path) -> bool;

    /// Reads the whole file.
    ///
    /// # Errors
    ///
    /// I/O errors, including `NotFound`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates or truncates `path` with exactly `bytes`.
    ///
    /// # Errors
    ///
    /// I/O errors writing.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Appends `bytes` to `path`, creating it if missing.
    ///
    /// # Errors
    ///
    /// I/O errors writing.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Fsyncs the file's contents.
    ///
    /// # Errors
    ///
    /// I/O errors syncing.
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Fsyncs the directory, making created/renamed/removed names in it
    /// durable.
    ///
    /// # Errors
    ///
    /// I/O errors syncing.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to` (replacing `to` if present).
    ///
    /// # Errors
    ///
    /// I/O errors renaming.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes the file.
    ///
    /// # Errors
    ///
    /// I/O errors removing, including `NotFound`.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// A shareable I/O handle.
pub type SharedIo = Arc<dyn StoreIo>;

/// The production implementation over `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl RealIo {
    /// A shared handle to the real filesystem.
    pub fn shared() -> SharedIo {
        Arc::new(RealIo)
    }
}

impl StoreIo for RealIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn dir_exists(&self, dir: &Path) -> bool {
        dir.is_dir()
    }

    fn exists(&self, path: &Path) -> bool {
        path.is_file()
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    #[cfg(unix)]
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        std::fs::File::open(dir)?.sync_all()
    }

    #[cfg(not(unix))]
    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        // Directories cannot be opened for syncing off unix; renames are
        // still atomic, only name durability across power loss weakens.
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// What a scripted crash does to the operation it lands on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrashMode {
    /// The operation never happens; the machine dies first.
    Before,
    /// Writes and appends apply only this fraction of their bytes to the
    /// volatile state before the crash (torn write). Non-write
    /// operations behave as [`CrashMode::Before`].
    Torn(f64),
    /// The operation fully applies (volatile), then the machine dies.
    After,
}

/// A deterministic fault script for [`MemIo`]. All effects key off the
/// mutating-operation counter, so a sweep over `crash_at_op` visits
/// every interesting interleaving exactly once — no RNG required.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultScript {
    /// Crash when the Nth mutating operation (0-based) runs.
    pub crash_at_op: Option<u64>,
    /// How the crash interacts with that operation.
    pub crash_mode: Option<CrashMode>,
    /// `sync_file`/`sync_dir` return `Ok` but durably do nothing — a
    /// lying disk.
    pub drop_syncs: bool,
    /// Every mutating operation from this index on fails with an I/O
    /// error (no crash) — a persistently sick disk, for degrade paths.
    pub fail_from_op: Option<u64>,
}

#[derive(Debug, Default, Clone)]
struct MemFile {
    bytes: Vec<u8>,
    /// How many leading bytes a crash preserves (the fsync watermark).
    synced_len: usize,
}

/// The namespace is modeled POSIX-style: names are directory entries
/// pointing at inodes. `rename`/`remove`/`write` mutate the volatile
/// (`live`) namespace immediately; the `durable` namespace only catches
/// up at `sync_dir`, so a crash after an unsynced rename correctly
/// leaves the *old* name pointing at the file's inode.
#[derive(Debug, Default)]
struct MemState {
    inodes: BTreeMap<u64, MemFile>,
    /// Live (volatile) namespace: what reads and lists observe.
    live: BTreeMap<PathBuf, u64>,
    /// Crash-durable namespace, snapshotted per-directory by `sync_dir`.
    durable: BTreeMap<PathBuf, u64>,
    dirs: BTreeSet<PathBuf>,
    next_inode: u64,
    ops: u64,
    crashed: bool,
}

impl MemState {
    fn alloc_inode(&mut self, file: MemFile) -> u64 {
        let id = self.next_inode;
        self.next_inode += 1;
        self.inodes.insert(id, file);
        id
    }
}

/// A deterministic in-memory [`StoreIo`] with scripted fault injection.
///
/// See the module docs for the durability model. [`MemIo::reboot`]
/// simulates the power cycle: volatile state is discarded and the
/// instance becomes usable again, exposing exactly what a crash-
/// consistent filesystem would.
#[derive(Debug)]
pub struct MemIo {
    state: Mutex<MemState>,
    script: FaultScript,
}

impl MemIo {
    /// A fault-free in-memory filesystem.
    pub fn new() -> Self {
        Self::with_script(FaultScript::default())
    }

    /// An in-memory filesystem with the given fault script.
    pub fn with_script(script: FaultScript) -> Self {
        Self {
            state: Mutex::new(MemState::default()),
            script,
        }
    }

    /// A shared handle.
    pub fn shared(script: FaultScript) -> Arc<Self> {
        Arc::new(Self::with_script(script))
    }

    /// Mutating operations performed so far (the crash-sweep domain).
    pub fn op_count(&self) -> u64 {
        self.lock().ops
    }

    /// Whether the scripted crash has fired.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Simulates the power cycle after a crash: the namespace reverts
    /// to its last `sync_dir` snapshot, every surviving inode truncates
    /// to its fsync watermark, and operations work again.
    pub fn reboot(&self) {
        let mut st = self.lock();
        st.live = st.durable.clone();
        let live_ids: BTreeSet<u64> = st.live.values().copied().collect();
        for (&id, file) in st.inodes.iter_mut() {
            if live_ids.contains(&id) {
                let keep = file.synced_len.min(file.bytes.len());
                file.bytes.truncate(keep);
                file.synced_len = keep;
            }
        }
        st.inodes.retain(|id, _| live_ids.contains(id));
        st.crashed = false;
    }

    /// Flips one bit of a file's (durable and volatile) content — the
    /// corruption primitive behind the quarantine tests.
    ///
    /// # Panics
    ///
    /// Panics if the file does not exist or `offset` is out of range.
    pub fn flip_bit(&self, path: &Path, offset: usize, bit: u8) {
        let mut st = self.lock();
        let id = *st.live.get(path).expect("flip_bit: no such file");
        let file = st.inodes.get_mut(&id).expect("live entry has an inode");
        file.bytes[offset] ^= 1 << (bit % 8);
        // Keep the corruption across reboots.
        file.synced_len = file.synced_len.max(offset + 1);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn crash_err() -> io::Error {
        io::Error::other("simulated crash: machine is down until reboot")
    }

    fn fault_err() -> io::Error {
        io::Error::other("simulated I/O error")
    }

    /// Gates one mutating operation: counts it, fires scripted faults.
    /// Returns the crash mode to apply (`None` = run normally).
    fn gate(st: &mut MemState, script: &FaultScript) -> io::Result<Option<CrashMode>> {
        if st.crashed {
            return Err(Self::crash_err());
        }
        let op = st.ops;
        st.ops += 1;
        if let Some(fail_from) = script.fail_from_op {
            if op >= fail_from && script.crash_at_op.is_none() {
                return Err(Self::fault_err());
            }
        }
        if script.crash_at_op == Some(op) {
            st.crashed = true;
            return Ok(Some(script.crash_mode.unwrap_or(CrashMode::Before)));
        }
        Ok(None)
    }

    fn read_gate(st: &MemState) -> io::Result<()> {
        if st.crashed {
            return Err(Self::crash_err());
        }
        Ok(())
    }
}

impl Default for MemIo {
    fn default() -> Self {
        Self::new()
    }
}

impl StoreIo for MemIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.lock();
        Self::read_gate(&st)?;
        // Directory creation is kept out of the fault model: every
        // protocol under test starts from an existing directory.
        let mut cur = PathBuf::new();
        for comp in dir.components() {
            cur.push(comp);
            st.dirs.insert(cur.clone());
        }
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let st = self.lock();
        Self::read_gate(&st)?;
        if !st.dirs.contains(dir) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such directory: {}", dir.display()),
            ));
        }
        Ok(st
            .live
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().and_then(|n| n.to_str()))
            .map(str::to_owned)
            .collect())
    }

    fn dir_exists(&self, dir: &Path) -> bool {
        let st = self.lock();
        !st.crashed && st.dirs.contains(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        let st = self.lock();
        !st.crashed && st.live.contains_key(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let st = self.lock();
        Self::read_gate(&st)?;
        st.live
            .get(path)
            .and_then(|id| st.inodes.get(id))
            .map(|f| f.bytes.clone())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no such file: {}", path.display()),
                )
            })
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.lock();
        let crash = Self::gate(&mut st, &self.script)?;
        let keep = match crash {
            Some(CrashMode::Before) => return Err(Self::crash_err()),
            Some(CrashMode::Torn(frac)) => (bytes.len() as f64 * frac) as usize,
            Some(CrashMode::After) | None => bytes.len(),
        };
        // A rewrite allocates a fresh inode with a zero watermark:
        // nothing of the new content is durable until the next
        // sync_file, and an old durable dirent keeps the old inode.
        let id = st.alloc_inode(MemFile {
            bytes: bytes[..keep].to_vec(),
            synced_len: 0,
        });
        st.live.insert(path.to_path_buf(), id);
        if crash.is_some() {
            return Err(Self::crash_err());
        }
        Ok(())
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.lock();
        let crash = Self::gate(&mut st, &self.script)?;
        let keep = match crash {
            Some(CrashMode::Before) => return Err(Self::crash_err()),
            Some(CrashMode::Torn(frac)) => (bytes.len() as f64 * frac) as usize,
            Some(CrashMode::After) | None => bytes.len(),
        };
        let id = match st.live.get(path) {
            Some(&id) => id,
            None => {
                let id = st.alloc_inode(MemFile::default());
                st.live.insert(path.to_path_buf(), id);
                id
            }
        };
        st.inodes
            .get_mut(&id)
            .expect("live entry has an inode")
            .bytes
            .extend_from_slice(&bytes[..keep]);
        if crash.is_some() {
            return Err(Self::crash_err());
        }
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let crash = Self::gate(&mut st, &self.script)?;
        if matches!(crash, Some(CrashMode::Before) | Some(CrashMode::Torn(_))) {
            return Err(Self::crash_err());
        }
        if !self.script.drop_syncs {
            let id = *st.live.get(path).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no such file: {}", path.display()),
                )
            })?;
            let file = st.inodes.get_mut(&id).expect("live entry has an inode");
            file.synced_len = file.bytes.len();
        }
        if crash.is_some() {
            return Err(Self::crash_err());
        }
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let crash = Self::gate(&mut st, &self.script)?;
        if matches!(crash, Some(CrashMode::Before) | Some(CrashMode::Torn(_))) {
            return Err(Self::crash_err());
        }
        if !self.script.drop_syncs {
            let under: Vec<(PathBuf, u64)> = st
                .live
                .iter()
                .filter(|(p, _)| p.parent() == Some(dir))
                .map(|(p, &id)| (p.clone(), id))
                .collect();
            st.durable.retain(|p, _| p.parent() != Some(dir));
            st.durable.extend(under);
        }
        if crash.is_some() {
            return Err(Self::crash_err());
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let crash = Self::gate(&mut st, &self.script)?;
        if matches!(crash, Some(CrashMode::Before) | Some(CrashMode::Torn(_))) {
            return Err(Self::crash_err());
        }
        let id = st.live.remove(from).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", from.display()),
            )
        })?;
        st.live.insert(to.to_path_buf(), id);
        if crash.is_some() {
            return Err(Self::crash_err());
        }
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let crash = Self::gate(&mut st, &self.script)?;
        if matches!(crash, Some(CrashMode::Before) | Some(CrashMode::Torn(_))) {
            return Err(Self::crash_err());
        }
        st.live.remove(path).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", path.display()),
            )
        })?;
        if crash.is_some() {
            return Err(Self::crash_err());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> PathBuf {
        PathBuf::from("/mem")
    }

    #[test]
    fn unsynced_bytes_vanish_on_reboot() {
        let io = MemIo::new();
        io.create_dir_all(&dir()).unwrap();
        let path = dir().join("f");
        io.write(&path, b"hello").unwrap();
        io.sync_dir(&dir()).unwrap();
        io.sync_file(&path).unwrap();
        io.append(&path, b" world").unwrap();
        io.reboot();
        assert_eq!(io.read(&path).unwrap(), b"hello");
    }

    #[test]
    fn unsynced_names_vanish_on_reboot() {
        let io = MemIo::new();
        io.create_dir_all(&dir()).unwrap();
        let path = dir().join("f");
        io.write(&path, b"x").unwrap();
        io.sync_file(&path).unwrap();
        // No sync_dir: the name never became durable.
        io.reboot();
        assert!(!io.exists(&path));
    }

    #[test]
    fn rename_durability_needs_dir_sync() {
        let io = MemIo::new();
        io.create_dir_all(&dir()).unwrap();
        let a = dir().join("a");
        let b = dir().join("b");
        io.write(&a, b"x").unwrap();
        io.sync_file(&a).unwrap();
        io.sync_dir(&dir()).unwrap();
        io.rename(&a, &b).unwrap();
        io.reboot();
        // The rename was volatile: the old name survives.
        assert!(io.exists(&a));
        assert!(!io.exists(&b));
    }

    #[test]
    fn crash_script_fires_and_reboot_recovers() {
        let io = MemIo::with_script(FaultScript {
            crash_at_op: Some(2),
            crash_mode: Some(CrashMode::Torn(0.5)),
            ..FaultScript::default()
        });
        io.create_dir_all(&dir()).unwrap();
        let path = dir().join("f");
        io.write(&path, b"aaaa").unwrap(); // op 0
        io.sync_file(&path).unwrap(); // op 1
        let err = io.append(&path, b"bbbb").unwrap_err(); // op 2: torn, crash
        assert!(err.to_string().contains("crash"));
        assert!(io.crashed());
        assert!(io.read(&path).is_err());
        io.reboot();
        // Only the synced prefix survived; name was never dir-synced, so
        // nothing survived at all.
        assert!(!io.exists(&path));
    }

    #[test]
    fn unsynced_remove_resurrects_on_reboot() {
        let io = MemIo::new();
        io.create_dir_all(&dir()).unwrap();
        let path = dir().join("f");
        io.write(&path, b"keep").unwrap();
        io.sync_file(&path).unwrap();
        io.sync_dir(&dir()).unwrap();
        io.remove(&path).unwrap();
        io.reboot();
        // The unlink never reached the directory block.
        assert_eq!(io.read(&path).unwrap(), b"keep");
    }

    #[test]
    fn dropped_syncs_leave_nothing_durable() {
        let io = MemIo::with_script(FaultScript {
            drop_syncs: true,
            ..FaultScript::default()
        });
        io.create_dir_all(&dir()).unwrap();
        let path = dir().join("f");
        io.write(&path, b"x").unwrap();
        io.sync_file(&path).unwrap();
        io.sync_dir(&dir()).unwrap();
        io.reboot();
        assert!(!io.exists(&path));
    }

    #[test]
    fn fail_from_op_errors_without_crashing() {
        let io = MemIo::with_script(FaultScript {
            fail_from_op: Some(1),
            ..FaultScript::default()
        });
        io.create_dir_all(&dir()).unwrap();
        let path = dir().join("f");
        io.write(&path, b"x").unwrap(); // op 0: fine
        assert!(io.write(&path, b"y").is_err()); // op 1+: sick disk
        assert!(io.write(&path, b"z").is_err());
        assert!(!io.crashed());
        // Reads still work: the machine is up, the disk is sick.
        assert_eq!(io.read(&path).unwrap(), b"x");
    }
}
