//! The row shape persisted by the store: one completed audit of one
//! target by one tool, stamped with the serving clock.

/// One completed audit observation.
///
/// This is the write-side unit: every field is a plain scalar or short
/// label so the columnar layout stays dense. Timestamps are microseconds
/// so both the discrete-event sim clock (fractional seconds) and the
/// wall clock round-trip without loss at the resolutions either produces.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// Audited account id.
    pub target: u64,
    /// Completion time in microseconds since the store epoch.
    pub ts_micros: i64,
    /// Short tool label (`FC`, `TA`, `SP`, `SB`).
    pub tool: String,
    /// Dominant verdict label for the audited sample
    /// (`fake` / `inactive` / `genuine`).
    pub verdict: String,
    /// How the request finished (`completed`, `degraded_stale`, ...).
    pub outcome: String,
    /// Fake-follower share of the assessed sample, in percent (0–100).
    pub fake_ratio: f64,
    /// Followers judged fake in the assessed sample.
    pub fake_count: u64,
    /// Followers assessed.
    pub sample_size: u64,
    /// Crawl cost: Twitter API calls spent on this audit.
    pub api_calls: u64,
    /// Trace id of the serving request (0 when untraced).
    pub trace_id: u64,
}

impl AuditRecord {
    /// Converts fractional seconds on the serving clock into the store's
    /// microsecond timestamps, saturating at the i64 range.
    pub fn micros_from_secs(secs: f64) -> i64 {
        let micros = secs * 1_000_000.0;
        if micros >= i64::MAX as f64 {
            i64::MAX
        } else if micros <= i64::MIN as f64 {
            i64::MIN
        } else {
            micros as i64
        }
    }

    /// The timestamp in whole seconds (floor).
    pub fn ts_secs(&self) -> i64 {
        self.ts_micros.div_euclid(1_000_000)
    }
}

/// Picks the dominant verdict label from per-class counts, breaking ties
/// toward the more alarming class: `fake` > `inactive` > `genuine`.
pub fn dominant_verdict(fake: u64, inactive: u64, genuine: u64) -> &'static str {
    if fake >= inactive && fake >= genuine {
        "fake"
    } else if inactive >= genuine {
        "inactive"
    } else {
        "genuine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_round_trip_at_sim_resolution() {
        let ts = AuditRecord::micros_from_secs(12.345_678);
        assert_eq!(ts, 12_345_678);
    }

    #[test]
    fn micros_saturate() {
        assert_eq!(AuditRecord::micros_from_secs(f64::MAX), i64::MAX);
        assert_eq!(AuditRecord::micros_from_secs(f64::MIN), i64::MIN);
    }

    #[test]
    fn ts_secs_floors_negatives() {
        let rec = AuditRecord {
            target: 1,
            ts_micros: -1,
            tool: "FC".into(),
            verdict: "fake".into(),
            outcome: "completed".into(),
            fake_ratio: 0.0,
            fake_count: 0,
            sample_size: 0,
            api_calls: 0,
            trace_id: 0,
        };
        assert_eq!(rec.ts_secs(), -1);
    }

    #[test]
    fn dominant_verdict_breaks_ties_toward_alarm() {
        assert_eq!(dominant_verdict(5, 5, 5), "fake");
        assert_eq!(dominant_verdict(0, 3, 3), "inactive");
        assert_eq!(dominant_verdict(0, 0, 1), "genuine");
        assert_eq!(dominant_verdict(2, 9, 1), "inactive");
    }
}
