//! Quickstart: build a synthetic celebrity with a known fake-follower mix,
//! audit it with all four analytics, and compare their claims with the
//! ground truth — the paper's §IV in fifty lines.
//!
//! Run with: `cargo run --release --example quickstart`

use fakeaudit_core::panel::AuditPanel;
use fakeaudit_core::scoring::score_against_truth;
use fakeaudit_detectors::FakeProjectEngine;
use fakeaudit_population::{ClassMix, TargetScenario};
use fakeaudit_twittersim::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 42;

    // A 20 000-follower account whose hidden truth we control: 30%
    // inactive (old followers), 15% fake (bought recently — strong recency
    // bias), 55% genuine.
    let mut platform = Platform::new();
    let target = TargetScenario::new("celebrity", 20_000, ClassMix::new(0.30, 0.15, 0.55)?)
        .fake_recency_bias(20.0)
        .build(&mut platform, seed)?;

    println!("built {target}");
    println!();

    // All four analytics of the paper. The FC engine trains its classifier
    // on a synthetic gold standard first (a few seconds).
    let fc = FakeProjectEngine::with_default_model(seed);
    let mut panel = AuditPanel::with_fc_engine(fc, seed);
    let result = panel.request_all(&platform, target.target)?;

    println!("tool responses (first request — compare Table II/III of the paper):");
    for (tool, response) in result.responses() {
        println!("  {:<34} {response}", tool.to_string());
    }
    println!();

    println!(
        "scored against the hidden ground truth ({}):",
        target.true_mix()
    );
    for (tool, response) in result.responses() {
        let score = score_against_truth(&response.outcome, &target, &platform);
        println!("  {:<34} {score}", tool.to_string());
    }
    println!();
    println!(
        "the prefix-sampling tools over-report the recently-bought fakes;\n\
         the uniform-sampling classifier stays near the truth — the paper's thesis."
    );
    Ok(())
}
