//! The §II-D statistics lesson, end to end: prefix windows versus uniform
//! samples, confidence intervals, and required sample sizes.
//!
//! Run with: `cargo run --release --example sampling_bias_study`

use fakeaudit_core::experiments::bias::{render, run_bias, BiasParams};
use fakeaudit_stats::sample_size::{required_sample_size, worst_case_margin};
use fakeaudit_stats::ConfidenceLevel;

fn main() {
    // The paper's worked example: 100K genuine + 10K bought.
    let result = run_bias(BiasParams::default(), 2014);
    println!("{}", render(&result));

    // The sample-size arithmetic behind FC's 9604 and the tools' windows.
    println!("required sample sizes (worst case p = 0.5):");
    for (level, margin) in [
        (ConfidenceLevel::P95, 0.01),
        (ConfidenceLevel::P95, 0.02),
        (ConfidenceLevel::P99, 0.01),
    ] {
        println!(
            "  {level} confidence, +/-{:>4.1}%: n = {}",
            margin * 100.0,
            required_sample_size(level, margin, 0.5)
        );
    }
    println!();
    println!("best-case margins of the tools' fixed windows (if they sampled fairly):");
    for (tool, n) in [
        ("StatusPeople (700)", 700u64),
        ("StatusPeople original (1000)", 1_000),
        ("Socialbakers (2000)", 2_000),
        ("Twitteraudit (5000)", 5_000),
        ("Fake Classifier (9604)", 9_604),
    ] {
        println!(
            "  {tool:<30} +/-{:.1}% at 95% confidence",
            worst_case_margin(ConfidenceLevel::P95, n) * 100.0
        );
    }
    println!();
    println!(
        "the windows could be adequate IF the samples were unbiased;\n\
         the experiment above shows the prefix windows are not."
    );
}
