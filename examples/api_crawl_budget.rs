//! Crawl budgets under Table I's rate limits (E3): why auditing Obama's
//! 41M followers took the authors "around 27 days", and what each tool's
//! per-audit schedule costs.
//!
//! Run with: `cargo run --release --example api_crawl_budget`

use fakeaudit_core::experiments::crawl::{render, run_crawl_budgets};
use fakeaudit_core::experiments::table1;
use fakeaudit_twitter_api::crawl::CrawlBudget;

fn main() {
    println!("{}", table1::render());
    println!("{}", render(&run_crawl_budgets()));

    // What-if: how long would a sound FC-style audit need at other scales?
    println!("FC audit cost = full id list + 9604 profile lookups:");
    for followers in [10_000u64, 100_000, 1_000_000, 10_000_000, 41_000_000] {
        let ids = CrawlBudget::for_followers(followers, false);
        // FC hydrates only its 9604-account sample, not every profile.
        let lookup_calls = 9_604u64.div_ceil(100);
        let lookup_minutes = lookup_calls.div_ceil(12);
        println!(
            "  {:>10} followers: {:>6} id pages (~{:>5} min) + {} lookup calls (~{} min)",
            followers,
            ids.ids_calls,
            ids.ids_calls, // 1 call/min sustained
            lookup_calls,
            lookup_minutes
        );
    }
    println!();
    println!(
        "sustained-rate crawling is what makes sound audits of mega-accounts\n\
         expensive — and why the commercial tools cut the corner the paper\n\
         criticises."
    );
}
