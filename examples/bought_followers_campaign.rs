//! The 2012 Romney scenario: an account "experiences a sudden jump in the
//! number of followers" from a purchased batch, and the analytics react.
//!
//! We watch a politician's account through three phases — organic base,
//! right after buying 10% fakes, and a month later — and show how each
//! tool's fake percentage moves (and how the prefix-sampling tools swing
//! far beyond the truth right after the burst).
//!
//! Run with: `cargo run --release --example bought_followers_campaign`

use fakeaudit_core::panel::AuditPanel;
use fakeaudit_detectors::{FakeProjectEngine, ToolId};
use fakeaudit_population::archetype::{self, TrueClass};
use fakeaudit_population::scenario::grow_organic_daily;
use fakeaudit_population::{ClassMix, TargetScenario};
use fakeaudit_stats::rng::rng_for_indexed;
use fakeaudit_twittersim::{Platform, SimDuration};

fn audit_and_print(
    phase: &str,
    panel: &mut AuditPanel,
    platform: &Platform,
    target: fakeaudit_twittersim::AccountId,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("-- {phase} ({} followers) --", {
        platform
            .profile(target)
            .expect("target exists")
            .followers_count
    });
    for tool in ToolId::ALL {
        let r = panel.request(tool, platform, target)?;
        println!(
            "  {:<4} fake {:>5.1}%  inactive {:>5.1}%  genuine {:>5.1}%{}",
            tool.abbrev(),
            r.outcome.fake_pct(),
            r.outcome.inactive_pct(),
            r.outcome.genuine_pct(),
            if r.served_from_cache {
                "  (cached!)"
            } else {
                ""
            }
        );
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 7;

    // Phase 1: an organically grown politician account, no bought fakes.
    let mut platform = Platform::new();
    let built = TargetScenario::new("politician", 18_000, ClassMix::new(0.30, 0.01, 0.69)?)
        .build(&mut platform, seed)?;
    let fc = FakeProjectEngine::with_default_model(seed).with_sample_size(4_000);
    let mut panel = AuditPanel::with_fc_engine(fc, seed);
    audit_and_print("before the campaign", &mut panel, &platform, built.target)?;

    // Phase 2: the campaign buys 2 000 fake followers overnight (~10%).
    platform.advance_clock(SimDuration::from_days(1));
    for i in 0..2_000u64 {
        let mut rng = rng_for_indexed(seed, "bought", i);
        let acc = archetype::generate(
            &mut rng,
            TrueClass::Fake,
            format!("bought_{i}"),
            platform.now(),
        );
        let mut profile = acc.profile;
        if profile.created_at > platform.now() {
            profile.created_at = platform.now();
        }
        let id = platform.register(profile, acc.timeline)?;
        platform.follow(id, built.target)?;
    }
    // Fresh panel: the services' caches would otherwise mask the jump —
    // exactly the staleness problem §IV-C documents. Keep the old panel to
    // demonstrate it first.
    println!("(asking the same services again — caches still serve the old report)");
    audit_and_print(
        "right after buying 2000 fakes, cached services",
        &mut panel,
        &platform,
        built.target,
    )?;

    let fc2 = FakeProjectEngine::with_default_model(seed).with_sample_size(4_000);
    let mut fresh_panel = AuditPanel::with_fc_engine(fc2, seed + 1);
    audit_and_print(
        "right after buying 2000 fakes, fresh audits",
        &mut fresh_panel,
        &platform,
        built.target,
    )?;
    println!(
        "note: truth is ~10% fake; the newest-prefix tools report several\n\
         times that because every bought follower sits at the head of the\n\
         follower list — the §II-D bias.\n"
    );

    // Phase 3: a month of organic growth buries the burst a little.
    grow_organic_daily(&mut platform, built.target, 30, 40, seed + 2)?;
    let fc3 = FakeProjectEngine::with_default_model(seed).with_sample_size(4_000);
    let mut month_panel = AuditPanel::with_fc_engine(fc3, seed + 3);
    audit_and_print(
        "one month later (organic growth on top)",
        &mut month_panel,
        &platform,
        built.target,
    )?;
    Ok(())
}
