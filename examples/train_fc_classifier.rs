//! Rebuilding the Fake Project classifier (§III / E4): literature rule sets
//! versus trained forests on a gold standard, with cross-validation.
//!
//! Run with: `cargo run --release --example train_fc_classifier`

use fakeaudit_core::experiments::fc_training::{render, run_fc_training};
use fakeaudit_detectors::features::{
    dataset_from_gold, FeatureSet, PROFILE_FEATURES, TIMELINE_FEATURES,
};
use fakeaudit_ml::tree::TreeParams;
use fakeaudit_ml::DecisionTree;
use fakeaudit_population::archetype::recommended_audit_time;
use fakeaudit_population::goldstandard::GoldStandard;

fn main() {
    println!(
        "feature sets (crawling-cost classes of [12]):\n  class A (profile, 1 lookup/100 accounts): {}\n  class B (timeline, 1 call/account): {}\n",
        PROFILE_FEATURES.join(", "),
        TIMELINE_FEATURES.join(", ")
    );
    assert_eq!(FeatureSet::ProfileOnly.arity(), PROFILE_FEATURES.len());

    let result = run_fc_training(300, 2014);
    println!("{}", render(&result));

    // Interpretability: what a small tree actually learned.
    let gold = GoldStandard::generate(2014, 150, recommended_audit_time());
    let data = dataset_from_gold(&gold, FeatureSet::ProfileOnly);
    let tree = DecisionTree::fit(
        &data,
        TreeParams {
            max_depth: 3,
            ..TreeParams::default()
        },
    )
    .expect("gold standard is non-empty");
    println!(
        "a depth-3 CART tree on the profile features:
{}",
        tree.render_text(data.feature_names(), data.class_names())
    );
    println!(
        "the trained classifier dominates every rule set — the finding that\n\
         led [12] to ship a learner instead of criteria lists; the profile-only\n\
         feature set keeps the crawling cost at two orders of magnitude below\n\
         the timeline set for nearly the same accuracy (the paper's 'optimized\n\
         classifier')."
    );
}
