//! A flash crowd hits the audit service: the four tools behind a bounded
//! admission queue, Poisson background traffic with an 8× burst in the
//! middle, compared across all three overload policies.
//!
//! Unlike the E8 steady-state sweep (which drives prewarmed traffic so
//! the knee is purely queueing-determined), this example leaves half the
//! targets cold — so `degrade` has nothing stale to serve for them and
//! the cold fresh audits drag heavy tails into the latency percentiles.
//!
//! Run with: `cargo run --release --example service_under_load`

use fakeaudit_analytics::{OnlineService, ServiceProfile};
use fakeaudit_detectors::{FakeProjectEngine, Socialbakers, StatusPeople, ToolId, Twitteraudit};
use fakeaudit_population::{ClassMix, TargetScenario};
use fakeaudit_server::{
    generate, ArrivalProcess, LoadSpec, OverloadPolicy, ServerConfig, ServerSim,
};
use fakeaudit_stats::rng::derive_seed;
use fakeaudit_twittersim::{AccountId, Platform};

const SEED: u64 = 2_014;
const TARGETS: usize = 6;
const PREWARMED: usize = 3; // the rest stay cold until the crowd arrives

fn main() {
    let mut platform = Platform::new();
    let mix = ClassMix::new(0.25, 0.15, 0.60).expect("valid mix");
    let targets: Vec<AccountId> = (0..TARGETS)
        .map(|i| {
            TargetScenario::new(format!("crowd_target_{i}"), 1_500, mix)
                .build(&mut platform, derive_seed(SEED, &format!("crowd-{i}")))
                .expect("scenario builds")
                .target
        })
        .collect();

    // One prewarmed base set, cloned per policy so every run answers the
    // same flash crowd from the same starting state.
    let unquoted = |p: ServiceProfile| ServiceProfile {
        daily_quota: None,
        ..p
    };
    let mut fc = OnlineService::new(
        FakeProjectEngine::with_default_model(derive_seed(SEED, "crowd-fc-model"))
            .with_sample_size(1_200),
        unquoted(ServiceProfile::fake_classifier()),
        derive_seed(SEED, "crowd-svc-fc"),
    );
    let mut ta = OnlineService::new(
        Twitteraudit::new(),
        unquoted(ServiceProfile::twitteraudit()),
        derive_seed(SEED, "crowd-svc-ta"),
    );
    let mut sp = OnlineService::new(
        StatusPeople::new(),
        unquoted(ServiceProfile::statuspeople()),
        derive_seed(SEED, "crowd-svc-sp"),
    );
    let mut sb = OnlineService::new(
        Socialbakers::new(),
        unquoted(ServiceProfile::socialbakers()),
        derive_seed(SEED, "crowd-svc-sb"),
    );
    for &t in &targets[..PREWARMED] {
        fc.prewarm(&platform, t).expect("fc prewarm");
        ta.prewarm(&platform, t).expect("ta prewarm");
        sp.prewarm(&platform, t).expect("sp prewarm");
        sb.prewarm(&platform, t).expect("sb prewarm");
    }

    // Quiet 1 req/s background with an 8 req/s flash crowd in the middle:
    // Zipf popularity sends most of it at the (prewarmed) head targets.
    let spec = LoadSpec {
        process: ArrivalProcess::FlashCrowd {
            base_rate: 1.0,
            burst_start: 150.0,
            burst_secs: 60.0,
            burst_rate: 8.0,
        },
        duration_secs: 600.0,
        zipf_exponent: 1.1,
        tools: ToolId::ALL.to_vec(),
    };
    let trace = generate(&spec, &targets, derive_seed(SEED, "crowd-trace"));
    println!(
        "flash crowd: {} arrivals over 600s (1 req/s background, 8 req/s for 60s)",
        trace.len()
    );
    println!(
        "{} of {} targets prewarmed; the cold ones cost a fresh audit\n",
        PREWARMED, TARGETS
    );

    println!(
        "{:<9}{:>9}{:>7}{:>10}{:>7}{:>8}{:>10}{:>10}{:>10}",
        "policy",
        "answered",
        "shed",
        "degraded",
        "util",
        "p50 (s)",
        "p95 (s)",
        "p99 (s)",
        "wait p95"
    );
    for policy in OverloadPolicy::ALL {
        let mut sim = ServerSim::new(
            &platform,
            ServerConfig {
                workers_per_tool: 2,
                queue_capacity: 8,
                policy,
                degraded_secs: 0.5,
                deadline_secs: None,
            },
        );
        sim.register(Box::new(fc.clone()));
        sim.register(Box::new(ta.clone()));
        sim.register(Box::new(sp.clone()));
        sim.register(Box::new(sb.clone()));
        let report = sim.run(&trace);
        println!(
            "{:<9}{:>9}{:>7}{:>10}{:>6.0}%{:>8.1}{:>10.1}{:>10.1}{:>10.1}",
            policy.label(),
            report.completed() + report.degraded(),
            report.shed(),
            report.degraded(),
            report.utilisation() * 100.0,
            report.latency_percentile(0.50),
            report.latency_percentile(0.95),
            report.latency_percentile(0.99),
            report.queue_wait_percentile(0.95),
        );
    }

    println!(
        "\nthe burst overwhelms 8 workers whose cached service time is 2-4s:\n\
         block rides it out at the cost of queue-wait tails, shed keeps\n\
         latency flat by turning users away, and degrade splits the\n\
         difference — stale sub-second answers for warm targets, shed only\n\
         where the cache is cold."
    );
}
