//! Workspace integration tests: cross-crate flows exercising the full
//! reproduction stack (platform → population → API → detectors → services →
//! experiment drivers).

use fakeaudit_core::compare::disagreement;
use fakeaudit_core::experiments::bias::{run_bias, BiasParams};
use fakeaudit_core::experiments::fc_training::run_fc_training;
use fakeaudit_core::experiments::ordering::{run_ordering, OrderingParams};
use fakeaudit_core::experiments::table3::run_table3_filtered;
use fakeaudit_core::experiments::{table1, Scale};
use fakeaudit_core::panel::AuditPanel;
use fakeaudit_core::scoring::score_against_truth;
use fakeaudit_detectors::{FakeProjectEngine, ToolId};
use fakeaudit_population::testbed::{FollowerClass, PAPER_TARGETS};
use fakeaudit_population::{ClassMix, TargetScenario};
use fakeaudit_twittersim::{Platform, SimDuration};

fn quick_panel(seed: u64) -> AuditPanel {
    AuditPanel::with_fc_engine(
        FakeProjectEngine::with_default_model(seed).with_sample_size(800),
        seed,
    )
}

#[test]
fn end_to_end_audit_of_a_burst_target() {
    // The paper's headline scenario end to end: recently bought fakes,
    // four tools, ground-truth scoring.
    let mut platform = Platform::new();
    let target = TargetScenario::new("e2e", 8_000, ClassMix::new(0.25, 0.10, 0.65).unwrap())
        .fake_recency_bias(25.0)
        .build(&mut platform, 1)
        .unwrap();
    let mut panel = quick_panel(1);
    let result = panel.request_all(&platform, target.target).unwrap();

    // 1. Response-time ordering (Table II shape).
    assert!(
        result.of(ToolId::FakeClassifier).response_secs
            > result.of(ToolId::Socialbakers).response_secs
    );

    // 2. Prefix tools over-report the burst; FC does not (Table III shape).
    let fc_fake = result.of(ToolId::FakeClassifier).outcome.fake_pct();
    let sb_fake = result.of(ToolId::Socialbakers).outcome.fake_pct();
    assert!(
        sb_fake > fc_fake + 5.0,
        "SB {sb_fake:.1}% should exceed FC {fc_fake:.1}% under a burst"
    );

    // 3. FC is the most accurate against hidden truth.
    let acc = |tool: ToolId| {
        score_against_truth(&result.of(tool).outcome, &target, &platform).lenient_accuracy
    };
    let fc_acc = acc(ToolId::FakeClassifier);
    for tool in [ToolId::Twitteraudit, ToolId::Socialbakers] {
        assert!(
            fc_acc >= acc(tool) - 0.02,
            "FC accuracy {fc_acc:.2} vs {tool}: {:.2}",
            acc(tool)
        );
    }

    // 4. The tools genuinely disagree.
    let outcomes: Vec<_> = result.responses().iter().map(|(_, r)| &r.outcome).collect();
    let d = disagreement(&outcomes);
    assert!(d.fake_range > 10.0, "fake range {:.1}", d.fake_range);
}

#[test]
fn repeat_requests_hit_caches_across_the_stack() {
    let mut platform = Platform::new();
    let target = TargetScenario::new("cache", 3_000, ClassMix::new(0.3, 0.1, 0.6).unwrap())
        .build(&mut platform, 2)
        .unwrap();
    let mut panel = quick_panel(2);
    let first = panel.request_all(&platform, target.target).unwrap();
    platform.advance_clock(SimDuration::from_secs(3_600));
    let second = panel.request_all(&platform, target.target).unwrap();
    for tool in ToolId::ALL {
        assert!(!first.of(tool).served_from_cache, "{tool} first");
        assert!(second.of(tool).served_from_cache, "{tool} second");
        assert!(
            second.of(tool).response_secs < 5.0,
            "{tool} repeat <5s (§IV-C)"
        );
        assert_eq!(
            first.of(tool).outcome.counts,
            second.of(tool).outcome.counts,
            "{tool} cached result must be identical"
        );
    }
}

#[test]
fn table3_low_class_reproduces_paper_shape() {
    let t = run_table3_filtered(Scale::quick(), 3, |x| x.class == FollowerClass::Low).unwrap();
    assert_eq!(t.rows.len(), 4);
    for row in &t.rows {
        // Low-class accounts (the developers' own) are mostly genuine under
        // every tool, as in the paper.
        assert!(
            row.fc.2 > 50.0,
            "@{} FC genuine {:.1}%",
            row.screen_name,
            row.fc.2
        );
        assert!(
            row.sb.2 > 50.0,
            "@{} SB genuine {:.1}%",
            row.screen_name,
            row.sb.2
        );
        // And FC's fake share is small, matching the paper's 1.4-4.1%.
        assert!(
            row.fc.1 < 12.0,
            "@{} FC fake {:.1}%",
            row.screen_name,
            row.fc.1
        );
    }
}

#[test]
fn pc_chiambretti_pathology_reproduces() {
    // §IV-D: FC sees an almost entirely inactive base; the prefix tools,
    // sampling the newest window, report far lower inactive shares.
    let t = run_table3_filtered(Scale::quick(), 4, |x| x.screen_name == "PC_Chiambretti").unwrap();
    let row = &t.rows[0];
    assert!(
        row.fc.0 > 80.0,
        "FC inactive {:.1}% should be near the 97% truth",
        row.fc.0
    );
    assert!(
        row.sb.0 < row.fc.0 - 30.0,
        "SB inactive {:.1}% must sit far below FC {:.1}%",
        row.sb.0,
        row.fc.0
    );
    assert!(
        row.ta.0 > 25.0,
        "TA must call a large share of the head fake, got {:.1}%",
        row.ta.0
    );
}

#[test]
fn ordering_experiment_confirms_api_order() {
    let r = run_ordering(
        OrderingParams {
            initial_followers: 500,
            days: 10,
            arrivals_per_day: 15,
            unfollows_per_day: 4,
        },
        5,
    );
    assert!(r.confirms_follow_time_ordering);
    assert_eq!(r.diffs, 10);
}

#[test]
fn bias_experiment_reproduces_paper_arithmetic() {
    let r = run_bias(
        BiasParams {
            genuine: 20_000,
            bought: 2_000,
            window: 500,
            sample_size: 500,
            repetitions: 20,
        },
        6,
    );
    assert!(r.prefix.mean_estimate > 0.95);
    assert!((r.uniform.mean_estimate - r.truth).abs() < 0.03);
    assert!(r.uniform_coverage > r.prefix_coverage);
}

#[test]
fn fc_training_ranks_learner_above_rules() {
    let r = run_fc_training(50, 7);
    let forest_f1 = r
        .rows
        .iter()
        .find(|x| x.name.contains("profile features"))
        .expect("forest row present")
        .f1;
    for rules in &r.rows[..3] {
        assert!(
            forest_f1 >= rules.f1 - 0.02,
            "forest {forest_f1:.3} vs {} {:.3}",
            rules.name,
            rules.f1
        );
    }
    // The importance report names every profile feature exactly once.
    assert_eq!(r.feature_importance.len(), 10);
}

#[test]
fn table1_is_the_simulators_configuration() {
    let rows = table1::run_table1();
    // The table the paper prints is the same data the rate limiter uses.
    assert_eq!(rows.len(), 4);
    assert!(table1::render().contains("5000"));
}

#[test]
fn sb_daily_quota_enforced_through_panel() {
    let mut platform = Platform::new();
    let target = TargetScenario::new("quota", 2_500, ClassMix::new(0.3, 0.1, 0.6).unwrap())
        .build(&mut platform, 8)
        .unwrap();
    let mut panel = quick_panel(8);
    for _ in 0..10 {
        panel
            .request(ToolId::Socialbakers, &platform, target.target)
            .unwrap();
    }
    assert!(panel
        .request(ToolId::Socialbakers, &platform, target.target)
        .is_err());
    // The other tools are unaffected.
    assert!(panel
        .request(ToolId::StatusPeople, &platform, target.target)
        .is_ok());
}

#[test]
fn twenty_paper_targets_are_wired() {
    assert_eq!(PAPER_TARGETS.len(), 20);
    // Smoke-build the largest target at tiny scale to check the pinning
    // path end to end.
    let obama = PAPER_TARGETS.last().unwrap();
    let mut platform = Platform::new();
    let built = obama.scenario(800).build(&mut platform, 9).unwrap();
    assert_eq!(
        platform.profile(built.target).unwrap().followers_count,
        41_000_000
    );
}

#[test]
fn deep_dive_shrinks_the_window_bias() {
    use fakeaudit_core::experiments::deep_dive::run_deep_dive;
    // The scaled Fakers window needs tens of slots to be meaningful, so
    // this experiment runs above the default quick materialisation cap.
    let scale = Scale {
        materialize_cap: 30_000,
        ..Scale::quick()
    };
    let r = run_deep_dive(scale, 11);
    for row in &r.rows {
        assert!(
            row.fakers_non_genuine > row.deep_dive_non_genuine,
            "@{}: {:.1} vs {:.1}",
            row.account.screen_name,
            row.fakers_non_genuine,
            row.deep_dive_non_genuine
        );
    }
}

#[test]
fn burst_timeline_spikes_and_decays() {
    use fakeaudit_core::experiments::burst::{run_burst, BurstParams};
    let r = run_burst(
        BurstParams {
            organic_followers: 2_500,
            bought: 250,
            organic_per_day: 120,
            audit_days: [0, 4, 8, 16],
            fc_sample: 800,
        },
        12,
    );
    let first = &r.points[0];
    let last = &r.points[3];
    assert!(
        first.sb > last.sb,
        "SB must decay: {:.1} -> {:.1}",
        first.sb,
        last.sb
    );
    assert!(first.fc <= first.truth_fake_pct + 3.0);
}

#[test]
fn twitteraudit_chart_matches_its_report() {
    use fakeaudit_analytics::report::render_twitteraudit;
    use fakeaudit_detectors::Twitteraudit;
    use fakeaudit_twitter_api::{ApiConfig, ApiSession};

    let mut platform = Platform::new();
    let target = TargetScenario::new("charted", 2_000, ClassMix::new(0.3, 0.2, 0.5).unwrap())
        .build(&mut platform, 13)
        .unwrap();
    let mut session = ApiSession::new(&platform, ApiConfig::default());
    let (outcome, chart) = Twitteraudit::new()
        .audit_with_chart(&mut session, target.target, 1)
        .unwrap();
    assert_eq!(chart.total() as usize, outcome.sample_size());
    let report = render_twitteraudit(&outcome, &chart);
    assert!(report.contains("twitteraudit report"));
    assert!(report.contains("real points"));
}

#[test]
fn audit_outcomes_survive_serde_roundtrips() {
    use fakeaudit_detectors::engine::FollowerAuditor;
    use fakeaudit_detectors::StatusPeople;
    use fakeaudit_twitter_api::{ApiConfig, ApiSession};

    let mut platform = Platform::new();
    let target = TargetScenario::new("serde", 1_200, ClassMix::new(0.3, 0.2, 0.5).unwrap())
        .build(&mut platform, 14)
        .unwrap();
    let mut session = ApiSession::new(&platform, ApiConfig::default());
    let outcome = StatusPeople::new()
        .audit(&mut session, target.target, 1)
        .unwrap();
    // serde is a workspace dependency without serde_json; round-trip through
    // the derived Serialize/Deserialize impls via bincode-style manual check:
    // here we settle for Clone + PartialEq identity plus a Serialize smoke
    // via serde's derive (compile-time guarantee), asserting stability of
    // the counts instead.
    let copy = outcome.clone();
    assert_eq!(copy, outcome);
    assert_eq!(copy.counts.total() as usize, copy.sample_size());
}
